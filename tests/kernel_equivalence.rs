//! Kernel-equivalence suite: the optimized search kernels — label-bucket
//! candidate generation, bitset adjacency, edge-label upper-bound pruning
//! and the incremental MCCS component tracker — must be *observationally
//! identical* to the reference unpruned search ([`McsConfig::pruning`]
//! `= false` disables every bound-derived shortcut and restores the plain
//! McGregor enumeration).
//!
//! Over randomized labeled graph pairs, swept across budgets
//! {exact, exhausted, deadline} and thread settings {1, 8}:
//!
//! * **Exact runs agree exactly**: same common-subgraph size, same
//!   `Completeness` tag, and both mappings verify as genuine common
//!   subgraphs of the claimed size (an independent validity oracle — not
//!   a comparison of one search against the other).
//! * **Tripped budgets stay truthful**: a non-`Exact` tag never
//!   accompanies a value above the true optimum, the returned mapping is
//!   still a valid common subgraph (a sound lower bound), and a
//!   budget-tripped-but-proven search is tagged `Exact` only when its
//!   value matches the unbounded optimum.
//! * **Determinism**: every kernel returns bit-identical results on
//!   repeated calls and across thread settings (the kernels are
//!   sequential; the sweep proves no hidden dependence on the pool).
//! * **Isomorphism agrees with brute force**: on small graphs,
//!   `are_isomorphic` matches an exhaustive permutation check.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catapult::graph::mcs::{mcs, McsConfig, McsResult};
use catapult::graph::{iso, Deadline, Graph, Label, SearchBudget, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// `set_threads` is process-global; tests that sweep it serialize here.
static SERIAL: Mutex<()> = Mutex::new(());

/// Random labeled graph: `n` vertices over a small label alphabet, each
/// candidate edge kept with probability ~`density`/n.
fn random_graph(rng: &mut StdRng, n: u32, labels: u32, density: f64) -> Graph {
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_vertex(Label(rng.gen_range(0..labels)));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool((density / f64::from(n)).min(1.0)) {
                g.add_edge(VertexId(i), VertexId(j)).unwrap();
            }
        }
    }
    g
}

/// Deterministic pool of graph pairs spanning sparse/dense and
/// narrow/wide label alphabets.
fn pair_pool() -> Vec<(Graph, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xE015);
    let mut pairs = Vec::new();
    for (n, labels, density) in [
        (4, 1, 2.0),
        (5, 2, 2.5),
        (6, 2, 2.0),
        (7, 3, 3.0),
        (8, 2, 2.0),
        (8, 4, 4.0),
        (9, 3, 2.5),
    ] {
        for _ in 0..3 {
            let a = random_graph(&mut rng, n, labels, density);
            let b = random_graph(&mut rng, n, labels, density);
            pairs.push((a, b));
        }
    }
    pairs
}

/// Independent validity oracle: `pairs` is an injective, label-preserving
/// partial mapping, and the common-edge subgraph it induces has exactly
/// `edges` edges. Validates a result without trusting either search.
fn assert_valid_common_subgraph(a: &Graph, b: &Graph, r: &McsResult, ctx: &str) {
    let mut seen_a = std::collections::BTreeSet::new();
    let mut seen_b = std::collections::BTreeSet::new();
    for &(va, vb) in &r.pairs {
        assert!(seen_a.insert(va.0), "{ctx}: duplicate a-vertex {va:?}");
        assert!(seen_b.insert(vb.0), "{ctx}: duplicate b-vertex {vb:?}");
        assert_eq!(a.label(va), b.label(vb), "{ctx}: label mismatch");
    }
    let mut common = 0usize;
    for i in 0..r.pairs.len() {
        for j in (i + 1)..r.pairs.len() {
            let (va, ta) = r.pairs[i];
            let (vb, tb) = r.pairs[j];
            let in_a = a.neighbors(va).iter().any(|&(w, _)| w == vb);
            let in_b = b.neighbors(ta).iter().any(|&(w, _)| w == tb);
            if in_a && in_b {
                common += 1;
            }
        }
    }
    assert_eq!(common, r.edges, "{ctx}: claimed size != induced size");
}

fn cfg(connected: bool, pruning: bool, budget: SearchBudget) -> McsConfig {
    McsConfig {
        connected,
        budget,
        pruning,
    }
}

/// Budgets swept: an exhaustive run, a tiny node cap that trips on every
/// non-trivial pair, and an already-expired deadline.
fn budgets() -> Vec<(&'static str, SearchBudget)> {
    vec![
        ("exact", SearchBudget::unbounded()),
        ("exhausted", SearchBudget::nodes(25)),
        (
            "deadline",
            // An already-expired deadline needs a raw timestamp, not a
            // recorder epoch. xtask-allow: raw-instant
            SearchBudget::unbounded().with_deadline(Deadline::at(std::time::Instant::now())),
        ),
    ]
}

#[test]
fn pruned_search_is_equivalent_to_reference_unpruned() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let pairs = pair_pool();
    for threads in [1usize, 8] {
        rayon::set_threads(threads);
        for connected in [false, true] {
            let kernel = if connected { "mccs" } else { "mcs" };
            // Ground truth per pair: the unbounded reference search.
            for (pi, (a, b)) in pairs.iter().enumerate() {
                let truth = mcs(a, b, cfg(connected, false, SearchBudget::unbounded()));
                assert!(truth.is_exact(), "unbounded reference must be exact");
                for (bname, budget) in budgets() {
                    let ctx = format!("threads={threads} {kernel} pair={pi} budget={bname}");
                    let opt = mcs(a, b, cfg(connected, true, budget.clone()));
                    let reference = mcs(a, b, cfg(connected, false, budget.clone()));

                    // Both mappings must verify independently, whatever
                    // the budget did.
                    assert_valid_common_subgraph(a, b, &opt, &format!("{ctx} optimized"));
                    assert_valid_common_subgraph(a, b, &reference, &format!("{ctx} reference"));

                    // Tag truthfulness: Exact claims the true optimum.
                    if opt.is_exact() {
                        assert_eq!(opt.edges, truth.edges, "{ctx}: Exact tag lied");
                    } else {
                        assert!(opt.edges <= truth.edges, "{ctx}: above the optimum");
                    }
                    if reference.is_exact() {
                        assert_eq!(reference.edges, truth.edges, "{ctx}: reference Exact lied");
                    }

                    // When the reference completes exactly under this
                    // budget, the optimized search must agree on the
                    // size, the mapping size, and the tag. (Under a
                    // tripped budget the two explore different
                    // prefixes, so only the bounds above apply.)
                    if reference.is_exact() {
                        assert_eq!(opt.edges, reference.edges, "{ctx}: size diverged");
                        assert!(opt.is_exact(), "{ctx}: optimized lost the Exact tag");
                        if reference.edges > 0 {
                            assert!(!opt.pairs.is_empty(), "{ctx}: empty mapping");
                        }
                    }

                    // Determinism: a second identical call is bit-identical.
                    let again = mcs(a, b, cfg(connected, true, budget));
                    assert_eq!(opt.edges, again.edges, "{ctx}: nondeterministic size");
                    assert_eq!(opt.pairs, again.pairs, "{ctx}: nondeterministic mapping");
                    assert_eq!(
                        opt.completeness, again.completeness,
                        "{ctx}: nondeterministic tag"
                    );
                }
            }
        }
    }
    rayon::set_threads(0);
}

#[test]
fn results_are_identical_across_thread_settings() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let pairs = pair_pool();
    let mut baseline: Option<Vec<(usize, usize)>> = None;
    for threads in [1usize, 8] {
        rayon::set_threads(threads);
        let results: Vec<(usize, usize)> = pairs
            .iter()
            .map(|(a, b)| {
                let m = mcs(a, b, cfg(false, true, SearchBudget::nodes(500)));
                let c = mcs(a, b, cfg(true, true, SearchBudget::nodes(500)));
                (m.edges, c.edges)
            })
            .collect();
        match &baseline {
            None => baseline = Some(results),
            Some(prev) => assert_eq!(prev, &results, "threads={threads} changed results"),
        }
    }
    rayon::set_threads(0);
}

/// Exhaustive permutation check, feasible for the ≤ 7-vertex graphs it
/// is used on.
fn brute_force_isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    let n = a.vertex_count();
    let mut perm: Vec<u32> = (0..u32::try_from(n).unwrap()).collect();
    loop {
        let ok = (0..n).all(|i| {
            let (va, vb) = (VertexId(u32::try_from(i).unwrap()), VertexId(perm[i]));
            a.label(va) == b.label(vb)
                && a.neighbors(va).iter().all(|&(w, _)| {
                    b.neighbors(vb)
                        .iter()
                        .any(|&(x, _)| x == VertexId(perm[w.index()]))
                })
        });
        if ok {
            return true;
        }
        // Next lexicographic permutation.
        let Some(i) = (0..n - 1).rfind(|&i| perm[i] < perm[i + 1]) else {
            return false;
        };
        let j = (i + 1..n).rfind(|&j| perm[j] > perm[i]).unwrap();
        perm.swap(i, j);
        perm[i + 1..].reverse();
    }
}

#[test]
fn iso_agrees_with_brute_force_on_small_graphs() {
    let mut rng = StdRng::seed_from_u64(0x0001_5015);
    let mut graphs = Vec::new();
    for _ in 0..10 {
        let n = rng.gen_range(3..=6);
        graphs.push(random_graph(&mut rng, n, 2, 2.5));
    }
    // Relabeled copies guarantee some positive cases.
    for i in 0..3 {
        let src: Graph = graphs[i].clone();
        let n = u32::try_from(src.vertex_count()).unwrap();
        let mut shuffled: Vec<u32> = (0..n).collect();
        for k in (1..n as usize).rev() {
            let j = rng.gen_range(0..=k);
            shuffled.swap(k, j);
        }
        let mut g = Graph::new();
        let mut position = vec![0u32; n as usize];
        for (pos, &orig) in shuffled.iter().enumerate() {
            position[orig as usize] = u32::try_from(pos).unwrap();
            g.add_vertex(src.label(VertexId(orig)));
        }
        for v in src.vertices() {
            for &(w, _) in src.neighbors(v) {
                if v.0 < w.0 {
                    let (p, q) = (position[v.index()], position[w.index()]);
                    g.add_edge(VertexId(p), VertexId(q)).unwrap();
                }
            }
        }
        graphs.push(g);
    }
    for i in 0..graphs.len() {
        for j in i..graphs.len() {
            let (a, b) = (&graphs[i], &graphs[j]);
            let expected = brute_force_isomorphic(a, b);
            assert_eq!(
                iso::are_isomorphic(a, b),
                expected,
                "iso disagreed with brute force on pair ({i}, {j})"
            );
        }
    }
}
