//! Property coverage for the debug invariant validators: randomly built
//! graphs always validate, random valid edit sequences preserve the
//! representation invariants, and every validator rejects its seeded
//! corruption.

// Integration tests may use panicking shortcuts freely; the workspace
// no-panic policy targets library production code only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catapult::cluster::invariants::{validate_assignment, validate_cluster_sizes};
use catapult::csg::mapping::{neighbor_biased_mapping, validate_mapping};
use catapult::csg::Csg;
use catapult::graph::edit::{apply_edit_script, edit_script};
use catapult::graph::ged::ged_upper_bound_mapping;
use catapult::graph::{CorruptionKind, Graph, Label, VertexId};
use proptest::prelude::*;

/// Strategy: a connected labeled graph as (labels, tree parents, extra
/// edge pairs) — same shape as `tests/properties.rs`.
fn graph_strategy(max_v: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_v).prop_flat_map(move |n| {
        (
            prop::collection::vec(0..labels, n),
            prop::collection::vec(0u32..u32::MAX, n - 1),
            prop::collection::vec((0..n as u32, 0..n as u32), 0..=n),
        )
            .prop_map(move |(ls, parents, extras)| {
                let mut g = Graph::new();
                for &l in &ls {
                    g.add_vertex(Label(l));
                }
                for (i, &r) in parents.iter().enumerate() {
                    let child = (i + 1) as u32;
                    let parent = r % child;
                    g.add_edge(VertexId(child), VertexId(parent)).unwrap();
                }
                for (a, b) in extras {
                    if a != b {
                        let _ = g.add_edge(VertexId(a), VertexId(b));
                    }
                }
                g
            })
    })
}

proptest! {
    // Every randomly constructed graph satisfies `Graph::validate`.
    #[test]
    fn random_graphs_validate(g in graph_strategy(12, 4)) {
        prop_assert!(g.validate().is_ok(), "{:?}", g.validate());
    }

    // Random valid mutation sequences (vertex inserts, edge inserts,
    // subgraph extraction) preserve the representation invariants.
    #[test]
    fn random_edit_sequences_preserve_invariants(
        g in graph_strategy(10, 3),
        ops in prop::collection::vec((0u8..3, 0u32..64, 0u32..64), 0..24),
    ) {
        let mut g = g;
        for (op, a, b) in ops {
            match op {
                0 => {
                    g.add_vertex(Label(a % 4));
                }
                1 => {
                    let n = g.vertex_count() as u32;
                    let (u, v) = (VertexId(a % n), VertexId(b % n));
                    if u != v {
                        let _ = g.ensure_edge(u, v);
                    }
                }
                _ => {
                    // Replace the graph by one of its induced subgraphs.
                    let keep: Vec<VertexId> =
                        g.vertices().filter(|v| (v.0 + a) % 3 != 0).collect();
                    if keep.len() >= 2 {
                        let (sub, _) = g.induced_subgraph(&keep);
                        g = sub;
                    }
                }
            }
            prop_assert!(g.validate().is_ok(), "{:?}", g.validate());
        }
    }

    // A graph transformed along a computed edit script still validates.
    #[test]
    fn edit_scripts_produce_valid_graphs(
        a in graph_strategy(8, 3),
        b in graph_strategy(8, 3),
    ) {
        let (_, mapping) = ged_upper_bound_mapping(&a, &b);
        let script = edit_script(&a, &b, &mapping);
        let out = apply_edit_script(&a, &script).expect("script applies to its source");
        prop_assert!(out.validate().is_ok(), "{:?}", out.validate());
    }

    // `Graph::validate` rejects every seeded corruption kind.
    #[test]
    fn seeded_graph_corruptions_are_rejected(g in graph_strategy(10, 3)) {
        for kind in [
            CorruptionKind::AsymmetricAdjacency,
            CorruptionKind::EdgeOutOfBounds,
            CorruptionKind::DuplicateEdge,
            CorruptionKind::LabelTableMismatch,
        ] {
            let mut bad = g.clone();
            bad.corrupt_for_test(kind);
            prop_assert!(bad.validate().is_err(), "corruption {kind:?} not caught");
        }
    }

    // Round-robin partitions always validate; duplicating or
    // out-of-bounds ids are always rejected.
    #[test]
    fn cluster_assignment_validator(n in 1usize..40, k in 1usize..6) {
        let mut clusters = vec![Vec::new(); k];
        for i in 0..n {
            clusters[i % k].push(i as u32);
        }
        prop_assert!(validate_assignment(n, &clusters, true).is_ok());
        prop_assert!(validate_cluster_sizes(&clusters, n.div_ceil(k)).is_ok());

        let mut dup = clusters.clone();
        dup[0].push(0);
        prop_assert!(validate_assignment(n, &dup, false).is_err());

        let mut oob = clusters.clone();
        oob[0].push(n as u32);
        prop_assert!(validate_assignment(n, &oob, false).is_err());

        let mut dropped = clusters;
        dropped[0].clear();
        prop_assert!(validate_assignment(n, &dropped, true).is_err());
    }

    // The greedy closure mapping always satisfies its validator, and a
    // forced non-injective image is rejected.
    #[test]
    fn mapping_validator(g in graph_strategy(8, 3), c in graph_strategy(8, 3)) {
        let mapping = neighbor_biased_mapping(&g, &c);
        prop_assert!(validate_mapping(&g, &c, &mapping).is_ok());

        // Corrupt: alias two mapped vertices onto the same target.
        let mapped: Vec<usize> = mapping
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_some())
            .map(|(i, _)| i)
            .collect();
        if mapped.len() >= 2 {
            let mut bad = mapping;
            bad[mapped[1]] = bad[mapped[0]];
            prop_assert!(validate_mapping(&g, &c, &bad).is_err());
        }
    }

    // Freshly built CSGs validate; truncating a member table or
    // corrupting a witness image is rejected.
    #[test]
    fn csg_validator(db in prop::collection::vec(graph_strategy(8, 3), 1..6)) {
        let cluster: Vec<u32> = (0..db.len() as u32).collect();
        let csg = Csg::build(&db, &cluster);
        prop_assert!(csg.validate(&db).is_ok(), "{:?}", csg.validate(&db));

        let mut truncated = csg.clone();
        truncated.vertex_members.pop();
        prop_assert!(truncated.validate(&db).is_err());

        let mut foreign = csg;
        foreign.cluster[0] = db.len() as u32 + 9;
        prop_assert!(foreign.validate(&db).is_err());
    }
}
