//! Kill-and-resume integration test against the real `catapult` binary:
//! SIGKILL a checkpointed `select` run mid-flight, resume it, and
//! require the resumed output to be identical to an uninterrupted
//! golden run. This is the process-level counterpart of the in-process
//! fault sweep in `tests/resume_equivalence.rs` — no fault injection,
//! an actual `kill -9`.
#![cfg(unix)]
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_catapult"))
}

fn run_ok(args: &[&str]) {
    let out = bin().args(args).output().expect("spawn catapult");
    assert!(
        out.status.success(),
        "catapult {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

/// Pattern-file contents minus the `%` comment lines (which carry
/// wall-clock timings, the one thing resume legitimately changes).
fn patterns_only(path: &Path) -> String {
    std::fs::read_to_string(path)
        .expect("read pattern file")
        .lines()
        .filter(|l| !l.starts_with('%'))
        .collect::<Vec<_>>()
        .join("\n")
}

fn select_args<'a>(db: &'a str, ckpt_dir: &'a str, out: &'a str, resume: bool) -> Vec<&'a str> {
    let mut a = vec![
        "select",
        "--db",
        db,
        "--gamma",
        "6",
        "--min-size",
        "3",
        "--max-size",
        "6",
        "--walks",
        "30",
        "--seed",
        "17",
        "--checkpoint-dir",
        ckpt_dir,
        "--out",
        out,
    ];
    if resume {
        a.push("--resume");
    }
    a
}

fn any_checkpoint(dir: &Path) -> bool {
    std::fs::read_dir(dir).is_ok_and(|entries| {
        entries
            .flatten()
            .any(|e| e.file_name().to_string_lossy().ends_with(".ckpt"))
    })
}

#[test]
fn sigkill_mid_run_then_resume_matches_golden() {
    let work: PathBuf = std::env::temp_dir().join("catapult-kill-resume");
    std::fs::remove_dir_all(&work).ok();
    std::fs::create_dir_all(&work).unwrap();
    let db = work.join("db.txt");
    let db_s = db.to_str().unwrap();
    run_ok(&[
        "generate",
        "--profile",
        "emol",
        "--count",
        "150",
        "--seed",
        "9",
        "--out",
        db_s,
    ]);

    // Golden: one uninterrupted checkpointed run.
    let golden_out = work.join("golden.txt");
    let dir_a = work.join("ckpt-golden");
    run_ok(&select_args(
        db_s,
        dir_a.to_str().unwrap(),
        golden_out.to_str().unwrap(),
        false,
    ));
    let golden = patterns_only(&golden_out);
    assert!(!golden.is_empty(), "golden run selected no patterns");

    // Victim: same run, SIGKILLed as soon as its first checkpoint lands.
    let victim_out = work.join("victim.txt");
    let dir_b = work.join("ckpt-victim");
    let dir_b_s = dir_b.to_str().unwrap();
    let mut child = bin()
        .args(select_args(
            db_s,
            dir_b_s,
            victim_out.to_str().unwrap(),
            false,
        ))
        .spawn()
        .expect("spawn victim");
    // Poll (bounded, no wall clock needed) until a checkpoint exists or
    // the victim finishes on its own — either way the directory is in a
    // state a resume must cope with.
    for _ in 0..3000 {
        if any_checkpoint(&dir_b) || child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    child.kill().ok(); // SIGKILL; no-op if it already exited
    child.wait().expect("reap victim");

    // Resume and compare against the golden patterns.
    run_ok(&select_args(
        db_s,
        dir_b_s,
        victim_out.to_str().unwrap(),
        true,
    ));
    assert_eq!(
        patterns_only(&victim_out),
        golden,
        "resumed run diverged from the uninterrupted golden run"
    );

    // A second resume (nothing left to do) reproduces it again.
    run_ok(&select_args(
        db_s,
        dir_b_s,
        victim_out.to_str().unwrap(),
        true,
    ));
    assert_eq!(patterns_only(&victim_out), golden);
    std::fs::remove_dir_all(&work).ok();
}
