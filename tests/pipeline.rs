//! End-to-end integration tests: the full Algorithm 1 pipeline over
//! synthetic molecule repositories, checking the paper's structural
//! guarantees across crate boundaries.

// Integration tests may use panicking shortcuts freely; the workspace
// no-panic policy targets library production code only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use catapult::prelude::*;
use catapult::{datasets, eval, graph};

fn small_repo() -> datasets::MoleculeDb {
    datasets::generate(&datasets::aids_profile(), 40, 1234)
}

fn run(db: &[Graph], gamma: usize, lo: usize, hi: usize, seed: u64) -> CatapultResult {
    let cfg = CatapultConfig {
        budget: PatternBudget::new(lo, hi, gamma).unwrap(),
        walks: 20,
        seed,
        ..Default::default()
    };
    run_catapult(db, &cfg)
}

#[test]
fn patterns_respect_budget_and_connectivity() {
    let db = small_repo();
    let result = run(&db.graphs, 8, 3, 6, 1);
    let patterns = result.patterns();
    assert!(!patterns.is_empty());
    assert!(patterns.len() <= 8);
    for p in &patterns {
        assert!((3..=6).contains(&p.edge_count()), "size {}", p.edge_count());
        assert!(graph::components::is_connected(p));
    }
}

#[test]
fn per_size_quota_holds() {
    let db = small_repo();
    let result = run(&db.graphs, 8, 3, 6, 2);
    // cap = max(8 / 4, 1) = 2 per size
    for size in 3..=6 {
        let count = result
            .patterns()
            .iter()
            .filter(|p| p.edge_count() == size)
            .count();
        assert!(count <= 2, "{count} patterns of size {size}");
    }
}

#[test]
fn clusters_partition_the_database() {
    let db = small_repo();
    let result = run(&db.graphs, 4, 3, 5, 3);
    let mut seen: Vec<u32> = result
        .clustering
        .clusters
        .iter()
        .flatten()
        .copied()
        .collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen.len(),
        db.graphs.len(),
        "clusters must cover D exactly once"
    );
}

#[test]
fn every_pattern_embeds_in_some_csg() {
    let db = small_repo();
    let result = run(&db.graphs, 6, 3, 6, 4);
    for p in result.patterns() {
        assert!(
            result
                .csgs
                .iter()
                .any(|c| graph::iso::contains(&c.graph, &p)),
            "selected pattern not contained in any CSG"
        );
    }
}

#[test]
fn csgs_contain_their_members() {
    // Containment is checked through the constructive embedding witness
    // stored at build time (explicit VF2 on 40-vertex label-homogeneous
    // members is intractable; the witness is exact and O(|V| + |E|)).
    let db = small_repo();
    let result = run(&db.graphs, 4, 3, 5, 5);
    for csg in &result.csgs {
        assert!(
            csg.verify_members(&db.graphs),
            "a CSG member's embedding witness is invalid"
        );
    }
}

#[test]
fn selected_patterns_are_pairwise_distinct() {
    let db = small_repo();
    let result = run(&db.graphs, 10, 3, 8, 6);
    let pats = result.patterns();
    for i in 0..pats.len() {
        for j in (i + 1)..pats.len() {
            assert!(
                !graph::iso::are_isomorphic(&pats[i], &pats[j]),
                "duplicate patterns at {i},{j}"
            );
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let db = small_repo();
    let a = run(&db.graphs, 6, 3, 6, 7);
    let b = run(&db.graphs, 6, 3, 6, 7);
    let sig = |r: &CatapultResult| -> Vec<u64> {
        r.patterns()
            .iter()
            .map(|p| p.invariant_signature())
            .collect()
    };
    assert_eq!(sig(&a), sig(&b));
}

#[test]
fn selection_scores_are_recorded_and_positive() {
    let db = small_repo();
    let result = run(&db.graphs, 6, 3, 6, 8);
    for s in &result.selection.selected {
        assert!(s.score > 0.0);
        assert!(s.source_csg < result.csgs.len());
    }
}

#[test]
fn patterns_reduce_formulation_steps_on_their_own_repository() {
    let db = small_repo();
    let result = run(&db.graphs, 10, 3, 8, 9);
    let queries = datasets::random_queries(&db.graphs, 40, (4, 20), 10);
    let ev = eval::WorkloadEvaluation::evaluate(&result.patterns(), &queries);
    assert!(
        ev.mean_reduction() > 0.0,
        "data-driven patterns must help on their own repository: {}",
        ev.mean_reduction()
    );
    assert!(ev.missed_percentage() < 100.0);
}

#[test]
fn sampling_pipeline_still_produces_valid_patterns() {
    let db = datasets::generate(&datasets::aids_profile(), 60, 77);
    let cfg = CatapultConfig {
        budget: PatternBudget::new(3, 6, 6).unwrap(),
        walks: 15,
        clustering: ClusteringConfig {
            sampling: Some(SamplingConfig::default()),
            ..Default::default()
        },
        ..Default::default()
    };
    let result = run_catapult(&db.graphs, &cfg);
    for p in result.patterns() {
        assert!((3..=6).contains(&p.edge_count()));
        assert!(graph::components::is_connected(&p));
    }
}
