//! Exhaustive GED verification on tiny graphs: under the uniform cost
//! model, every edit path corresponds to a (partial, injective) vertex
//! mapping whose cost is `induced_edit_cost`; therefore the exact GED is
//! the minimum of that cost over *all* mappings. This test enumerates all
//! mappings for graphs with ≤ 4 vertices and checks the search agrees.

// Integration tests may use panicking shortcuts freely; the workspace
// no-panic policy targets library production code only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use catapult::graph::edit::{apply_edit_script, edit_script};
use catapult::graph::ged::{ged_lower_bound, ged_with_budget, induced_edit_cost};
use catapult::graph::iso::are_isomorphic;
use catapult::graph::{Graph, Label, VertexId};
use rand::{Rng, SeedableRng};

/// Minimum induced edit cost over every injective partial mapping A → B.
fn brute_force_ged(a: &Graph, b: &Graph) -> usize {
    let (na, nb) = (a.vertex_count(), b.vertex_count());
    let mut best = usize::MAX;
    // Each A vertex maps to one of nb+1 choices (B vertex or None).
    let choices = nb + 1;
    let total = choices.pow(na as u32);
    'outer: for code in 0..total {
        let mut rem = code;
        let mut mapping: Vec<Option<VertexId>> = Vec::with_capacity(na);
        let mut used = vec![false; nb];
        for _ in 0..na {
            let c = rem % choices;
            rem /= choices;
            if c == nb {
                mapping.push(None);
            } else {
                if used[c] {
                    continue 'outer; // not injective
                }
                used[c] = true;
                mapping.push(Some(VertexId(c as u32)));
            }
        }
        best = best.min(induced_edit_cost(a, b, &mapping));
    }
    best
}

fn random_graph(rng: &mut rand::rngs::StdRng, max_v: usize, labels: u32) -> Graph {
    let n = rng.gen_range(1..=max_v);
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_vertex(Label(rng.gen_range(0..labels)));
    }
    for i in 1..n as u32 {
        if rng.gen_bool(0.8) {
            let j = rng.gen_range(0..i);
            let _ = g.add_edge(VertexId(i), VertexId(j));
        }
    }
    for _ in 0..n {
        let x = rng.gen_range(0..n as u32);
        let y = rng.gen_range(0..n as u32);
        if x != y && rng.gen_bool(0.3) {
            let _ = g.add_edge(VertexId(x), VertexId(y));
        }
    }
    g
}

#[test]
fn search_matches_brute_force_on_tiny_graphs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    for trial in 0..120 {
        let a = random_graph(&mut rng, 4, 2);
        let b = random_graph(&mut rng, 4, 2);
        let exact = ged_with_budget(&a, &b, 5_000_000);
        assert!(exact.is_exact(), "trial {trial} exhausted budget");
        let brute = brute_force_ged(&a, &b);
        assert_eq!(
            exact.distance, brute,
            "trial {trial}: search {} vs brute force {brute}\nA = {a:?}\nB = {b:?}",
            exact.distance
        );
        assert!(ged_lower_bound(&a, &b) <= brute);
    }
}

#[test]
fn optimal_scripts_exist_and_apply() {
    // For tiny pairs, find the optimal mapping by brute force, extract the
    // edit script, and replay it: the script length must equal the GED and
    // the result must be isomorphic to the target.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4052);
    for _ in 0..60 {
        let a = random_graph(&mut rng, 4, 2);
        let b = random_graph(&mut rng, 4, 2);
        let target = brute_force_ged(&a, &b);
        // Re-enumerate to recover an optimal mapping.
        let (na, nb) = (a.vertex_count(), b.vertex_count());
        let choices = nb + 1;
        let mut best_mapping = None;
        'outer: for code in 0..choices.pow(na as u32) {
            let mut rem = code;
            let mut mapping = Vec::with_capacity(na);
            let mut used = vec![false; nb];
            for _ in 0..na {
                let c = rem % choices;
                rem /= choices;
                if c == nb {
                    mapping.push(None);
                } else {
                    if used[c] {
                        continue 'outer;
                    }
                    used[c] = true;
                    mapping.push(Some(VertexId(c as u32)));
                }
            }
            if induced_edit_cost(&a, &b, &mapping) == target {
                best_mapping = Some(mapping);
                break;
            }
        }
        let mapping = best_mapping.expect("an optimal mapping exists");
        let script = edit_script(&a, &b, &mapping);
        assert_eq!(script.len(), target, "script length must equal GED");
        let out = apply_edit_script(&a, &script).expect("script applies");
        assert!(are_isomorphic(&out, &b), "script must land on the target");
    }
}
