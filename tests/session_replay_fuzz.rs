//! Replay fuzzing: for many generated repositories, panels, and queries,
//! the §6.1 step accounting must always correspond to an executable GUI
//! session that reconstructs the query exactly (see `eval::session`).

// Integration tests may use panicking shortcuts freely; the workspace
// no-panic policy targets library production code only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use catapult::graph::Graph;
use catapult::{datasets, eval};
use catapult_eval::steps::DEFAULT_EMBEDDING_CAP;

fn fuzz_one(profile: &datasets::MoleculeProfile, seed: u64) -> (usize, usize) {
    let db = datasets::generate(profile, 15, seed);
    let panel: Vec<Graph> = datasets::random_queries(&db.graphs, 5, (3, 7), seed ^ 0xA);
    let queries = datasets::random_queries(&db.graphs, 12, (3, 18), seed ^ 0xB);
    let mut replayed = 0;
    let mut with_patterns = 0;
    for q in &queries {
        let f = eval::formulate(q, &panel, DEFAULT_EMBEDDING_CAP);
        let session = eval::session::replay(q, &panel, &f)
            .unwrap_or_else(|e| panic!("replay failed (seed {seed}): {e}"));
        assert_eq!(
            session.steps(),
            f.steps,
            "claimed steps must be executable (seed {seed})"
        );
        assert!(
            session.completed(q),
            "replay must reconstruct the query (seed {seed})"
        );
        replayed += 1;
        if f.used_any_pattern() {
            with_patterns += 1;
        }
    }
    (replayed, with_patterns)
}

#[test]
fn replay_holds_across_profiles_and_seeds() {
    let mut total = 0;
    let mut pattern_cases = 0;
    for profile in [
        datasets::aids_profile(),
        datasets::pubchem_profile(),
        datasets::emol_profile(),
    ] {
        for seed in [1u64, 2, 3, 4] {
            let (r, p) = fuzz_one(&profile, seed);
            total += r;
            pattern_cases += p;
        }
    }
    assert_eq!(total, 3 * 4 * 12);
    // The fuzz must actually exercise the pattern-drag path, not just
    // degenerate edge-at-a-time sessions.
    assert!(
        pattern_cases > total / 3,
        "only {pattern_cases}/{total} sessions used patterns"
    );
}

#[test]
fn replay_with_gui_panels_and_blank_labels() {
    // The unlabeled-panel path: relabel queries, replay on the blank
    // panel, and confirm the pre-relabel step count matches the session.
    let db = datasets::generate(&datasets::pubchem_profile(), 15, 77);
    let gui = eval::gui::pubchem_gui_patterns();
    let queries = datasets::random_queries(&db.graphs, 10, (4, 15), 78);
    for q in &queries {
        let blank = eval::steps::relabel_uniform(q, catapult::graph::Label(0));
        let pats: Vec<Graph> = gui
            .iter()
            .map(|p| eval::steps::relabel_uniform(p, catapult::graph::Label(0)))
            .collect();
        let f = eval::formulate(&blank, &pats, DEFAULT_EMBEDDING_CAP);
        let session = eval::session::replay(&blank, &pats, &f).unwrap();
        assert_eq!(session.steps(), f.steps);
        assert!(session.completed(&blank));
    }
}
