//! Exhaustive verification of the tree canonical form (Fig. 5 encoding,
//! injective variant): over *all* labeled trees up to 6 vertices with a
//! 2-letter alphabet, the canonical token stream must induce exactly the
//! isomorphism classes — no collisions (soundness) and no splits
//! (invariance).

// Integration tests may use panicking shortcuts freely; the workspace
// no-panic policy targets library production code only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use catapult::graph::canonical::canonical_tokens;
use catapult::graph::iso::are_isomorphic;
use catapult::graph::{Graph, Label, VertexId};
use std::collections::HashMap;

/// Enumerate every labeled tree on `n` vertices with labels in
/// `0..alphabet`, via Prüfer-style parent arrays (each vertex i ≥ 1 picks
/// a parent < i) — this generates every tree shape (possibly repeatedly,
/// which is fine for this test).
fn all_trees(n: usize, alphabet: u32) -> Vec<Graph> {
    let mut out = Vec::new();
    // Parent choices: vertex i has i options (0..i), total ∏ i = (n-1)!.
    let parent_space: usize = (1..n).product();
    let label_space: usize = (alphabet as usize).pow(n as u32);
    for p_code in 0..parent_space {
        // Decode the parent array.
        let mut parents = Vec::with_capacity(n.saturating_sub(1));
        let mut rem = p_code;
        for i in 1..n {
            parents.push(rem % i);
            rem /= i;
        }
        for l_code in 0..label_space {
            let mut labels = Vec::with_capacity(n);
            let mut rem = l_code;
            for _ in 0..n {
                labels.push(Label((rem % alphabet as usize) as u32));
                rem /= alphabet as usize;
            }
            let mut g = Graph::new();
            for &l in &labels {
                g.add_vertex(l);
            }
            for (i, &p) in parents.iter().enumerate() {
                g.add_edge(VertexId((i + 1) as u32), VertexId(p as u32))
                    .unwrap();
            }
            out.push(g);
        }
    }
    out
}

#[test]
fn canonical_form_is_exactly_isomorphism_on_small_trees() {
    for n in 1..=5usize {
        let trees = all_trees(n, 2);
        // Bucket by canonical tokens; all members of a bucket must be
        // isomorphic, and representatives of distinct buckets must not be.
        let mut buckets: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        for (i, t) in trees.iter().enumerate() {
            buckets.entry(canonical_tokens(t)).or_default().push(i);
        }
        for members in buckets.values() {
            let rep = &trees[members[0]];
            for &m in &members[1..] {
                assert!(
                    are_isomorphic(rep, &trees[m]),
                    "canonical collision at n={n}"
                );
            }
        }
        let reps: Vec<&Graph> = buckets.values().map(|m| &trees[m[0]]).collect();
        for i in 0..reps.len() {
            for j in (i + 1)..reps.len() {
                assert!(
                    !are_isomorphic(reps[i], reps[j]),
                    "canonical split at n={n}: isomorphic trees in different buckets"
                );
            }
        }
    }
}

#[test]
fn class_counts_match_known_unlabeled_tree_numbers() {
    // With a 1-letter alphabet the buckets count unlabeled free trees:
    // 1, 1, 1, 2, 3, 6 for n = 1..=6 (OEIS A000055).
    let expected = [1usize, 1, 1, 2, 3, 6];
    for (n, &want) in (1..=6usize).zip(&expected) {
        let trees = all_trees(n, 1);
        let mut canon: Vec<Vec<u32>> = trees.iter().map(canonical_tokens).collect();
        canon.sort();
        canon.dedup();
        assert_eq!(canon.len(), want, "free-tree count at n={n}");
    }
}

#[test]
fn six_vertex_two_label_spot_check() {
    // n=6 with 2 labels is 120 × 64 = 7680 trees — bucket and verify a
    // sampled subset of pairs to bound runtime.
    let trees = all_trees(6, 2);
    let mut buckets: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for (i, t) in trees.iter().enumerate() {
        buckets.entry(canonical_tokens(t)).or_default().push(i);
    }
    for members in buckets.values() {
        let rep = &trees[members[0]];
        for &m in members.iter().skip(1).step_by(7) {
            assert!(are_isomorphic(rep, &trees[m]));
        }
    }
    // Representatives pairwise distinct (sampled stride).
    let reps: Vec<&Graph> = buckets.values().map(|m| &trees[m[0]]).collect();
    for i in (0..reps.len()).step_by(9) {
        for j in ((i + 1)..reps.len()).step_by(11) {
            assert!(!are_isomorphic(reps[i], reps[j]));
        }
    }
}
