//! Property tests: every parallel stage equals its sequential self.
//!
//! Where `tests/parallel_determinism.rs` pins the end-to-end pipeline,
//! these tests compare the individual parallel fan-outs — subtree
//! mining, fine clustering, candidate scoring, and workload evaluation —
//! element-for-element between one worker and eight, over a spread of
//! randomly generated molecule repositories. The comparison includes the
//! [`Completeness`] audit tags: budget accounting must not drift with
//! the thread count either.
//!
//! [`Completeness`]: catapult::graph::Completeness

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catapult::cluster::fine::{fine_cluster_audited, FineConfig};
use catapult::datasets::{
    aids_profile, emol_profile, generate, pubchem_profile, random_queries, MoleculeProfile,
};
use catapult::eval::measures::{mean_diversity, subgraph_coverage};
use catapult::eval::WorkloadEvaluation;
use catapult::graph::{Graph, SearchBudget};
use catapult::mining::subtree::mine_subtrees;
use catapult::mining::SubtreeMinerConfig;
use catapult::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// `rayon::set_threads` is process-global; hold this across every flip.
static SERIAL: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::set_threads(n);
    let out = f();
    rayon::set_threads(0);
    out
}

/// A deterministic spread of small random repositories.
fn random_dbs() -> Vec<(String, Vec<Graph>)> {
    let profiles: [(&str, MoleculeProfile); 3] = [
        ("aids", aids_profile()),
        ("pubchem", pubchem_profile()),
        ("emol", emol_profile()),
    ];
    let mut dbs = Vec::new();
    for (name, profile) in profiles {
        for seed in [1u64, 99] {
            let db = generate(&profile, 24, seed);
            dbs.push((format!("{name}/seed{seed}"), db.graphs));
        }
    }
    dbs
}

#[test]
fn subtree_mining_is_threadcount_invariant() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = SubtreeMinerConfig {
        min_support: 0.2,
        max_edges: 3,
        ..Default::default()
    };
    for (name, db) in random_dbs() {
        let budget = SearchBudget::unbounded();
        let seq = with_threads(1, || mine_subtrees(&db, &cfg, &budget));
        let par = with_threads(8, || mine_subtrees(&db, &cfg, &budget));
        assert_eq!(
            seq.subtrees.len(),
            par.subtrees.len(),
            "{name}: subtree count diverged"
        );
        for (a, b) in seq.subtrees.iter().zip(&par.subtrees) {
            assert_eq!(a.canonical, b.canonical, "{name}: canonical form diverged");
            assert_eq!(
                a.transactions, b.transactions,
                "{name}: transaction list diverged"
            );
        }
        assert_eq!(
            seq.candidates_counted, par.candidates_counted,
            "{name}: candidate count diverged"
        );
        assert_eq!(seq.kernel, par.kernel, "{name}: kernel tally diverged");
        assert_eq!(
            seq.completeness, par.completeness,
            "{name}: completeness tag diverged"
        );
    }
}

#[test]
fn subtree_mining_tally_matches_even_when_budgeted() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // A tight node cap degrades some probes; the *counts* of degraded
    // probes are still deterministic because each probe runs exactly once
    // with its own budget meter, wherever it is scheduled.
    let cfg = SubtreeMinerConfig {
        min_support: 0.2,
        max_edges: 3,
        ..Default::default()
    };
    let budget = SearchBudget::nodes(40);
    for (name, db) in random_dbs().into_iter().take(2) {
        let seq = with_threads(1, || mine_subtrees(&db, &cfg, &budget));
        let par = with_threads(8, || mine_subtrees(&db, &cfg, &budget));
        assert_eq!(seq.kernel, par.kernel, "{name}: budgeted tally diverged");
        assert_eq!(
            seq.completeness, par.completeness,
            "{name}: budgeted completeness diverged"
        );
        for (a, b) in seq.subtrees.iter().zip(&par.subtrees) {
            assert_eq!(
                a.transactions, b.transactions,
                "{name}: budgeted transactions diverged"
            );
        }
    }
}

#[test]
fn fine_clustering_is_threadcount_invariant() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = FineConfig {
        max_cluster_size: 4,
        ..Default::default()
    };
    // MCCS splitting is the priciest kernel here; three repositories keep
    // the binary affordable while still spanning all profiles.
    for (name, db) in random_dbs().into_iter().step_by(2) {
        // One oversized cluster holding everything forces real splits.
        let all: Vec<u32> = (0..db.len() as u32).collect();
        // Identical RNG seeds: the splitting seeds are drawn *outside*
        // the parallel region, so the whole trajectory must replay.
        let seq = with_threads(1, || {
            let mut rng = StdRng::seed_from_u64(5);
            fine_cluster_audited(&db, vec![all.clone()], &cfg, &mut rng)
        });
        let par = with_threads(8, || {
            let mut rng = StdRng::seed_from_u64(5);
            fine_cluster_audited(&db, vec![all.clone()], &cfg, &mut rng)
        });
        assert_eq!(seq.clusters, par.clusters, "{name}: clusters diverged");
        assert_eq!(seq.kernel, par.kernel, "{name}: kernel tally diverged");
    }
}

#[test]
fn candidate_scoring_is_threadcount_invariant() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // run_catapult exercises the parallel scoring loop of Algorithm 4;
    // scores and CSG provenance must match element-for-element (the
    // greedy argmax consumes the whole scored vector, so any divergence
    // would cascade into different patterns).
    let cfg = CatapultConfig {
        budget: PatternBudget::new(3, 5, 4).unwrap(),
        walks: 10,
        seed: 13,
        ..Default::default()
    };
    for (name, db) in random_dbs().into_iter().take(3) {
        let seq = with_threads(1, || run_catapult(&db, &cfg));
        let par = with_threads(8, || run_catapult(&db, &cfg));
        assert_eq!(
            seq.selection.selected.len(),
            par.selection.selected.len(),
            "{name}: selection length diverged"
        );
        for (a, b) in seq.selection.selected.iter().zip(&par.selection.selected) {
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "{name}: score bits diverged"
            );
            assert_eq!(a.source_csg, b.source_csg, "{name}: provenance diverged");
            assert_eq!(
                a.pattern.invariant_signature(),
                b.pattern.invariant_signature(),
                "{name}: pattern diverged"
            );
        }
        assert_eq!(
            seq.selection.report, par.selection.report,
            "{name}: pipeline report diverged"
        );
    }
}

#[test]
fn workload_evaluation_is_threadcount_invariant() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (name, db) = &random_dbs()[0];
    let queries = random_queries(db, 20, (3, 8), 17);
    let patterns: Vec<Graph> = db.iter().take(4).cloned().collect();
    let seq = with_threads(1, || {
        let ev = WorkloadEvaluation::evaluate(&patterns, &queries);
        (
            ev.mean_reduction().to_bits(),
            ev.missed_percentage().to_bits(),
            subgraph_coverage(&patterns, db).to_bits(),
            mean_diversity(&patterns).to_bits(),
        )
    });
    let par = with_threads(8, || {
        let ev = WorkloadEvaluation::evaluate(&patterns, &queries);
        (
            ev.mean_reduction().to_bits(),
            ev.missed_percentage().to_bits(),
            subgraph_coverage(&patterns, db).to_bits(),
            mean_diversity(&patterns).to_bits(),
        )
    });
    assert_eq!(seq, par, "{name}: evaluation measures diverged");
}
