//! Fault-injected graceful-degradation tests for the whole pipeline.
//!
//! With the `fault-injection` feature, [`catapult::graph::budget::fault`]
//! deterministically cripples the K-th budgeted kernel invocation
//! (forcing budget exhaustion, an expired deadline, or cancellation).
//! These tests sweep K and the fault kind across an end-to-end
//! `run_catapult` and prove the robustness contract: the pipeline always
//! returns a valid, budget-conforming pattern set, and whenever a fault
//! actually fired, the [`PipelineReport`] names the degraded stage and
//! why — degradation is never silent.
//!
//! Run with: `cargo test --features fault-injection --test fault_injection`
#![cfg(feature = "fault-injection")]
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catapult::graph::budget::fault::{self, FaultKind, FaultPlan};
use catapult::graph::components::is_connected;
use catapult::graph::{Graph, Label, VertexId};
use catapult::prelude::*;
use std::sync::Mutex;

/// The fault plan and invocation counter are process-global; every test
/// must hold this lock so plans do not bleed between tests.
static SERIAL: Mutex<()> = Mutex::new(());

fn ring(n: u32, label: u32) -> Graph {
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_vertex(Label(label));
    }
    for i in 0..n {
        g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
    }
    g
}

fn chain(n: u32, labels: &[u32]) -> Graph {
    let mut g = Graph::new();
    for i in 0..n {
        g.add_vertex(Label(labels[i as usize % labels.len()]));
    }
    for i in 0..n - 1 {
        g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
    }
    g
}

fn small_db() -> Vec<Graph> {
    let mut db = Vec::new();
    for i in 0..8 {
        db.push(ring(5 + i % 2, 0));
        db.push(chain(6, &[0, 1]));
    }
    db
}

const GAMMA: usize = 4;
const ETA_MIN: usize = 3;
const ETA_MAX: usize = 5;

fn config() -> CatapultConfig {
    CatapultConfig {
        budget: PatternBudget::new(ETA_MIN, ETA_MAX, GAMMA).unwrap(),
        walks: 10,
        seed: 11,
        ..Default::default()
    }
}

/// The γ/η validity contract that must hold under EVERY fault.
fn assert_valid_pattern_set(r: &catapult::core::CatapultResult, ctx: &str) {
    let patterns = r.patterns();
    assert!(patterns.len() <= GAMMA, "{ctx}: more than γ patterns");
    for p in &patterns {
        assert!(
            (ETA_MIN..=ETA_MAX).contains(&p.edge_count()),
            "{ctx}: pattern size {} outside [{ETA_MIN}, {ETA_MAX}]",
            p.edge_count()
        );
        assert!(is_connected(p), "{ctx}: disconnected pattern");
    }
}

/// Run one pipeline with a fault armed at invocation `k`; returns the
/// result and whether the fault actually fired.
fn run_with_fault(db: &[Graph], kind: FaultKind, k: u64) -> (catapult::core::CatapultResult, bool) {
    fault::install(FaultPlan {
        kind,
        at: k,
        sticky: false,
    });
    let r = run_catapult(db, &config());
    let fired = fault::invocations() >= k;
    fault::clear();
    (r, fired)
}

/// Sweep every injection point when the run is small enough, otherwise an
/// evenly strided deterministic sample that always includes the first and
/// last invocations.
fn injection_points(total: u64) -> Vec<u64> {
    if total <= 48 {
        (1..=total).collect()
    } else {
        let mut ks: Vec<u64> = (1..=total).step_by((total / 40).max(1) as usize).collect();
        if ks.last() != Some(&total) {
            ks.push(total);
        }
        ks
    }
}

#[test]
fn every_injection_point_degrades_gracefully_and_loudly() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = small_db();

    // Baseline: count kernel invocations of a clean run (a never-firing
    // plan resets the counter without crippling anything).
    fault::install(FaultPlan {
        kind: FaultKind::Exhaust,
        at: u64::MAX,
        sticky: false,
    });
    let clean = run_catapult(&db, &config());
    let total = fault::invocations();
    fault::clear();
    assert!(clean.report().all_exact(), "baseline must be exact");
    assert!(total > 0, "pipeline must exercise budgeted kernels");
    assert_valid_pattern_set(&clean, "baseline");

    for k in injection_points(total) {
        for kind in [FaultKind::Exhaust, FaultKind::Deadline, FaultKind::Cancel] {
            let (r, fired) = run_with_fault(&db, kind, k);
            let ctx = format!("K={k} kind={kind:?}");
            assert_valid_pattern_set(&r, &ctx);
            if fired {
                // The whole point: degradation must be visible, with the
                // stage and the reason on the report.
                assert!(
                    !r.report().all_exact(),
                    "{ctx}: fault fired but report claims exact"
                );
                let stages = r.report().degraded_stages();
                assert!(!stages.is_empty(), "{ctx}: no degraded stage named");
                for s in &stages {
                    assert!(
                        ["mining", "clustering", "scoring"].contains(s),
                        "{ctx}: unknown stage {s}"
                    );
                }
                assert_eq!(
                    r.report().worst(),
                    kind.completeness(),
                    "{ctx}: report must carry the injected fault's tag"
                );
            } else {
                assert!(
                    r.report().all_exact(),
                    "{ctx}: no fault fired, run must be exact"
                );
            }
        }
    }
}

#[test]
fn first_invocation_fault_lands_in_mining() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = small_db();
    let (r, fired) = run_with_fault(&db, FaultKind::Exhaust, 1);
    assert!(fired, "a non-empty db must invoke at least one kernel");
    assert_valid_pattern_set(&r, "K=1");
    assert!(
        r.report().degraded_stages().contains(&"mining"),
        "the first kernel call belongs to subtree mining, got {:?}",
        r.report().degraded_stages()
    );
}

#[test]
fn sticky_fault_from_start_still_yields_conforming_output() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = small_db();
    for kind in [FaultKind::Exhaust, FaultKind::Deadline, FaultKind::Cancel] {
        fault::install(FaultPlan {
            kind,
            at: 1,
            sticky: true,
        });
        let r = run_catapult(&db, &config());
        fault::clear();
        // With every kernel crippled the selection may be small or empty,
        // but it must never violate the budget contract or hide the
        // degradation.
        assert_valid_pattern_set(&r, &format!("sticky {kind:?}"));
        assert!(!r.report().all_exact(), "sticky {kind:?} must degrade");
        assert_eq!(r.report().worst(), kind.completeness());
    }
}

/// A config whose kernel invocations all belong to the fine-clustering
/// fan-out (no mining stage), so a small K lands the panic inside a
/// parallel worker item.
fn fine_only_config(keep_going: bool) -> CatapultConfig {
    let mut cfg = config();
    cfg.clustering.strategy =
        catapult::cluster::Strategy::FineOnly(catapult::cluster::SimilarityKind::Mccs);
    cfg.clustering.max_cluster_size = 6;
    cfg.clustering.keep_going = keep_going;
    cfg
}

#[test]
fn worker_panic_aborts_loudly_by_default() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = small_db();
    fault::install(FaultPlan {
        kind: FaultKind::Panic,
        at: 3,
        sticky: false,
    });
    // Fail-fast is the default: the injected worker death must surface
    // as a panic of the whole run, not a silently weaker result.
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_catapult(&db, &fine_only_config(false))
    }));
    fault::clear();
    assert!(r.is_err(), "worker panic must abort without --keep-going");
}

#[test]
fn keep_going_isolates_worker_panics_and_reports_them() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = small_db();
    fault::install(FaultPlan {
        kind: FaultKind::Panic,
        at: 3,
        sticky: false,
    });
    let r = run_catapult(&db, &fine_only_config(true));
    let fired = fault::invocations() >= 3;
    fault::clear();
    assert!(fired, "the fine fan-out must reach the faulted invocation");
    assert_valid_pattern_set(&r, "keep-going panic");
    // The panicked item is confined and visible: tagged Degraded, which
    // surfaces as `failed` on the clustering tally and flips the
    // overall verdict.
    assert!(
        r.report().clustering.failed > 0,
        "isolated panic must be tallied as failed, got {:?}",
        r.report().clustering
    );
    assert!(!r.report().all_exact(), "degradation must not be silent");
    assert!(r.report().degraded_stages().contains(&"clustering"));
}

#[test]
fn deterministic_under_identical_fault_plans() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Probe-level replay: which probe is the K-th depends on worker
    // interleaving once `par_iter` is truly parallel, so fingerprint
    // equality is only guaranteed single-threaded. (Stage-level replay
    // under 8 workers is covered by tests/parallel_determinism.rs.)
    rayon::set_threads(1);
    let db = small_db();
    let fingerprint = |r: &catapult::core::CatapultResult| {
        r.patterns()
            .iter()
            .map(|p| p.invariant_signature())
            .collect::<Vec<_>>()
    };
    let (a, _) = run_with_fault(&db, FaultKind::Exhaust, 7);
    let (b, _) = run_with_fault(&db, FaultKind::Exhaust, 7);
    rayon::set_threads(0);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.report(), b.report(), "audit must replay identically");
}
