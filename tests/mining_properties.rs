//! Property-based tests over the mining substrates: support
//! anti-monotonicity, miner/scan agreement, index completeness, and
//! facility-location bounds on generated repositories.

// Integration tests may use panicking shortcuts freely; the workspace
// no-panic policy targets library production code only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use catapult::graph::iso::contains;
use catapult::graph::Graph;
use catapult::mining::{
    gindex::{scan_search, GraphIndex},
    subgraph::{mine_frequent_subgraphs, select_baseline_patterns, SubgraphMinerConfig},
    subtree::{feature_vector, mine_frequent_subtrees, SubtreeMinerConfig},
};
use catapult::{datasets, eval};
use proptest::prelude::*;

fn repo(seed: u64, count: usize) -> Vec<Graph> {
    datasets::generate(&datasets::emol_profile(), count, seed).graphs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn subtree_supports_are_exact_and_antimonotone(seed in 0u64..500) {
        let db = repo(seed, 10);
        let cfg = SubtreeMinerConfig {
            min_support: 0.3,
            max_edges: 3,
            ..Default::default()
        };
        let mined = mine_frequent_subtrees(&db, &cfg);
        let min_count = (0.3f64 * db.len() as f64).ceil() as usize;
        for t in &mined {
            // Exactness: every claimed transaction contains the tree, and
            // no other graph does.
            prop_assert!(t.support() >= min_count);
            let real: Vec<u32> = (0..db.len() as u32)
                .filter(|&i| contains(&db[i as usize], &t.tree))
                .collect();
            prop_assert_eq!(&real, &t.transactions);
        }
        // Anti-monotonicity: every 2-edge subtree's support is ≤ the
        // support of each of its 1-edge subtrees (checked via containment).
        for big in mined.iter().filter(|t| t.tree.edge_count() == 2) {
            for small in mined.iter().filter(|t| t.tree.edge_count() == 1) {
                if contains(&big.tree, &small.tree) {
                    prop_assert!(big.support() <= small.support());
                }
            }
        }
    }

    #[test]
    fn subgraph_miner_agrees_with_direct_counting(seed in 0u64..500) {
        let db = repo(seed, 8);
        let mined = mine_frequent_subgraphs(
            &db,
            &SubgraphMinerConfig {
                min_support: 0.4,
                max_edges: 3,
                ..Default::default()
            },
        );
        for f in &mined {
            let real: Vec<u32> = (0..db.len() as u32)
                .filter(|&i| contains(&db[i as usize], &f.graph))
                .collect();
            prop_assert_eq!(&real, &f.transactions);
        }
        // Baseline selection honours the per-size quota.
        let sel = select_baseline_patterns(&mined, 6, 1, 3);
        prop_assert!(sel.len() <= 6);
        for size in 1..=3usize {
            prop_assert!(sel.iter().filter(|g| g.edge_count() == size).count() <= 2);
        }
    }

    #[test]
    fn index_search_equals_scan(seed in 0u64..500) {
        let db = repo(seed, 12);
        let index = GraphIndex::build(
            &db,
            &SubtreeMinerConfig {
                min_support: 0.25,
                max_edges: 2,
                ..Default::default()
            },
        );
        let queries = datasets::random_queries(&db, 6, (2, 10), seed ^ 3);
        for q in &queries {
            let (answers, stats) = index.search(&db, q);
            prop_assert_eq!(answers.clone(), scan_search(&db, q));
            prop_assert!(stats.answers <= stats.candidates);
            prop_assert!(stats.candidates <= db.len());
            // Completeness: the candidate set is a superset of the answers.
            let (cands, _) = index.candidates(q);
            for a in &answers {
                prop_assert!(cands.contains(a));
            }
        }
    }

    #[test]
    fn feature_vectors_match_containment(seed in 0u64..500) {
        let db = repo(seed, 8);
        let mined = mine_frequent_subtrees(
            &db,
            &SubtreeMinerConfig {
                min_support: 0.3,
                max_edges: 2,
                ..Default::default()
            },
        );
        for (i, g) in db.iter().enumerate() {
            let fv = feature_vector(g, &mined);
            for (j, t) in mined.iter().enumerate() {
                prop_assert_eq!(fv[j], t.transactions.contains(&(i as u32)));
            }
        }
    }

    #[test]
    fn basic_patterns_rank_consistently(seed in 0u64..500) {
        let db = repo(seed, 8);
        let top = eval::basic::top_basic_patterns(&db, 10);
        for b in &top {
            prop_assert!(eval::basic::verify_support(&db, b));
        }
        for w in top.windows(2) {
            prop_assert!(w[0].support >= w[1].support);
        }
    }
}
