//! Integration tests of the evaluation stack (step model, GUI simulators,
//! measures) against the pipeline's outputs — the §6 machinery end to end.

// Integration tests may use panicking shortcuts freely; the workspace
// no-panic policy targets library production code only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use catapult::prelude::*;
use catapult::{datasets, eval};
use catapult_eval::steps::DEFAULT_EMBEDDING_CAP;

fn repo() -> datasets::MoleculeDb {
    datasets::generate(&datasets::pubchem_profile(), 40, 55)
}

fn catapult_panel(db: &[Graph]) -> Vec<Graph> {
    let cfg = CatapultConfig {
        budget: PatternBudget::new(3, 8, 12).unwrap(),
        walks: 20,
        ..Default::default()
    };
    run_catapult(db, &cfg).patterns()
}

#[test]
fn step_p_never_exceeds_edge_at_a_time() {
    let db = repo();
    let panel = catapult_panel(&db.graphs);
    let queries = datasets::random_queries(&db.graphs, 50, (4, 25), 56);
    for q in &queries {
        let f = eval::formulate(q, &panel, DEFAULT_EMBEDDING_CAP);
        assert!(f.steps <= f.steps_edge_at_a_time);
        assert_eq!(f.steps_edge_at_a_time, eval::step_total(q));
    }
}

#[test]
fn chosen_embeddings_never_overlap() {
    let db = repo();
    let panel = catapult_panel(&db.graphs);
    let queries = datasets::random_queries(&db.graphs, 30, (6, 20), 57);
    for q in &queries {
        let f = eval::formulate(q, &panel, DEFAULT_EMBEDDING_CAP);
        let mut used = std::collections::HashSet::new();
        for occ in &f.used {
            for v in &occ.vertices {
                assert!(used.insert(*v), "vertex {v:?} reused across occurrences");
            }
        }
    }
}

#[test]
fn step_accounting_is_consistent() {
    let db = repo();
    let panel = catapult_panel(&db.graphs);
    let queries = datasets::random_queries(&db.graphs, 30, (4, 18), 58);
    for q in &queries {
        let f = eval::formulate(q, &panel, DEFAULT_EMBEDDING_CAP);
        let cov_v: usize = f.used.iter().map(|o| o.vertices.len()).sum();
        let cov_e: usize = f.used.iter().map(|o| o.edges.len()).sum();
        assert_eq!(
            f.steps,
            f.used.len() + (q.vertex_count() - cov_v) + (q.edge_count() - cov_e)
        );
    }
}

#[test]
fn gui_relabelling_model_charges_pattern_vertices() {
    let db = repo();
    let gui = eval::gui::pubchem_gui_patterns();
    let queries = datasets::random_queries(&db.graphs, 20, (6, 20), 59);
    for q in &queries {
        let f = eval::formulate_unlabeled(q, &gui, DEFAULT_EMBEDDING_CAP);
        let pattern_vertices: usize = f.used.iter().map(|o| o.vertices.len()).sum();
        let base = f.used.len()
            + (q.vertex_count() - pattern_vertices)
            + (q.edge_count() - f.used.iter().map(|o| o.edges.len()).sum::<usize>());
        assert_eq!(f.steps, base + pattern_vertices);
    }
}

#[test]
fn data_driven_panel_beats_unlabeled_gui_on_average() {
    // The robust Exp 3 headline is the eMolecules cell: a data-driven
    // 6-pattern panel beats the ring-only unlabeled GUI panel (paper avg
    // μG = 0.18 there; the PubChem cell is a near-tie at 0.03 and is
    // covered distributionally by the exp3 harness instead).
    let db = datasets::generate(&datasets::emol_profile(), 60, 55);
    let cfg = CatapultConfig {
        budget: PatternBudget::new(3, 8, 6).unwrap(),
        walks: 40,
        ..Default::default()
    };
    let panel = run_catapult(&db.graphs, &cfg).patterns();
    let gui = eval::gui::emol_gui_patterns();
    let queries = datasets::random_queries(&db.graphs, 60, (4, 25), 60);
    let mut cat_total = 0usize;
    let mut gui_total = 0usize;
    let mut cat_wins = 0usize;
    for q in &queries {
        let fc = eval::formulate(q, &panel, DEFAULT_EMBEDDING_CAP);
        let fg = eval::formulate_unlabeled(q, &gui, DEFAULT_EMBEDDING_CAP);
        cat_total += fc.steps;
        gui_total += fg.steps;
        if fc.steps < fg.steps {
            cat_wins += 1;
        }
    }
    assert!(
        cat_total < gui_total,
        "CATAPULT {cat_total} should beat GUI {gui_total}"
    );
    assert!(
        cat_wins >= queries.len() / 4,
        "too few per-query wins: {cat_wins}"
    );
}

#[test]
fn coverage_grows_with_budget() {
    let db = repo();
    let small = {
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 8, 4).unwrap(),
            walks: 20,
            ..Default::default()
        };
        run_catapult(&db.graphs, &cfg).patterns()
    };
    let large = {
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 8, 16).unwrap(),
            walks: 20,
            ..Default::default()
        };
        run_catapult(&db.graphs, &cfg).patterns()
    };
    let s_small = eval::measures::subgraph_coverage(&small, &db.graphs);
    let s_large = eval::measures::subgraph_coverage(&large, &db.graphs);
    assert!(
        s_large >= s_small - 0.1,
        "coverage should not collapse with a larger budget ({s_small} → {s_large})"
    );
}

#[test]
fn missed_percentage_bounds() {
    let db = repo();
    let queries = datasets::random_queries(&db.graphs, 20, (4, 15), 61);
    // Empty pattern set misses everything.
    let none = eval::WorkloadEvaluation::evaluate(&[], &queries);
    assert_eq!(none.missed_percentage(), 100.0);
    assert_eq!(none.mean_reduction(), 0.0);
    // The repository's own graphs as "patterns" would hit nearly all
    // queries (every query is a subgraph of some data graph).
    let full = eval::WorkloadEvaluation::evaluate(&db.graphs[..10], &queries);
    assert!(full.missed_percentage() <= 100.0);
}

#[test]
fn simulated_study_is_reproducible_and_ordered() {
    let db = repo();
    let panel = catapult_panel(&db.graphs);
    let q = datasets::random_queries(&db.graphs, 1, (15, 25), 62).remove(0);
    let f = eval::formulate(&q, &panel, DEFAULT_EMBEDDING_CAP);
    let a = eval::userstudy::run_cell(&f, &panel, 0, 10, 99);
    let b = eval::userstudy::run_cell(&f, &panel, 0, 10, 99);
    assert_eq!(a.mean_qft, b.mean_qft);
    assert!(a.mean_qft > 0.0);
}
