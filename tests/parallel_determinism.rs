//! Parallel determinism: the executor must be invisible in the output.
//!
//! The rayon shim (`shims/rayon`) fans `par_iter` out over real
//! `std::thread::scope` workers but guarantees order-preserving
//! collection, and every parallel closure in the pipeline touches shared
//! state only through commutative accumulators ([`Tally`]) — so a full
//! `run_catapult` must produce **byte-identical** results for every
//! thread count. These tests pin that contract: the quickstart pipeline
//! is serialized (patterns, scores, provenance, clusters, and the
//! completeness report — everything except wall-clock times) and compared
//! against the single-threaded golden for threads ∈ {1, 2, 8}.
//!
//! With `--features fault-injection` the fault sweep from
//! `tests/fault_injection.rs` is re-run under 8 threads: the K-th-probe
//! counter is interleaving-dependent *within* a stage, but the stage
//! structure, the validity contract, and the loud-degradation guarantee
//! must survive any interleaving.
//!
//! [`Tally`]: catapult::graph::Tally

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catapult::datasets::{aids_profile, generate, MoleculeDb};
use catapult::graph::fmt::write_graphs;
use catapult::prelude::*;
use std::fmt::Write as _;
use std::sync::Mutex;

/// `rayon::set_threads` is process-global; serialize every test that
/// flips it so concurrent tests never observe a half-changed setting.
static SERIAL: Mutex<()> = Mutex::new(());

/// Run `f` with the pool pinned to `n` workers, restoring auto sizing.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::set_threads(n);
    let out = f();
    rayon::set_threads(0);
    out
}

fn quickstart_db() -> MoleculeDb {
    generate(&aids_profile(), 30, 7)
}

fn quickstart_cfg() -> CatapultConfig {
    CatapultConfig {
        budget: PatternBudget::new(3, 6, 6).unwrap(),
        walks: 20,
        ..Default::default()
    }
}

/// Canonical text form of everything deterministic in a pipeline run.
///
/// Deliberately excludes the two wall-clock fields
/// (`clustering.elapsed`, `selection.elapsed`): they are the only parts
/// of [`CatapultResult`] allowed to differ between runs.
fn serialize(db: &MoleculeDb, r: &catapult::core::CatapultResult) -> String {
    let mut s = String::new();
    // The pattern graphs themselves, in selection order.
    s.push_str(&write_graphs(&r.patterns(), &db.interner));
    // Scores ({:?} on f64 is the shortest round-trip form — bit-faithful)
    // and CSG provenance.
    for sp in &r.selection.selected {
        let _ = writeln!(s, "score {:?} csg {}", sp.score, sp.source_csg);
    }
    // Clustering structure and the CSGs' vertex/edge shapes.
    let _ = writeln!(s, "clusters {:?}", r.clustering.clusters);
    for csg in &r.csgs {
        let _ = writeln!(s, "csg {:?}", csg);
    }
    // The per-stage completeness audit (Tally counts are commutative, so
    // they too must match across thread counts).
    let _ = writeln!(s, "report {:?}", r.selection.report);
    s
}

#[test]
fn full_pipeline_is_byte_identical_across_thread_counts() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = quickstart_db();
    let cfg = quickstart_cfg();

    let golden = with_threads(1, || serialize(&db, &run_catapult(&db.graphs, &cfg)));
    assert!(!golden.is_empty(), "golden run must select patterns");

    for threads in [2usize, 8] {
        let got = with_threads(threads, || serialize(&db, &run_catapult(&db.graphs, &cfg)));
        assert_eq!(
            got, golden,
            "threads={threads} diverged from the single-threaded golden"
        );
    }
}

/// The observability layer must be invisible in the output: a recorder
/// only *observes* (spans, counters), so a recorder-enabled run must stay
/// byte-identical to the disabled golden for every thread count.
#[test]
fn recorder_enabled_run_is_byte_identical_to_disabled() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = quickstart_db();
    let golden = with_threads(1, || {
        serialize(&db, &run_catapult(&db.graphs, &quickstart_cfg()))
    });

    for threads in [1usize, 2, 8] {
        let recorder = catapult_obs::Recorder::enabled();
        let cfg = CatapultConfig {
            recorder: recorder.clone(),
            ..quickstart_cfg()
        };
        let got = with_threads(threads, || serialize(&db, &run_catapult(&db.graphs, &cfg)));
        assert_eq!(
            got, golden,
            "threads={threads}: enabling the recorder changed pipeline output"
        );
        // And the recorder must actually have observed the run.
        let snap = recorder.snapshot().unwrap();
        assert!(
            snap.spans.iter().any(|sp| sp.name == "pipeline"),
            "threads={threads}: missing pipeline span"
        );
        assert!(
            snap.stage_metric_total("mining", "calls") > 0,
            "threads={threads}: mining ran but recorded no kernel calls"
        );
    }
}

/// The *full* telemetry stack — flight recorder capturing events, a
/// `--progress` heartbeat ticking on its own thread, recorder enabled —
/// must also be invisible in the output, for both a sequential and a
/// saturated pool. This is the CLI's `--progress`/`--flight-out`
/// neutrality contract.
#[test]
fn flight_recorder_and_progress_meter_are_output_neutral() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = quickstart_db();
    let golden = with_threads(1, || {
        serialize(&db, &run_catapult(&db.graphs, &quickstart_cfg()))
    });

    let was_enabled = catapult_obs::flight::is_enabled();
    catapult_obs::flight::set_enabled(true);
    for threads in [1usize, 8] {
        // Drain whatever earlier stages left in the rings so the
        // per-iteration assertions see only this run's events.
        let _ = catapult_obs::flight::snapshot();
        let recorder = catapult_obs::Recorder::enabled();
        let meter = catapult_obs::progress::ProgressMeter::start(
            &recorder,
            std::time::Duration::from_millis(1),
        );
        let cfg = CatapultConfig {
            recorder: recorder.clone(),
            ..quickstart_cfg()
        };
        let got = with_threads(threads, || serialize(&db, &run_catapult(&db.graphs, &cfg)));
        // Give the heartbeat (25ms poll) time for at least one tick
        // before stopping it.
        std::thread::sleep(std::time::Duration::from_millis(80));
        drop(meter);
        assert_eq!(
            got, golden,
            "threads={threads}: telemetry stack changed pipeline output"
        );
        let (events, _dropped) = catapult_obs::flight::snapshot();
        assert!(
            events.iter().any(|e| e.name == "flight.span.open"),
            "threads={threads}: flight recorder captured no spans"
        );
        assert!(
            events.iter().any(|e| e.name == "flight.progress.tick"),
            "threads={threads}: progress meter never ticked"
        );
    }
    catapult_obs::flight::set_enabled(was_enabled);
}

#[test]
fn auto_sizing_also_matches_the_golden() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = quickstart_db();
    let cfg = quickstart_cfg();
    let golden = with_threads(1, || serialize(&db, &run_catapult(&db.graphs, &cfg)));
    // threads=0: whatever `available_parallelism()` resolves to on this
    // host — the output contract is the same.
    let auto = with_threads(0, || serialize(&db, &run_catapult(&db.graphs, &cfg)));
    assert_eq!(auto, golden, "auto-sized pool diverged from golden");
}

/// Fault-injected degradation under a parallel executor.
///
/// The global fault counter makes the *probe* hit by `at: k`
/// interleaving-dependent once workers race, but the pipeline's stages
/// run sequentially, so which *stage* contains invocation K — and every
/// stage-level assertion of the robustness contract — stays deterministic.
#[cfg(feature = "fault-injection")]
mod fault_sweep_under_threads {
    use super::*;
    use catapult::graph::budget::fault::{self, FaultKind, FaultPlan};
    use catapult::graph::components::is_connected;
    use catapult::graph::Graph;

    const GAMMA: usize = 4;
    const ETA_MIN: usize = 3;
    const ETA_MAX: usize = 5;

    fn ring(n: u32, label: u32) -> Graph {
        use catapult::graph::{Label, VertexId};
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(label));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn chain(n: u32, labels: &[u32]) -> Graph {
        use catapult::graph::{Label, VertexId};
        let mut g = Graph::new();
        for i in 0..n {
            g.add_vertex(Label(labels[i as usize % labels.len()]));
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    fn small_db() -> Vec<Graph> {
        let mut db = Vec::new();
        for i in 0..8 {
            db.push(ring(5 + i % 2, 0));
            db.push(chain(6, &[0, 1]));
        }
        db
    }

    fn config() -> CatapultConfig {
        CatapultConfig {
            budget: PatternBudget::new(ETA_MIN, ETA_MAX, GAMMA).unwrap(),
            walks: 10,
            seed: 11,
            ..Default::default()
        }
    }

    fn assert_valid_pattern_set(r: &catapult::core::CatapultResult, ctx: &str) {
        let patterns = r.patterns();
        assert!(patterns.len() <= GAMMA, "{ctx}: more than γ patterns");
        for p in &patterns {
            assert!(
                (ETA_MIN..=ETA_MAX).contains(&p.edge_count()),
                "{ctx}: pattern size {} outside [{ETA_MIN}, {ETA_MAX}]",
                p.edge_count()
            );
            assert!(is_connected(p), "{ctx}: disconnected pattern");
        }
    }

    #[test]
    fn fault_plans_still_degrade_loudly_with_eight_workers() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        with_threads(8, || {
            let db = small_db();
            // Clean-run invocation total. Probe *ordering* within a stage
            // is racy under 8 workers but the total is not: every probe
            // runs exactly once.
            fault::install(FaultPlan {
                kind: FaultKind::Exhaust,
                at: u64::MAX,
                sticky: false,
            });
            let clean = run_catapult(&db, &config());
            let total = fault::invocations();
            fault::clear();
            assert!(clean.report().all_exact(), "baseline must be exact");
            assert!(total > 0, "pipeline must exercise budgeted kernels");
            assert_valid_pattern_set(&clean, "baseline-8t");

            // Strided sample of injection points (ends included).
            let mut ks: Vec<u64> = (1..=total)
                .step_by(((total / 12).max(1)) as usize)
                .collect();
            if ks.last() != Some(&total) {
                ks.push(total);
            }
            for k in ks {
                for kind in [FaultKind::Exhaust, FaultKind::Deadline, FaultKind::Cancel] {
                    fault::install(FaultPlan {
                        kind,
                        at: k,
                        sticky: false,
                    });
                    let r = run_catapult(&db, &config());
                    let fired = fault::invocations() >= k;
                    fault::clear();
                    let ctx = format!("8t K={k} kind={kind:?}");
                    assert_valid_pattern_set(&r, &ctx);
                    if fired {
                        assert!(
                            !r.report().all_exact(),
                            "{ctx}: fault fired but report claims exact"
                        );
                        let stages = r.report().degraded_stages();
                        assert!(!stages.is_empty(), "{ctx}: no degraded stage named");
                        for s in &stages {
                            assert!(
                                ["mining", "clustering", "scoring"].contains(s),
                                "{ctx}: unknown stage {s}"
                            );
                        }
                        assert_eq!(
                            r.report().worst(),
                            kind.completeness(),
                            "{ctx}: report must carry the injected fault's tag"
                        );
                    } else {
                        assert!(
                            r.report().all_exact(),
                            "{ctx}: no fault fired, run must be exact"
                        );
                    }
                }
            }
        });
    }

    /// Tracing must not perturb fault-injected degradation either: for a
    /// fixed plan (sequential pool, so the K-th probe is deterministic)
    /// the recorder-on run must produce the same patterns and the same
    /// degradation verdict as the recorder-off run.
    #[test]
    fn fault_sweep_with_recorder_matches_disabled() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        with_threads(1, || {
            let db = small_db();
            fault::install(FaultPlan {
                kind: FaultKind::Exhaust,
                at: u64::MAX,
                sticky: false,
            });
            run_catapult(&db, &config());
            let total = fault::invocations();
            fault::clear();
            assert!(total > 0);

            for k in [1, total / 2 + 1, total] {
                for kind in [FaultKind::Exhaust, FaultKind::Deadline, FaultKind::Cancel] {
                    let run_with = |recorder: catapult_obs::Recorder| {
                        fault::install(FaultPlan {
                            kind,
                            at: k,
                            sticky: false,
                        });
                        let r = run_catapult(
                            &db,
                            &CatapultConfig {
                                recorder,
                                ..config()
                            },
                        );
                        fault::clear();
                        (
                            format!("{:?}", r.patterns()),
                            r.report().degraded_stages(),
                            r.report().worst(),
                        )
                    };
                    let off = run_with(catapult_obs::Recorder::disabled());
                    // The "on" side runs the full telemetry stack:
                    // recorder + flight recorder + progress heartbeat.
                    let on = {
                        let was_enabled = catapult_obs::flight::is_enabled();
                        catapult_obs::flight::set_enabled(true);
                        let rec = catapult_obs::Recorder::enabled();
                        let meter = catapult_obs::progress::ProgressMeter::start(
                            &rec,
                            std::time::Duration::from_millis(1),
                        );
                        let out = run_with(rec);
                        drop(meter);
                        catapult_obs::flight::set_enabled(was_enabled);
                        out
                    };
                    assert_eq!(
                        on, off,
                        "K={k} kind={kind:?}: telemetry changed the degraded outcome"
                    );
                }
            }
        });
    }

    #[test]
    fn same_plan_hits_the_same_stage_for_every_thread_count() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let db = small_db();
        let run = |k: u64| {
            fault::install(FaultPlan {
                kind: FaultKind::Exhaust,
                at: k,
                sticky: false,
            });
            let r = run_catapult(&db, &config());
            fault::clear();
            r.report().degraded_stages()
        };
        // K=1 is the first probe of the run regardless of interleaving:
        // the stage it lands in must match across thread counts.
        let seq = with_threads(1, || run(1));
        for threads in [2usize, 8] {
            let par = with_threads(threads, || run(1));
            assert_eq!(
                par, seq,
                "threads={threads}: first-probe fault moved stages"
            );
        }
    }
}
