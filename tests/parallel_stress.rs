//! Stress test: wide fan-out, shared cancellation, no torn results.
//!
//! A 64-way `par_iter` drives budgeted VF2 kernels that all share one
//! [`CancelToken`]. One worker trips the token mid-flight. The contract
//! under fire:
//!
//! * all 64 results come back, in input order;
//! * every result is a whole `(bool, Completeness)` pair tagged either
//!   `Exact` or `Cancelled` — cancellation can never tear a result or
//!   surface a bogus tag;
//! * the executor survives: follow-up fan-outs on the same pool work,
//!   and no scoped worker threads outlive their `par_iter` call.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catapult::graph::iso::contains_tagged;
use catapult::graph::{CancelToken, Completeness, Graph, Label, SearchBudget, VertexId};
use rayon::prelude::*;
use std::sync::Mutex;

/// `rayon::set_threads` is process-global; hold this across every flip.
static SERIAL: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::set_threads(n);
    let out = f();
    rayon::set_threads(0);
    out
}

fn ring(n: u32, label: u32) -> Graph {
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_vertex(Label(label));
    }
    for i in 0..n {
        g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
    }
    g
}

fn path(n: u32, label: u32) -> Graph {
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_vertex(Label(label));
    }
    for i in 0..n - 1 {
        g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
    }
    g
}

/// Live threads of this process (Linux); `None` where /proc is absent.
fn live_threads() -> Option<usize> {
    std::fs::read_dir("/proc/self/task").ok().map(|d| d.count())
}

/// One fan-out: 64 budgeted kernels sharing `token`; worker `canceller`
/// trips it before running its own probe. Returns the collected tags.
fn cancelling_fanout(token: &CancelToken, canceller: usize) -> Vec<(bool, Completeness)> {
    let target = ring(14, 0);
    let pattern = path(7, 0);
    // Poll cadence 1: a kernel started after the trip observes it on its
    // first expansion instead of after DEFAULT_CHECK_EVERY nodes.
    let budget = SearchBudget::unbounded()
        .with_cancel(token.clone())
        .with_check_every(1);
    (0..64usize)
        .into_par_iter()
        .map(|i| {
            if i == canceller {
                token.cancel();
            }
            contains_tagged(&target, &pattern, &budget)
        })
        .collect()
}

#[test]
fn cancellation_mid_flight_never_tears_a_result() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [8usize, 64] {
        with_threads(threads, || {
            let token = CancelToken::new();
            let results = cancelling_fanout(&token, 0);
            assert_eq!(results.len(), 64, "threads={threads}: lost results");
            for (i, (found, c)) in results.iter().enumerate() {
                match c {
                    Completeness::Exact => {
                        // A ring always contains a shorter path.
                        assert!(found, "threads={threads} item {i}: exact but wrong");
                    }
                    Completeness::Cancelled => {
                        // Best-so-far semantics: a cancelled probe may or
                        // may not have found the embedding yet; both are
                        // whole, sound results.
                    }
                    other => {
                        panic!("threads={threads} item {i}: torn/bogus tag {other:?}")
                    }
                }
            }
            // Worker 0 cancels before its own probe: with poll cadence 1
            // that probe must come back Cancelled, proving the trip
            // happened mid-flight rather than after the fan-out drained.
            assert_eq!(
                results[0].1,
                Completeness::Cancelled,
                "threads={threads}: the cancelling worker's own probe escaped"
            );
        });
    }
}

#[test]
fn executor_survives_repeated_cancelled_fanouts() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    with_threads(8, || {
        let before = live_threads();
        // Hammer the pool: every round shares a fresh token and cancels
        // from a different position, so the Exact/Cancelled frontier
        // lands differently each time.
        for round in 0..12usize {
            let token = CancelToken::new();
            let results = cancelling_fanout(&token, (round * 5) % 64);
            assert_eq!(results.len(), 64, "round {round}: lost results");
            assert!(
                results
                    .iter()
                    .all(|(_, c)| matches!(c, Completeness::Exact | Completeness::Cancelled)),
                "round {round}: torn result"
            );
        }
        // A clean fan-out on the same pool still works afterwards.
        let token = CancelToken::new();
        let clean: Vec<(bool, Completeness)> = {
            let target = ring(14, 0);
            let pattern = path(7, 0);
            let budget = SearchBudget::unbounded().with_cancel(token);
            (0..64usize)
                .into_par_iter()
                .map(|_| contains_tagged(&target, &pattern, &budget))
                .collect()
        };
        assert!(
            clean
                .iter()
                .all(|&(found, c)| found && c == Completeness::Exact),
            "pool unhealthy after cancelled fan-outs"
        );
        // Scoped workers must all have joined: thread count is back to
        // (at most) where it started. Skipped where /proc is missing.
        if let (Some(b), Some(a)) = (before, live_threads()) {
            assert!(a <= b, "leaked worker threads: {b} before, {a} after");
        }
    });
}
