//! Cross-substrate consistency tests: the independently implemented
//! kernels (VF2, MCS/MCCS, GED, canonical forms) must agree with each
//! other and with brute force on small inputs.

// Integration tests may use panicking shortcuts freely; the workspace
// no-panic policy targets library production code only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use catapult::datasets;
use catapult::graph::canonical::canonical_tokens;
use catapult::graph::components::is_tree;
use catapult::graph::ged::{ged_lower_bound, ged_upper_bound, ged_with_budget};
use catapult::graph::iso::{are_isomorphic, contains, embeddings};
use catapult::graph::mcs::{mcs, McsConfig};
use catapult::graph::{Graph, Label, SearchBudget, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random connected labeled graph: a random tree plus extra edges.
fn random_graph(rng: &mut StdRng, max_v: usize, labels: u32) -> Graph {
    let n = rng.gen_range(2..=max_v);
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_vertex(Label(rng.gen_range(0..labels)));
    }
    for i in 1..n as u32 {
        let j = rng.gen_range(0..i);
        g.add_edge(VertexId(i), VertexId(j)).unwrap();
    }
    for _ in 0..rng.gen_range(0..=n) {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            let _ = g.add_edge(VertexId(a), VertexId(b));
        }
    }
    g
}

/// Brute-force subgraph monomorphism by trying all injective vertex maps.
fn brute_force_contains(target: &Graph, pattern: &Graph) -> bool {
    let np = pattern.vertex_count();
    let nt = target.vertex_count();
    if np > nt {
        return false;
    }
    let mut assignment = vec![usize::MAX; np];
    let mut used = vec![false; nt];
    fn rec(
        target: &Graph,
        pattern: &Graph,
        depth: usize,
        assignment: &mut [usize],
        used: &mut [bool],
    ) -> bool {
        if depth == pattern.vertex_count() {
            return true;
        }
        for t in 0..target.vertex_count() {
            if used[t] || target.label(VertexId(t as u32)) != pattern.label(VertexId(depth as u32))
            {
                continue;
            }
            let ok = pattern
                .neighbors(VertexId(depth as u32))
                .iter()
                .filter(|(w, _)| w.index() < depth)
                .all(|(w, _)| {
                    target.has_edge(VertexId(assignment[w.index()] as u32), VertexId(t as u32))
                });
            if !ok {
                continue;
            }
            assignment[depth] = t;
            used[t] = true;
            if rec(target, pattern, depth + 1, assignment, used) {
                return true;
            }
            used[t] = false;
            assignment[depth] = usize::MAX;
        }
        false
    }
    rec(target, pattern, 0, &mut assignment, &mut used)
}

#[test]
fn vf2_agrees_with_brute_force() {
    let mut rng = StdRng::seed_from_u64(100);
    for trial in 0..150 {
        let target = random_graph(&mut rng, 7, 3);
        let pattern = random_graph(&mut rng, 4, 3);
        assert_eq!(
            contains(&target, &pattern),
            brute_force_contains(&target, &pattern),
            "trial {trial}: {pattern:?} in {target:?}"
        );
    }
}

#[test]
fn embeddings_are_valid_monomorphisms() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..40 {
        let target = random_graph(&mut rng, 8, 2);
        let pattern = random_graph(&mut rng, 4, 2);
        for emb in embeddings(&target, &pattern, 50) {
            // Injective.
            let mut seen = emb.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), emb.len());
            // Label- and edge-preserving.
            for v in pattern.vertices() {
                assert_eq!(pattern.label(v), target.label(emb[v.index()]));
            }
            for (_, e) in pattern.edges() {
                assert!(target.has_edge(emb[e.u.index()], emb[e.v.index()]));
            }
        }
    }
}

#[test]
fn ged_bound_sandwich_on_random_pairs() {
    let mut rng = StdRng::seed_from_u64(102);
    for trial in 0..60 {
        let a = random_graph(&mut rng, 6, 3);
        let b = random_graph(&mut rng, 6, 3);
        let lb = ged_lower_bound(&a, &b);
        let ub = ged_upper_bound(&a, &b);
        let exact = ged_with_budget(&a, &b, 2_000_000);
        assert!(exact.is_exact(), "trial {trial} exceeded budget");
        assert!(
            lb <= exact.distance,
            "trial {trial}: lb {lb} > {}",
            exact.distance
        );
        assert!(
            exact.distance <= ub,
            "trial {trial}: {} > ub {ub}",
            exact.distance
        );
        // Symmetry of the exact distance.
        let back = ged_with_budget(&b, &a, 2_000_000);
        assert_eq!(exact.distance, back.distance, "trial {trial} asymmetric");
    }
}

#[test]
fn ged_zero_iff_isomorphic() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..40 {
        let a = random_graph(&mut rng, 5, 2);
        let b = random_graph(&mut rng, 5, 2);
        let d = ged_with_budget(&a, &b, 2_000_000);
        assert!(d.is_exact());
        assert_eq!(d.distance == 0, are_isomorphic(&a, &b));
    }
}

#[test]
fn mcs_is_bounded_by_inputs_and_mccs() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..30 {
        let a = random_graph(&mut rng, 6, 2);
        let b = random_graph(&mut rng, 6, 2);
        let m = mcs(&a, &b, McsConfig::default());
        let c = mcs(&a, &b, McsConfig::connected());
        assert!(m.edges <= a.edge_count().min(b.edge_count()));
        assert!(c.edges <= m.edges, "MCCS must not exceed MCS");
    }
}

#[test]
fn mcs_of_contained_pattern_is_the_pattern() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..30 {
        let host = random_graph(&mut rng, 7, 2);
        let sub = random_graph(&mut rng, 4, 2);
        if contains(&host, &sub) {
            let m = mcs(&sub, &host, McsConfig::default());
            assert!(m.is_exact());
            assert_eq!(m.edges, sub.edge_count());
        }
    }
}

#[test]
fn canonical_form_characterizes_tree_isomorphism() {
    let mut rng = StdRng::seed_from_u64(106);
    let mut trees: Vec<Graph> = Vec::new();
    while trees.len() < 30 {
        let g = random_graph(&mut rng, 6, 2);
        if is_tree(&g) {
            trees.push(g);
        }
    }
    for i in 0..trees.len() {
        for j in i..trees.len() {
            let same_canon = canonical_tokens(&trees[i]) == canonical_tokens(&trees[j]);
            let iso = are_isomorphic(&trees[i], &trees[j]);
            assert_eq!(same_canon, iso, "canonical form vs isomorphism mismatch");
        }
    }
}

#[test]
fn molecule_generator_feeds_all_substrates() {
    // A broad smoke check: every substrate runs cleanly on generated data.
    let db = datasets::generate(&datasets::emol_profile(), 10, 107);
    for w in db.graphs.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let _ = contains(a, b);
        let m = mcs(
            a,
            b,
            McsConfig {
                connected: true,
                budget: SearchBudget::nodes(5_000),
                ..McsConfig::default()
            },
        );
        assert!(m.edges <= a.edge_count().min(b.edge_count()));
        let lb = ged_lower_bound(a, b);
        let ub = ged_upper_bound(a, b);
        assert!(lb <= ub);
    }
}
