//! Property-based tests at pipeline granularity: whatever repository the
//! generator produces, Algorithm 1's outputs satisfy the Definition 3.1
//! budget contract and the evaluation stack's invariants.

// Integration tests may use panicking shortcuts freely; the workspace
// no-panic policy targets library production code only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use catapult::core::incremental::{IncrementalCatapult, IncrementalConfig};
use catapult::prelude::*;
use catapult::{cluster, csg, datasets, eval};
use catapult_eval::steps::DEFAULT_EMBEDDING_CAP;
use proptest::prelude::*;
use rand::SeedableRng;

fn tiny_repo(seed: u64, count: usize) -> Vec<Graph> {
    datasets::generate(&datasets::emol_profile(), count, seed).graphs
}

proptest! {
    // Pipeline runs are moderately expensive: keep the case count small
    // but the assertions broad.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pipeline_contract(seed in 0u64..1000, gamma in 2usize..7, lo in 3usize..5) {
        let db = tiny_repo(seed, 16);
        let hi = lo + 3;
        let cfg = CatapultConfig {
            budget: PatternBudget::new(lo, hi, gamma).unwrap(),
            walks: 10,
            seed,
            ..Default::default()
        };
        let result = run_catapult(&db, &cfg);
        // Budget contract.
        prop_assert!(result.patterns().len() <= gamma);
        for p in result.patterns() {
            prop_assert!((lo..=hi).contains(&p.edge_count()));
            prop_assert!(catapult::graph::components::is_connected(&p));
        }
        // Clustering is a partition.
        let mut covered: Vec<u32> =
            result.clustering.clusters.iter().flatten().copied().collect();
        covered.sort_unstable();
        covered.dedup();
        prop_assert_eq!(covered.len(), db.len());
        // CSG witnesses are valid.
        for c in &result.csgs {
            prop_assert!(c.verify_members(&db));
        }
        // Per-size quota.
        let cap = cfg.budget.per_size_cap();
        for size in lo..=hi {
            let n = result
                .patterns()
                .iter()
                .filter(|p| p.edge_count() == size)
                .count();
            prop_assert!(n <= cap);
        }
    }

    #[test]
    fn formulation_contract(seed in 0u64..1000) {
        let db = tiny_repo(seed, 12);
        let queries = datasets::random_queries(&db, 8, (3, 12), seed ^ 1);
        let patterns = datasets::random_queries(&db, 4, (3, 6), seed ^ 2);
        for q in &queries {
            let f = eval::formulate(q, &patterns, DEFAULT_EMBEDDING_CAP);
            // Steps bounded by edge-at-a-time; μ in [0, 1].
            prop_assert!(f.steps <= f.steps_edge_at_a_time);
            prop_assert!(f.steps >= 1);
            let mu = f.reduction_ratio();
            prop_assert!((0.0..=1.0).contains(&mu));
            // Non-overlap of chosen occurrences.
            let mut seen = std::collections::HashSet::new();
            for occ in &f.used {
                for v in &occ.vertices {
                    prop_assert!(seen.insert(*v));
                }
            }
            // Replay: the claimed steps are executable and reconstruct q.
            let session = eval::session::replay(q, &patterns, &f).unwrap();
            prop_assert_eq!(session.steps(), f.steps);
            prop_assert!(session.completed(q));
        }
    }

    #[test]
    fn incremental_contract(seed in 0u64..500, batch in 1usize..6) {
        let db = tiny_repo(seed, 12);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let clustering = cluster::cluster_graphs(
            &db,
            &cluster::ClusteringConfig {
                max_cluster_size: 6,
                ..Default::default()
            },
            &mut rng,
        );
        let mut inc = IncrementalCatapult::new(
            db.clone(),
            clustering.clusters,
            IncrementalConfig {
                max_cluster_size: 6,
                selection: SelectionConfig {
                    budget: PatternBudget::new(3, 5, 3).unwrap(),
                    walks: 8,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let arrivals = tiny_repo(seed ^ 77, batch);
        let stats = inc.insert_batch(arrivals);
        prop_assert_eq!(stats.assigned + stats.outliers, batch);
        prop_assert_eq!(inc.len(), 12 + batch);
        // Clusters + pool account for every graph.
        let clustered: usize = inc.clusters().iter().map(Vec::len).sum();
        prop_assert_eq!(clustered + inc.pending_outliers(), inc.len());
        // CSG witnesses stay valid after the update.
        let db_now: Vec<Graph> = {
            // IncrementalCatapult owns the db; rebuild the reference copy.
            let mut all = db.clone();
            all.extend(tiny_repo(seed ^ 77, batch));
            all
        };
        for c in inc.csgs() {
            prop_assert!(c.verify_members(&db_now));
        }
    }

    #[test]
    fn basic_patterns_are_supported(seed in 0u64..1000, m in 1usize..8) {
        let db = tiny_repo(seed, 10);
        let basics = eval::basic::top_basic_patterns(&db, m);
        prop_assert!(basics.len() <= m);
        for b in &basics {
            prop_assert!(b.pattern.edge_count() <= 2);
            prop_assert!(b.support >= 1);
            prop_assert!(eval::basic::verify_support(&db, b));
        }
        // Supports are non-increasing.
        for w in basics.windows(2) {
            prop_assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn csg_compactness_invariants(seed in 0u64..1000) {
        let db = tiny_repo(seed, 10);
        let clusters = vec![(0..5u32).collect::<Vec<_>>(), (5..10u32).collect()];
        for c in csg::build_csgs(&db, &clusters) {
            let x1 = c.compactness(0.2);
            let x2 = c.compactness(0.5);
            let x3 = c.compactness(0.9);
            prop_assert!((0.0..=1.0).contains(&x1));
            prop_assert!(x1 >= x2 && x2 >= x3, "xi must be non-increasing in t");
        }
    }
}
