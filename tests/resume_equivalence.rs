//! The crash-safety keystone: an interrupted-then-resumed pipeline run
//! is byte-identical to an uninterrupted one.
//!
//! With the `fault-injection` feature, [`catapult::ckpt::fault`]
//! deterministically breaks the K-th checkpoint write — a synthetic I/O
//! error (transient or persistent), a torn write, a truncated file, a
//! checksum-breaking bit flip, or a hard crash after corrupting the
//! file. These tests sweep every fault kind across every write index,
//! at 1 and 8 worker threads, and prove the resume contract:
//!
//! * a crashed run leaves a directory the loader either trusts
//!   (verified checkpoints) or discards loudly — never silently
//!   corrupted state;
//! * resuming from that directory reproduces the uninterrupted run's
//!   [`result_digest`] exactly (wall-clock durations excepted);
//! * the digest is also identical across thread counts.
//!
//! Run with: `cargo test --features fault-injection --test resume_equivalence`
#![cfg(feature = "fault-injection")]
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catapult::ckpt::fault::{self as pfault, PersistFaultKind, PersistFaultPlan, CRASH_PAYLOAD};
use catapult::ckpt::CheckpointConfig;
use catapult::core::ckpt_io::result_digest;
use catapult::core::{run_catapult, run_catapult_resumable, CatapultConfig, PatternBudget};
use catapult::graph::{Graph, Label, VertexId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

/// The persistence fault plan, the write counter, and the rayon thread
/// override are process-global; every test holds this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn ring(n: u32, label: u32) -> Graph {
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_vertex(Label(label));
    }
    for i in 0..n {
        g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
    }
    g
}

fn chain(n: u32, labels: &[u32]) -> Graph {
    let mut g = Graph::new();
    for i in 0..n {
        g.add_vertex(Label(labels[i as usize % labels.len()]));
    }
    for i in 0..n - 1 {
        g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
    }
    g
}

fn small_db() -> Vec<Graph> {
    let mut db = Vec::new();
    for i in 0..8 {
        db.push(ring(5 + i % 2, 0));
        db.push(chain(6, &[0, 1]));
    }
    db
}

fn config() -> CatapultConfig {
    CatapultConfig {
        budget: PatternBudget::new(3, 5, 4).unwrap(),
        walks: 10,
        seed: 23,
        clustering: catapult::cluster::ClusteringConfig {
            max_cluster_size: 6,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn ckpt_cfg(dir: &PathBuf, resume: bool) -> CheckpointConfig {
    let mut c = CheckpointConfig::new(dir);
    c.resume = resume;
    // Tiny chunks: many mid-fine-clustering flushes, so the write-index
    // sweep lands faults inside a stage, not just between stages.
    c.chunk_pairs = 4;
    c.retry.base_backoff = std::time::Duration::from_millis(0);
    c
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("catapult-resume-eq-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// How many checkpoint writes one uninterrupted run performs (the sweep
/// range), measured by running with no fault installed.
fn count_writes(db: &[Graph], cfg: &CatapultConfig, threads: usize) -> u64 {
    rayon::set_threads(threads);
    pfault::clear();
    pfault::install(PersistFaultPlan {
        // `at: u64::MAX` never fires; the counter still counts.
        kind: PersistFaultKind::Crash,
        at: u64::MAX,
    });
    let dir = fresh_dir("count");
    run_catapult_resumable(db, cfg, &ckpt_cfg(&dir, false)).unwrap();
    let writes = pfault::writes();
    pfault::clear();
    std::fs::remove_dir_all(&dir).ok();
    writes
}

/// The keystone sweep: threads × fault kind × write index.
#[test]
fn interrupted_then_resumed_equals_uninterrupted() {
    let _guard = SERIAL.lock().unwrap();
    let db = small_db();
    let cfg = config();
    let mut cross_thread_digest: Option<Vec<u8>> = None;
    for threads in [1usize, 8] {
        rayon::set_threads(threads);
        let baseline = result_digest(&run_catapult(&db, &cfg));
        if let Some(prev) = &cross_thread_digest {
            assert_eq!(prev, &baseline, "digest must not depend on threads");
        }
        cross_thread_digest = Some(baseline.clone());

        let writes = count_writes(&db, &cfg, threads);
        assert!(writes >= 6, "expected a multi-write run, got {writes}");
        for kind in [
            PersistFaultKind::IoError { times: 1 },
            PersistFaultKind::IoError { times: u32::MAX },
            PersistFaultKind::TornWrite,
            PersistFaultKind::Truncate,
            PersistFaultKind::BitFlip,
            PersistFaultKind::Crash,
        ] {
            for at in 1..=writes {
                let ctx = format!("threads={threads} kind={kind:?} at={at}");
                let dir = fresh_dir(&format!("{threads}"));
                pfault::clear();
                pfault::install(PersistFaultPlan { kind, at });
                let first = catch_unwind(AssertUnwindSafe(|| {
                    run_catapult_resumable(&db, &cfg, &ckpt_cfg(&dir, false))
                }));
                pfault::clear();
                match (kind, first) {
                    // A transient I/O error is absorbed by the retry
                    // loop: the run completes as if nothing happened.
                    (PersistFaultKind::IoError { times: 1 }, run) => {
                        let r = run.unwrap_or_else(|_| panic!("{ctx}: must not panic"));
                        assert_eq!(
                            result_digest(&r.unwrap()),
                            baseline,
                            "{ctx}: retried run must match"
                        );
                        continue;
                    }
                    // A persistent I/O error exhausts the retries and
                    // surfaces as an error — a graceful stop, not a panic.
                    (PersistFaultKind::IoError { .. }, run) => {
                        let r = run.unwrap_or_else(|_| panic!("{ctx}: must not panic"));
                        r.unwrap_err();
                    }
                    // Every corrupting kind crashes the process at the
                    // faulted write (panic stands in for the kill).
                    (_, Ok(r)) => panic!("{ctx}: expected a crash, got {:?}", r.is_ok()),
                    (_, Err(payload)) => {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .unwrap_or_default();
                        assert_eq!(msg, CRASH_PAYLOAD, "{ctx}: foreign panic");
                    }
                }
                // Resume from whatever the crash left behind.
                let resumed = run_catapult_resumable(&db, &cfg, &ckpt_cfg(&dir, true))
                    .unwrap_or_else(|e| panic!("{ctx}: resume failed: {e}"));
                assert_eq!(result_digest(&resumed), baseline, "{ctx}: resume diverged");
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
    rayon::set_threads(0);
}

/// The fine-stage similarity cache is part of the checkpoint (schema v2):
/// a run crashed mid-fine-clustering resumes with the memoized class-pair
/// entries it already computed. Cold, crashed and resumed runs must agree
/// on clusters and the kernel tally exactly, and the cache-miss counters
/// must prove the resumed run *reused* persisted entries instead of
/// recomputing the whole matrix.
#[test]
fn fine_cache_resumed_mid_split_matches_cold_recompute() {
    use catapult::cluster::fine::{fine_cluster_audited, fine_cluster_resumable, FineConfig};
    use catapult::graph::SearchBudget;
    use catapult_ckpt::{Fingerprint, StageStore};
    use catapult_obs::Recorder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let _guard = SERIAL.lock().unwrap();
    pfault::clear();
    rayon::set_threads(1);

    // Duplicated isomorphism classes (3 ring shapes × 4 copies, 3 chain
    // label patterns × 4 copies) make the memoization non-trivial: far
    // fewer class pairs than member pairs.
    let mut db = Vec::new();
    for i in 0..12u32 {
        db.push(ring(5 + i % 3, 0));
        db.push(chain(6, &[0, i % 3]));
    }
    let all: Vec<u32> = (0..u32::try_from(db.len()).unwrap()).collect();
    let fp = Fingerprint {
        dataset_hash: 77,
        config_hash: 78,
        eta_min: 1,
        eta_max: 9,
        gamma: 9,
    };
    let fine_with_probe = |rec: &Recorder| FineConfig {
        max_cluster_size: 4,
        budget: SearchBudget::unbounded().with_probe(rec.stage_probe("fine")),
        ..Default::default()
    };
    let misses = |rec: &Recorder| {
        rec.snapshot()
            .map_or(0, |s| s.stage_metric_total("fine", "cache_misses"))
    };

    // Cold baseline: every class pair computed exactly once.
    let cold_rec = Recorder::enabled();
    let cold = fine_cluster_audited(
        &db,
        vec![all.clone()],
        &fine_with_probe(&cold_rec),
        &mut StdRng::seed_from_u64(41),
    );
    let cold_misses = misses(&cold_rec);
    assert!(cold_misses > 0, "workload must exercise the cache");

    // How many checkpoint writes the fine stage performs, so the crash
    // can land late — after most of the cache has been persisted.
    let dir = fresh_dir("fine-cache");
    let count_cfg = {
        let mut c = ckpt_cfg(&dir, false);
        c.chunk_pairs = 4;
        c
    };
    pfault::install(PersistFaultPlan {
        kind: PersistFaultKind::Crash,
        at: u64::MAX,
    });
    let store = StageStore::open(&count_cfg, fp, Recorder::disabled()).unwrap();
    fine_cluster_resumable(
        &db,
        vec![all.clone()],
        &fine_with_probe(&Recorder::disabled()),
        &mut StdRng::seed_from_u64(41),
        &store,
    )
    .unwrap();
    let writes = pfault::writes();
    assert!(
        writes >= 4,
        "expected a multi-write fine stage, got {writes}"
    );
    std::fs::remove_dir_all(&dir).ok();

    // Crash at the second-to-last write, then resume.
    pfault::clear();
    pfault::install(PersistFaultPlan {
        kind: PersistFaultKind::Crash,
        at: writes - 1,
    });
    let crash_rec = Recorder::enabled();
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        let store = StageStore::open(&count_cfg, fp, Recorder::disabled()).unwrap();
        fine_cluster_resumable(
            &db,
            vec![all.clone()],
            &fine_with_probe(&crash_rec),
            &mut StdRng::seed_from_u64(41),
            &store,
        )
    }));
    pfault::clear();
    let payload = crashed.expect_err("crash fault must fire mid-fine");
    assert_eq!(
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default(),
        CRASH_PAYLOAD,
        "foreign panic"
    );

    let resume_rec = Recorder::enabled();
    let resumed_store = StageStore::open(&ckpt_cfg(&dir, true), fp, Recorder::disabled()).unwrap();
    let resumed = fine_cluster_resumable(
        &db,
        vec![all],
        &fine_with_probe(&resume_rec),
        &mut StdRng::seed_from_u64(41),
        &resumed_store,
    )
    .unwrap();

    assert_eq!(resumed.clusters, cold.clusters, "resume diverged from cold");
    assert_eq!(resumed.kernel, cold.kernel, "kernel tally diverged");
    // The resumed half recomputed only what the crash lost: strictly
    // fewer misses than a cold run, and the crashed + resumed halves
    // cover at least every class pair the cold run computed.
    let resumed_misses = misses(&resume_rec);
    assert!(
        resumed_misses < cold_misses,
        "resume must reuse persisted cache entries ({resumed_misses} vs cold {cold_misses})"
    );
    assert!(
        misses(&crash_rec) + resumed_misses >= cold_misses,
        "both halves together must cover the full matrix"
    );
    std::fs::remove_dir_all(&dir).ok();
    rayon::set_threads(0);
}

/// Killing the process *between* stages (simulated by deleting the
/// later stage files a finished run wrote) resumes from the surviving
/// prefix and still reproduces the uninterrupted digest.
#[test]
fn kill_between_stages_resumes_from_prefix() {
    let _guard = SERIAL.lock().unwrap();
    pfault::clear();
    rayon::set_threads(1);
    let db = small_db();
    let cfg = config();
    let baseline = result_digest(&run_catapult(&db, &cfg));
    // Progressively longer suffix deletions: resume lands one stage
    // earlier each time.
    for doomed in [
        &["selection"][..],
        &["selection", "csg"][..],
        &["selection", "csg", "clustering"][..],
        &["selection", "csg", "clustering", "fine"][..],
        &["selection", "csg", "clustering", "fine", "coarse"][..],
    ] {
        let dir = fresh_dir("between");
        run_catapult_resumable(&db, &cfg, &ckpt_cfg(&dir, false)).unwrap();
        for stage in doomed {
            std::fs::remove_file(dir.join(format!("{stage}.ckpt"))).unwrap();
        }
        let resumed = run_catapult_resumable(&db, &cfg, &ckpt_cfg(&dir, true)).unwrap();
        assert_eq!(
            result_digest(&resumed),
            baseline,
            "resume after deleting {doomed:?} diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    rayon::set_threads(0);
}
