//! Property-based tests (proptest) on the substrate invariants listed in
//! DESIGN.md §6.

// Integration tests may use panicking shortcuts freely; the workspace
// no-panic policy targets library production code only.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use catapult::graph::canonical::canonical_tokens;
use catapult::graph::components::{connected_components, is_connected, is_tree};
use catapult::graph::ged::{ged_lower_bound, ged_upper_bound, ged_with_budget};
use catapult::graph::iso::{are_isomorphic, contains};
use catapult::graph::layout::circular_crossings;
use catapult::graph::mcs::{mccs_similarity, mcs, McsConfig};
use catapult::graph::metrics::cognitive_load;
use catapult::graph::random::{random_connected_subgraph, weighted_choice};
use catapult::graph::{Graph, Label, SearchBudget, VertexId};
use proptest::prelude::*;
use rand::SeedableRng;

/// Strategy: a connected labeled graph as (labels, tree parents, extra
/// edge pairs).
fn graph_strategy(max_v: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_v).prop_flat_map(move |n| {
        (
            prop::collection::vec(0..labels, n),
            prop::collection::vec(0u32..u32::MAX, n - 1),
            prop::collection::vec((0..n as u32, 0..n as u32), 0..=n),
        )
            .prop_map(move |(ls, parents, extras)| {
                let mut g = Graph::new();
                for &l in &ls {
                    g.add_vertex(Label(l));
                }
                for (i, &r) in parents.iter().enumerate() {
                    let child = (i + 1) as u32;
                    let parent = r % child;
                    g.add_edge(VertexId(child), VertexId(parent)).unwrap();
                }
                for (a, b) in extras {
                    if a != b {
                        let _ = g.add_edge(VertexId(a), VertexId(b));
                    }
                }
                g
            })
    })
}

/// Strategy: a labeled free tree.
fn tree_strategy(max_v: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (1..=max_v).prop_flat_map(move |n| {
        (
            prop::collection::vec(0..labels, n),
            prop::collection::vec(0u32..u32::MAX, n.saturating_sub(1)),
        )
            .prop_map(|(ls, parents)| {
                let mut g = Graph::new();
                for &l in &ls {
                    g.add_vertex(Label(l));
                }
                for (i, &r) in parents.iter().enumerate() {
                    let child = (i + 1) as u32;
                    g.add_edge(VertexId(child), VertexId(r % child)).unwrap();
                }
                g
            })
    })
}

/// Apply a vertex permutation to a graph.
fn permute(g: &Graph, perm: &[usize]) -> Graph {
    let mut labels = vec![Label(0); g.vertex_count()];
    for v in g.vertices() {
        labels[perm[v.index()]] = g.label(v);
    }
    let edges: Vec<(u32, u32)> = g
        .edges()
        .map(|(_, e)| (perm[e.u.index()] as u32, perm[e.v.index()] as u32))
        .collect();
    Graph::from_parts(&labels, &edges)
}

fn permutation_of(n: usize, seed: u64) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut p: Vec<usize> = (0..n).collect();
    p.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graphs_are_connected_and_self_contained(g in graph_strategy(7, 3)) {
        prop_assert!(is_connected(&g));
        prop_assert!(contains(&g, &g));
        prop_assert!(are_isomorphic(&g, &g));
    }

    #[test]
    fn isomorphism_is_permutation_invariant(g in graph_strategy(7, 3), seed in 0u64..1000) {
        let perm = permutation_of(g.vertex_count(), seed);
        let h = permute(&g, &perm);
        prop_assert!(are_isomorphic(&g, &h));
        prop_assert_eq!(g.invariant_signature(), h.invariant_signature());
    }

    #[test]
    fn canonical_tokens_permutation_invariant(t in tree_strategy(7, 3), seed in 0u64..1000) {
        prop_assume!(is_tree(&t));
        let perm = permutation_of(t.vertex_count(), seed);
        let u = permute(&t, &perm);
        prop_assert_eq!(canonical_tokens(&t), canonical_tokens(&u));
    }

    #[test]
    fn ged_sandwich_and_identity(a in graph_strategy(5, 2), b in graph_strategy(5, 2)) {
        let lb = ged_lower_bound(&a, &b);
        let ub = ged_upper_bound(&a, &b);
        let d = ged_with_budget(&a, &b, 500_000);
        prop_assume!(d.is_exact());
        prop_assert!(lb <= d.distance);
        prop_assert!(d.distance <= ub);
        let self_d = ged_with_budget(&a, &a, 500_000);
        prop_assert_eq!(self_d.distance, 0);
    }

    #[test]
    fn ged_triangle_inequality(
        a in graph_strategy(4, 2),
        b in graph_strategy(4, 2),
        c in graph_strategy(4, 2),
    ) {
        let ab = ged_with_budget(&a, &b, 500_000);
        let bc = ged_with_budget(&b, &c, 500_000);
        let ac = ged_with_budget(&a, &c, 500_000);
        prop_assume!(ab.is_exact() && bc.is_exact() && ac.is_exact());
        prop_assert!(ac.distance <= ab.distance + bc.distance);
    }

    #[test]
    fn mccs_result_is_connected_common_subgraph(a in graph_strategy(6, 2), b in graph_strategy(6, 2)) {
        let r = mcs(&a, &b, McsConfig { connected: true, budget: SearchBudget::nodes(100_000), ..McsConfig::default() });
        // Build the common subgraph from the pairs and check connectivity.
        if !r.pairs.is_empty() {
            let mut sub = Graph::new();
            let mut ids = std::collections::HashMap::new();
            for (i, &(va, _)) in r.pairs.iter().enumerate() {
                ids.insert(va, sub.add_vertex(a.label(va)));
                let _ = i;
            }
            let mut edges = 0;
            for i in 0..r.pairs.len() {
                for j in (i + 1)..r.pairs.len() {
                    let (va, ta) = r.pairs[i];
                    let (vb, tb) = r.pairs[j];
                    if a.has_edge(va, vb) && b.has_edge(ta, tb) {
                        sub.add_edge(ids[&va], ids[&vb]).unwrap();
                        edges += 1;
                    }
                }
            }
            prop_assert_eq!(edges, r.edges);
            prop_assert!(is_connected(&sub));
            // Labels must agree on every matched pair.
            for &(va, ta) in &r.pairs {
                prop_assert_eq!(a.label(va), b.label(ta));
            }
        }
        let sim = mccs_similarity(&a, &b, 100_000);
        prop_assert!((0.0..=1.0).contains(&sim));
    }

    #[test]
    fn random_subgraph_is_connected_subgraph(g in graph_strategy(8, 2), seed in 0u64..500, k in 1usize..6) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some(s) = random_connected_subgraph(&g, k, &mut rng) {
            prop_assert!(is_connected(&s));
            prop_assert!(s.edge_count() <= k.max(1));
            prop_assert!(contains(&g, &s));
        }
    }

    #[test]
    fn weighted_choice_returns_positive_weight_index(ws in prop::collection::vec(0.0f64..5.0, 1..8), seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match weighted_choice(&ws, &mut rng) {
            Some(i) => prop_assert!(ws[i] > 0.0),
            None => prop_assert!(ws.iter().all(|&w| w <= 0.0)),
        }
    }

    #[test]
    fn components_partition_vertices(g in graph_strategy(7, 2)) {
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.vertex_count());
        // Connected input: exactly one component.
        prop_assert_eq!(comps.len(), 1);
    }

    #[test]
    fn cognitive_load_and_crossings_nonnegative(g in graph_strategy(8, 2)) {
        prop_assert!(cognitive_load(&g) >= 0.0);
        let _ = circular_crossings(&g); // must not panic
    }

    #[test]
    fn subgraph_relation_is_transitive_under_extraction(g in graph_strategy(8, 2), seed in 0u64..200) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some(s) = random_connected_subgraph(&g, 4, &mut rng) {
            if let Some(t) = random_connected_subgraph(&s, 2, &mut rng) {
                prop_assert!(contains(&g, &t), "subgraph-of-subgraph must embed");
            }
        }
    }
}
