//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build container cannot fetch crates, so the real `proptest` is
//! unavailable. This shim implements random-input property testing with
//! the same source syntax: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros. It does **not** implement shrinking: a failing
//! case reports the seed and case index instead of a minimized input.
//! Case generation is deterministic per test (seeded from the test name,
//! overridable with `CATAPULT_PROPTEST_SEED`).
// Lint policy: see [workspace.lints] in the root Cargo.toml.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SampleUniform, SeedableRng};

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input; try another case.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the test name (FNV-1a), or `CATAPULT_PROPTEST_SEED`.
    pub fn deterministic(test_name: &str) -> Self {
        let seed = std::env::var("CATAPULT_PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform sample from a range (delegates to the `rand` shim).
    pub fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.0.gen_range(range)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a range.
    pub trait IntoSizeRange {
        /// Inclusive (lo, hi) bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors of `element` with length in `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// Vector of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.lo..=self.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test file needs, mirroring
/// `proptest::prelude::*` (including the `prop` module alias).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Assert inside a `proptest!` body; failure fails the current case with
/// location info rather than panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({}) at {}:{}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u32..100, v in prop::collection::vec(0..10u32, 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while accepted < config.cases {
                case += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(what)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.cases.saturating_mul(256),
                            "proptest '{}': too many prop_assume! rejections (last: {})",
                            stringify!($name),
                            what,
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed on case #{case} (after {accepted} ok): {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 1usize..10, v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for &e in &v {
                prop_assert!(e < 5, "element {} out of range", e);
            }
        }

        #[test]
        fn flat_map_and_map(pair in (2usize..6).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0u64..100, n))
        }).prop_map(|(n, v)| (n, v))) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn assume_filters(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn prop_assert_reports_failure_as_err() {
        fn check(x: u32) -> Result<(), TestCaseError> {
            prop_assert!(x > 100, "x was {}", x);
            Ok(())
        }
        assert!(matches!(check(5), Err(TestCaseError::Fail(_))));
        assert!(check(101).is_ok());
    }
}
