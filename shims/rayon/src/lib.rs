//! Offline parallel stand-in for the subset of `rayon` this workspace
//! uses, built on `std::thread::scope`.
//!
//! The build container cannot fetch crates, so the real `rayon` is
//! unavailable. Earlier this shim degraded every `par_iter()` to the
//! sequential `std` iterator; it is now a real work-chunking executor:
//!
//! * **Pool size** — lazily resolved once from `CATAPULT_THREADS`
//!   (default: `std::thread::available_parallelism()`), overridable at
//!   runtime with [`set_threads`] (`0` = auto, `1` = exact legacy
//!   sequential behavior). There is no persistent pool; each fan-out
//!   spawns scoped threads that are always joined before the call
//!   returns, so no thread ever outlives its borrowed data (and none can
//!   leak).
//! * **Lazy sequential fast path** — sources are held unmaterialized;
//!   with one worker every consumer streams the source through a plain
//!   `std` iterator chain, so `threads <= 1` pays zero per-item overhead
//!   (no source `Vec`, no chunk bookkeeping). Only a genuinely parallel
//!   run collects the source for chunking.
//! * **Contiguous index chunking** — a parallel run's materialized input
//!   is split into at most `pool_size` contiguous chunks, one scoped
//!   thread per chunk.
//! * **Order-preserving collection** — every consumer reassembles chunk
//!   results in input-index order, so `map → collect` (and `filter`,
//!   `sum`, `count`, …) return byte-identical results regardless of
//!   thread interleaving. Side effects (e.g. `Tally::record`) may occur
//!   in any order, which is why shared accumulators must be commutative.
//! * **Panic propagation** — a panicking worker closure does not poison
//!   anything: the panic payload is re-raised on the calling thread
//!   after the remaining scoped threads are joined.
//! * **Supervised mode** — [`prelude::ParIter::collect_isolated`] opts a
//!   fan-out into per-item `catch_unwind` isolation: a panicking work
//!   item becomes a per-item [`ItemPanic`] value and the remaining items
//!   still run. Every other consumer keeps the fail-fast default above.
//!
//! The thread-safety contract this imposes on call sites: item types
//! must be `Send`, closures `Sync` (they are shared by reference across
//! workers), and any shared mutable state must be synchronized *and*
//! commutative (atomics such as `Tally`, `CancelToken`).
//!
//! Swapping the real `rayon` back in later remains a one-line change in
//! the root `Cargo.toml` (plus wiring `--threads` to
//! `ThreadPoolBuilder::num_threads` instead of [`set_threads`]); the
//! iterator surface below is call-compatible with `rayon::prelude`.
// Lint policy: see [workspace.lints] in the root Cargo.toml.
// Unit tests are allowed the ergonomic panicking shortcuts the library
// itself forbids; the policy targets production code paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Sentinel meaning "no runtime override installed".
const NO_OVERRIDE: usize = usize::MAX;

/// Runtime override installed by [`set_threads`] (`NO_OVERRIDE` = unset).
static OVERRIDE: AtomicUsize = AtomicUsize::new(NO_OVERRIDE);

/// `CATAPULT_THREADS`, parsed once on first use (`Ok(0)` = auto; `Err` =
/// the variable is set but not a valid thread count).
static ENV_THREADS: OnceLock<Result<usize, String>> = OnceLock::new();

/// Parse a raw `CATAPULT_THREADS` lookup. An unset variable means auto
/// (`0`); a set-but-invalid value is an error, never a silent fallback —
/// a user who exports `CATAPULT_THREADS=eight` asked for eight workers
/// and must not quietly get a sequential (or all-core) run instead.
fn parse_thread_env(raw: Result<String, std::env::VarError>) -> Result<usize, String> {
    match raw {
        Err(std::env::VarError::NotPresent) => Ok(0),
        Err(std::env::VarError::NotUnicode(_)) => Err(
            "invalid CATAPULT_THREADS value: not valid UTF-8 (expected an integer, 0 = auto)"
                .to_string(),
        ),
        Ok(v) => v.trim().parse::<usize>().map_err(|e| {
            format!("invalid CATAPULT_THREADS value {v:?}: {e} (expected an integer, 0 = auto)")
        }),
    }
}

fn env_threads() -> &'static Result<usize, String> {
    ENV_THREADS.get_or_init(|| parse_thread_env(std::env::var("CATAPULT_THREADS")))
}

/// Validate `CATAPULT_THREADS` without spawning anything, so binaries can
/// surface a malformed value as a normal usage error at startup instead
/// of the mid-run panic [`current_threads`] would raise.
pub fn check_thread_env() -> Result<usize, String> {
    env_threads().clone()
}

/// Override the worker count for every subsequent parallel call in this
/// process: `0` restores auto (`available_parallelism`), `1` forces the
/// exact legacy sequential path, `n > 1` uses `n` workers.
///
/// Takes precedence over `CATAPULT_THREADS`. Process-global: callers
/// that flip it around a region (tests, benchmarks) must serialize with
/// other parallel work.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// The number of worker threads a parallel call issued right now would
/// use (always ≥ 1): the [`set_threads`] override if installed, else
/// `CATAPULT_THREADS`, else `available_parallelism()`.
pub fn current_threads() -> usize {
    let configured = match OVERRIDE.load(Ordering::Relaxed) {
        NO_OVERRIDE => match env_threads() {
            Ok(n) => *n,
            // A malformed override must never be swallowed into an
            // unintended pool size; binaries that want a graceful exit
            // validate up front with [`check_thread_env`].
            #[allow(clippy::panic)]
            Err(msg) => panic!("{msg}"),
        },
        n => n,
    };
    if configured == 0 {
        auto_threads()
    } else {
        configured
    }
}

/// `available_parallelism()`, resolved once per process. The raw call is
/// a syscall (`sched_getaffinity` on Linux); paying it on every fan-out
/// made auto mode measurably slower than a pinned pool on workloads with
/// thousands of small parallel calls (the mining support-count loop).
/// Real rayon also sizes its global pool exactly once.
fn auto_threads() -> usize {
    static AUTO: AtomicUsize = AtomicUsize::new(0);
    match AUTO.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            AUTO.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Run the composed pipeline `f` over a *lazy* source and return the
/// surviving outputs **in input order**.
///
/// With one worker this streams the source through a plain sequential
/// loop — no materialization, no chunk bookkeeping, no allocation beyond
/// the output itself. Only a genuinely parallel run pays to collect the
/// source into a `Vec` for chunking.
fn run_lazy<I, U, F>(source: I, f: F) -> Vec<U>
where
    I: IntoIterator,
    I::Item: Send,
    U: Send,
    F: Fn(usize, I::Item) -> Option<U> + Sync,
{
    if current_threads() <= 1 {
        return source
            .into_iter()
            .enumerate()
            .filter_map(|(i, x)| f(i, x))
            .collect();
    }
    run_ordered(source.into_iter().collect(), f)
}

/// Run the composed pipeline `f` over `items` and return the surviving
/// outputs **in input order**.
///
/// `f` receives `(source_index, item)` and returns `None` for items a
/// `filter` stage dropped. With one worker (or ≤ 1 item) this is a plain
/// sequential loop — the exact legacy shim behavior. Otherwise the items
/// are split into contiguous chunks, one scoped thread each; chunk
/// results are concatenated in chunk order, which equals input order.
fn run_ordered<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> Option<U> + Sync,
{
    let workers = current_threads().min(items.len());
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .filter_map(|(i, x)| f(i, x))
            .collect();
    }
    let len = items.len();
    let base = len / workers;
    let rem = len % workers;
    let mut source = items.into_iter();
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < rem);
        chunks.push((start, source.by_ref().take(size).collect()));
        start += size;
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(w, (offset, chunk))| {
                scope.spawn(move || {
                    // Worker slot w+1: slot 0 means "the calling thread",
                    // so spans recorded inside the closure attribute to
                    // the right pool worker in run manifests.
                    let _worker = catapult_obs::worker::enter(w as u32 + 1);
                    chunk
                        .into_iter()
                        .enumerate()
                        .filter_map(|(j, x)| f(offset + j, x))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for (w, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(part) => out.extend(part),
                // A worker closure panicked: re-raise its payload on the
                // caller. `scope` has already joined (or will join) the
                // remaining workers, so nothing leaks. The flight
                // recorder logs the re-raise (the worker's own panic
                // already hit the panic hook on the worker thread).
                Err(payload) => {
                    catapult_obs::flight::event("flight.worker.panic", "fail_fast", w as u64 + 1);
                    std::panic::resume_unwind(payload)
                }
            }
        }
        out
    })
}

/// A panic captured from one work item by the supervised executor
/// ([`prelude::ParIter::collect_isolated`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItemPanic {
    /// Position of the item in the source collection.
    pub index: usize,
    /// Best-effort rendering of the panic payload (`&str` / `String`
    /// payloads verbatim, a placeholder otherwise).
    pub message: String,
}

impl std::fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for ItemPanic {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// As [`run_ordered`], but with **per-item panic isolation**: each item's
/// pipeline invocation runs under `catch_unwind`, and a panic becomes a
/// per-item [`ItemPanic`] in the output instead of aborting the whole
/// fan-out. The remaining items still run.
///
/// `AssertUnwindSafe` is sound under the same contract parallel execution
/// already imposes on call sites: shared mutable state must be
/// synchronized and commutative (atomics), so an item abandoned mid-flight
/// leaves no torn invariants behind — at worst its side-effect counters
/// recorded partially, which supervised call sites must tolerate.
fn run_isolated_ordered<I, U, F>(source: I, f: F) -> Vec<Result<U, ItemPanic>>
where
    I: IntoIterator,
    I::Item: Send,
    U: Send,
    F: Fn(usize, I::Item) -> Option<U> + Sync,
{
    run_lazy(source, move |i, x| {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, x))) {
            Ok(Some(out)) => Some(Ok(out)),
            Ok(None) => None,
            Err(payload) => {
                // Supervised mode never unwinds past the item, so this
                // flight event is the isolated panic's only footprint
                // besides the ItemPanic value itself.
                catapult_obs::flight::event("flight.worker.panic", "isolated", i as u64);
                Some(Err(ItemPanic {
                    index: i,
                    message: panic_message(payload.as_ref()),
                }))
            }
        }
    })
}

/// Run two closures, potentially in parallel, and return both results.
///
/// `a` runs on the calling thread; `b` runs on a scoped worker when the
/// pool size allows, sequentially otherwise. A panic in either closure
/// propagates to the caller after both have finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(|| {
            let _worker = catapult_obs::worker::enter(1);
            b()
        });
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Drop-in traits and iterator types mirroring `rayon::prelude`.
pub mod prelude {
    use super::run_lazy;
    use std::fmt;

    /// One composed per-item stage pipeline: maps a source item (plus its
    /// source index) to `Some(output)` or `None` (dropped by a filter).
    ///
    /// Implementations are shared by reference across worker threads,
    /// hence the `Sync` supertrait; captured state must be `Sync` too.
    pub trait ParPipe<T>: Sync {
        /// Final output type of the pipeline.
        type Out: Send;
        /// Apply every stage to one item. `index` is the item's position
        /// in the *source* (stable across thread counts).
        fn apply(&self, index: usize, item: T) -> Option<Self::Out>;
    }

    /// The empty pipeline: passes source items through unchanged.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Identity;

    impl<T: Send> ParPipe<T> for Identity {
        type Out = T;
        fn apply(&self, _index: usize, item: T) -> Option<T> {
            Some(item)
        }
    }

    /// `map` stage.
    pub struct MapPipe<P, G> {
        inner: P,
        g: G,
    }

    impl<P: fmt::Debug, G> fmt::Debug for MapPipe<P, G> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("MapPipe")
                .field("inner", &self.inner)
                .finish_non_exhaustive()
        }
    }

    impl<T, P, U, G> ParPipe<T> for MapPipe<P, G>
    where
        P: ParPipe<T>,
        U: Send,
        G: Fn(P::Out) -> U + Sync,
    {
        type Out = U;
        fn apply(&self, index: usize, item: T) -> Option<U> {
            self.inner.apply(index, item).map(&self.g)
        }
    }

    /// `filter` stage.
    pub struct FilterPipe<P, G> {
        inner: P,
        pred: G,
    }

    impl<P: fmt::Debug, G> fmt::Debug for FilterPipe<P, G> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("FilterPipe")
                .field("inner", &self.inner)
                .finish_non_exhaustive()
        }
    }

    impl<T, P, G> ParPipe<T> for FilterPipe<P, G>
    where
        P: ParPipe<T>,
        G: Fn(&P::Out) -> bool + Sync,
    {
        type Out = P::Out;
        fn apply(&self, index: usize, item: T) -> Option<P::Out> {
            self.inner.apply(index, item).filter(|x| (self.pred)(x))
        }
    }

    /// `copied` stage (items are references to `Copy` values).
    #[derive(Clone, Copy, Debug)]
    pub struct CopiedPipe<P> {
        inner: P,
    }

    impl<'a, T, P, U> ParPipe<T> for CopiedPipe<P>
    where
        P: ParPipe<T, Out = &'a U>,
        U: Copy + Send + Sync + 'a,
    {
        type Out = U;
        fn apply(&self, index: usize, item: T) -> Option<U> {
            self.inner.apply(index, item).copied()
        }
    }

    /// `cloned` stage (items are references to `Clone` values).
    #[derive(Clone, Copy, Debug)]
    pub struct ClonedPipe<P> {
        inner: P,
    }

    impl<'a, T, P, U> ParPipe<T> for ClonedPipe<P>
    where
        P: ParPipe<T, Out = &'a U>,
        U: Clone + Send + Sync + 'a,
    {
        type Out = U;
        fn apply(&self, index: usize, item: T) -> Option<U> {
            self.inner.apply(index, item).cloned()
        }
    }

    /// `enumerate` stage: pairs each output with its **source** index.
    ///
    /// Matches real rayon for indexed pipelines (`par_iter().enumerate()`,
    /// possibly after `map`); like rayon — which simply does not offer
    /// `enumerate` after `filter` — do not enumerate filtered pipelines.
    #[derive(Clone, Copy, Debug)]
    pub struct EnumeratePipe<P> {
        inner: P,
    }

    impl<T, P> ParPipe<T> for EnumeratePipe<P>
    where
        P: ParPipe<T>,
    {
        type Out = (usize, P::Out);
        fn apply(&self, index: usize, item: T) -> Option<(usize, P::Out)> {
            self.inner.apply(index, item).map(|x| (index, x))
        }
    }

    /// A parallel iterator: a **lazy** source plus a composed per-item
    /// stage pipeline. Consumers ([`ParIter::collect`],
    /// [`ParIter::count`], [`ParIter::sum`], [`ParIter::for_each`])
    /// stream the source through a plain sequential loop when one worker
    /// is configured, and only materialize it for chunked fan-out when a
    /// run is genuinely parallel — so `threads <= 1` pays zero per-item
    /// overhead over the equivalent `std` iterator chain. Parallel runs
    /// reassemble results in input order.
    pub struct ParIter<I, P> {
        source: I,
        pipe: P,
    }

    impl<I, P: fmt::Debug> fmt::Debug for ParIter<I, P> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("ParIter")
                .field("pipe", &self.pipe)
                .finish_non_exhaustive()
        }
    }

    impl<I> ParIter<I, Identity>
    where
        I: IntoIterator,
        I::Item: Send,
    {
        /// Wrap a source collection (or any lazy iterable).
        pub fn new(source: I) -> Self {
            ParIter {
                source,
                pipe: Identity,
            }
        }
    }

    impl<I, P> ParIter<I, P>
    where
        I: IntoIterator,
        I::Item: Send,
        P: ParPipe<I::Item>,
    {
        /// Transform each item.
        pub fn map<U, G>(self, g: G) -> ParIter<I, MapPipe<P, G>>
        where
            U: Send,
            G: Fn(P::Out) -> U + Sync,
        {
            let ParIter { source, pipe } = self;
            ParIter {
                source,
                pipe: MapPipe { inner: pipe, g },
            }
        }

        /// Keep only items satisfying `pred`.
        pub fn filter<G>(self, pred: G) -> ParIter<I, FilterPipe<P, G>>
        where
            G: Fn(&P::Out) -> bool + Sync,
        {
            let ParIter { source, pipe } = self;
            ParIter {
                source,
                pipe: FilterPipe { inner: pipe, pred },
            }
        }

        /// Copy referenced items out (`Iterator::copied`).
        pub fn copied<'a, U>(self) -> ParIter<I, CopiedPipe<P>>
        where
            P: ParPipe<I::Item, Out = &'a U>,
            U: Copy + Send + Sync + 'a,
        {
            let ParIter { source, pipe } = self;
            ParIter {
                source,
                pipe: CopiedPipe { inner: pipe },
            }
        }

        /// Clone referenced items out (`Iterator::cloned`).
        pub fn cloned<'a, U>(self) -> ParIter<I, ClonedPipe<P>>
        where
            P: ParPipe<I::Item, Out = &'a U>,
            U: Clone + Send + Sync + 'a,
        {
            let ParIter { source, pipe } = self;
            ParIter {
                source,
                pipe: ClonedPipe { inner: pipe },
            }
        }

        /// Pair each item with its source index (see [`EnumeratePipe`]).
        pub fn enumerate(self) -> ParIter<I, EnumeratePipe<P>> {
            let ParIter { source, pipe } = self;
            ParIter {
                source,
                pipe: EnumeratePipe { inner: pipe },
            }
        }

        /// Stream the pipeline on the calling thread (the `threads <= 1`
        /// fast path shared by every consumer below).
        fn stream(self) -> impl Iterator<Item = P::Out> {
            let ParIter { source, pipe } = self;
            source
                .into_iter()
                .enumerate()
                .filter_map(move |(i, x)| pipe.apply(i, x))
        }

        /// Collect outputs in input order.
        pub fn collect<C: FromIterator<P::Out>>(self) -> C {
            if super::current_threads() <= 1 {
                return self.stream().collect();
            }
            let ParIter { source, pipe } = self;
            run_lazy(source, move |i, x| pipe.apply(i, x))
                .into_iter()
                .collect()
        }

        /// Collect outputs in input order with **per-item panic
        /// isolation** (the supervised executor): a panicking item
        /// becomes `Err(ItemPanic)` in its slot instead of aborting the
        /// fan-out, so `--keep-going` callers can substitute a fallback
        /// and tag the degradation. Every other consumer stays fail-fast.
        ///
        /// Items dropped by a `filter` stage are absent from the output
        /// (exactly as with [`ParIter::collect`]); for map-only pipelines
        /// the output is index-aligned with the input.
        pub fn collect_isolated(self) -> Vec<Result<P::Out, super::ItemPanic>> {
            let ParIter { source, pipe } = self;
            super::run_isolated_ordered(source, move |i, x| pipe.apply(i, x))
        }

        /// Count surviving outputs.
        pub fn count(self) -> usize {
            if super::current_threads() <= 1 {
                return self.stream().count();
            }
            let ParIter { source, pipe } = self;
            run_lazy(source, move |i, x| pipe.apply(i, x).map(|_| ())).len()
        }

        /// Sum outputs **in input order** (deterministic for floats).
        pub fn sum<S: std::iter::Sum<P::Out>>(self) -> S {
            if super::current_threads() <= 1 {
                return self.stream().sum();
            }
            let ParIter { source, pipe } = self;
            run_lazy(source, move |i, x| pipe.apply(i, x))
                .into_iter()
                .sum()
        }

        /// Run `g` on every output (ordering of side effects is
        /// unspecified across chunks — `g` must be commutative).
        pub fn for_each<G>(self, g: G)
        where
            G: Fn(P::Out) + Sync,
        {
            if super::current_threads() <= 1 {
                return self.stream().for_each(g);
            }
            let ParIter { source, pipe } = self;
            run_lazy(source, move |i, x| {
                if let Some(out) = pipe.apply(i, x) {
                    g(out);
                }
                None::<()>
            });
        }
    }

    /// Parallel stand-in for `rayon::iter::IntoParallelIterator`.
    ///
    /// Blanket-implemented for every `IntoIterator` with `Send` items;
    /// the source is handed to [`ParIter`] *lazily* — nothing is
    /// materialized until a consumer decides it actually fans out.
    pub trait IntoParallelIterator: IntoIterator + Sized
    where
        Self::Item: Send,
    {
        /// Consume `self` into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self, Identity> {
            ParIter::new(self)
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I where I::Item: Send {}

    /// Parallel stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type (a reference into `self`).
        type Item: Send + 'a;
        /// The lazy borrowing source handed to [`ParIter`].
        type Source: IntoIterator<Item = Self::Item>;
        /// Iterate `&self` in parallel.
        fn par_iter(&'a self) -> ParIter<Self::Source, Identity>;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
        <&'a C as IntoIterator>::Item: Send,
    {
        type Item = <&'a C as IntoIterator>::Item;
        type Source = &'a C;
        fn par_iter(&'a self) -> ParIter<&'a C, Identity> {
            ParIter::new(self)
        }
    }

    /// Parallel stand-in for `rayon::slice::ParallelSlice`.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over contiguous `chunk_size`-sized windows
        /// (the last chunk may be shorter). `chunk_size` must be > 0.
        fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>, Identity>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>, Identity> {
            ParIter::new(self.chunks(chunk_size.max(1)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// `set_threads` is process-global; tests that flip it serialize here.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        super::set_threads(n);
        let r = f();
        super::set_threads(0);
        r
    }

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u32 = (0u32..10).into_par_iter().sum();
        assert_eq!(sum, 45);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn collection_order_is_input_order_for_every_thread_count() {
        let input: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got: Vec<u64> =
                with_threads(threads, || input.par_iter().map(|&x| x * x).collect());
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn filter_copied_enumerate_compose() {
        let v: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let evens: Vec<u32> = with_threads(threads, || {
                v.par_iter().copied().filter(|&x| x % 2 == 0).collect()
            });
            assert_eq!(evens.len(), 50);
            assert!(evens.windows(2).all(|w| w[0] < w[1]), "order preserved");
            let tagged: Vec<(usize, u32)> = with_threads(threads, || {
                v.par_iter().enumerate().map(|(i, &x)| (i, x + 1)).collect()
            });
            assert!(tagged.iter().all(|&(i, x)| x == i as u32 + 1));
        }
    }

    #[test]
    fn count_and_chunks() {
        let v: Vec<u32> = (0..97).collect();
        for threads in [1, 5] {
            let n = with_threads(threads, || v.par_iter().filter(|&&x| x < 10).count());
            assert_eq!(n, 10);
            let sizes: Vec<usize> =
                with_threads(threads, || v.par_chunks(10).map(<[u32]>::len).collect());
            assert_eq!(sizes.iter().sum::<usize>(), 97);
            assert_eq!(sizes.last(), Some(&7));
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                (0..64u32)
                    .into_par_iter()
                    .map(|x| {
                        assert!(x != 17, "boom at 17");
                        x
                    })
                    .collect::<Vec<u32>>()
            })
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The executor is not poisoned: the next fan-out still works.
        let ok: Vec<u32> = with_threads(4, || (0..8u32).into_par_iter().collect());
        assert_eq!(ok, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn collect_isolated_confines_panics_to_their_item() {
        for threads in [1, 4] {
            let out: Vec<Result<u32, super::ItemPanic>> = with_threads(threads, || {
                (0..32u32)
                    .into_par_iter()
                    .map(|x| {
                        assert!(x % 13 != 4, "boom at {x}");
                        x * 2
                    })
                    .collect_isolated()
            });
            assert_eq!(out.len(), 32, "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                if i % 13 == 4 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, i);
                    assert!(e.message.contains("boom"), "payload: {}", e.message);
                } else {
                    assert_eq!(*r, Ok(i as u32 * 2));
                }
            }
        }
    }

    #[test]
    fn collect_isolated_with_no_panics_matches_collect() {
        let plain: Vec<u32> =
            with_threads(3, || (0..50u32).into_par_iter().map(|x| x + 1).collect());
        let isolated: Vec<u32> = with_threads(3, || {
            (0..50u32)
                .into_par_iter()
                .map(|x| x + 1)
                .collect_isolated()
                .into_iter()
                .map(|r| r.unwrap())
                .collect()
        });
        assert_eq!(plain, isolated);
    }

    #[test]
    fn thread_env_parsing_is_strict() {
        use std::env::VarError;
        assert_eq!(super::parse_thread_env(Err(VarError::NotPresent)), Ok(0));
        assert_eq!(super::parse_thread_env(Ok("8".into())), Ok(8));
        assert_eq!(super::parse_thread_env(Ok(" 2 ".into())), Ok(2));
        for bad in ["eight", "", "-1", "1.5", "99999999999999999999999999"] {
            let err = super::parse_thread_env(Ok(bad.into()))
                .expect_err("must reject invalid thread counts");
            assert!(
                err.contains("invalid CATAPULT_THREADS"),
                "diagnostic must name the variable: {err}"
            );
        }
    }

    #[test]
    fn side_effects_run_exactly_once_per_item() {
        let hits = AtomicUsize::new(0);
        let out: Vec<u32> = with_threads(8, || {
            (0..500u32)
                .into_par_iter()
                .map(|x| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    x
                })
                .collect()
        });
        assert_eq!(out.len(), 500);
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn for_each_visits_everything() {
        let hits = AtomicUsize::new(0);
        with_threads(3, || {
            (0..100u32).into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = with_threads(8, || Vec::<u32>::new().into_par_iter().collect());
        assert!(empty.is_empty());
        let one: Vec<u32> = with_threads(8, || vec![7u32].par_iter().copied().collect());
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn current_threads_resolution() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        super::set_threads(3);
        assert_eq!(super::current_threads(), 3);
        super::set_threads(1);
        assert_eq!(super::current_threads(), 1);
        super::set_threads(0); // auto
        assert!(super::current_threads() >= 1);
    }
}
