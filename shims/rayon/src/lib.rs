//! Offline sequential stand-in for the subset of `rayon` this workspace
//! uses.
//!
//! The build container cannot fetch crates, so the real `rayon` is
//! unavailable. All call sites use `par_iter()` / `into_par_iter()` as
//! drop-in parallel versions of ordinary iterator chains; this shim makes
//! those methods return the *sequential* `std` iterators, preserving
//! semantics (and determinism) while giving up parallel speedup. Swapping
//! the real `rayon` back in later is a one-line change in the root
//! `Cargo.toml`.
// Lint policy: see [workspace.lints] in the root Cargo.toml.

/// Run two closures (sequentially here; in real rayon, potentially in
/// parallel) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Drop-in traits mirroring `rayon::prelude`.
pub mod prelude {
    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// Iterator type produced by [`Self::into_par_iter`].
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item;
        /// Consume `self` into a (sequential) iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// Iterator type produced by [`Self::par_iter`].
        type Iter: Iterator<Item = Self::Item>;
        /// Item type (a reference into `self`).
        type Item: 'a;
        /// Iterate `&self` (sequentially).
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        type Item = <&'a C as IntoIterator>::Item;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u32 = (0u32..10).into_par_iter().sum();
        assert_eq!(sum, 45);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
