//! Regression test for the sequential fast path: with `threads <= 1`,
//! the shim's parallel iterators must stream their source lazily — no
//! materialized source `Vec`, no chunk bookkeeping — so a one-worker
//! "fan-out" costs exactly what the equivalent `std` iterator chain
//! does. A byte-counting global allocator makes the overhead visible:
//! the eager shim allocated the whole source (and, for `sum`/`count`,
//! the whole output) per call, which is what the recorded
//! `speedup: 0.744` mining regression on a 1-core host came from.
//!
//! `unsafe` is required by the `GlobalAlloc` contract (the impl only
//! delegates to `System`).

#![allow(unsafe_code)]
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use rayon::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Run `f` and return how many bytes of allocations it requested.
fn bytes_in(f: impl FnOnce()) -> u64 {
    let before = BYTES.load(Ordering::Relaxed);
    f();
    BYTES.load(Ordering::Relaxed) - before
}

/// `set_threads` is process-global; tests that flip it serialize here.
static SERIAL: Mutex<()> = Mutex::new(());

fn with_one_thread<R>(f: impl FnOnce() -> R) -> R {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    rayon::set_threads(1);
    let r = f();
    rayon::set_threads(0);
    r
}

const N: u64 = 100_000;

#[test]
fn streaming_consumers_allocate_nothing_at_one_thread() {
    with_one_thread(|| {
        let data: Vec<u64> = (0..N).collect();
        let bytes = bytes_in(|| {
            let s: u64 = data.par_iter().map(|&x| x * 2).sum();
            std::hint::black_box(s);
            let n = data.par_iter().filter(|&&x| x % 2 == 0).count();
            std::hint::black_box(n);
            (0..N).into_par_iter().for_each(|x| {
                std::hint::black_box(x);
            });
        });
        assert_eq!(
            bytes, 0,
            "sequential sum/count/for_each must not allocate (got {bytes} bytes)"
        );
    });
}

#[test]
fn sequential_collect_costs_no_more_than_the_std_chain() {
    with_one_thread(|| {
        let data: Vec<u64> = (0..N).collect();
        // The shape the shim's fast path streams through: enumerate +
        // filter_map + collect. The chain is deliberately this shape (not
        // a plain `map`) so std cannot use its TrustedLen exact-size
        // collect — the budget must reflect the same grow-as-you-go
        // pattern the streaming path pays. An eagerly materialized source
        // would add at least `N * size_of::<&u64>()` on top.
        #[allow(clippy::unnecessary_filter_map, clippy::unused_enumerate_index)]
        let std_bytes = bytes_in(|| {
            let v: Vec<u64> = data
                .iter()
                .enumerate()
                .filter_map(|(_, &x)| Some(x * 2))
                .collect();
            std::hint::black_box(&v);
        });
        let par_bytes = bytes_in(|| {
            let v: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
            std::hint::black_box(&v);
        });
        assert!(
            par_bytes <= std_bytes + 64,
            "one-thread collect must match the std chain: par {par_bytes} vs std {std_bytes}"
        );
    });
}

#[test]
fn lazy_source_results_match_parallel_results() {
    let data: Vec<u64> = (0..1000).collect();
    let expect: Vec<u64> = data.iter().map(|&x| x * 3 + 1).collect();
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [1, 2, 8] {
        rayon::set_threads(threads);
        let got: Vec<u64> = data.par_iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(got, expect, "threads={threads}");
        let total: u64 = data.par_iter().map(|&x| x * 3 + 1).sum();
        assert_eq!(total, expect.iter().sum::<u64>(), "threads={threads}");
    }
    rayon::set_threads(0);
}
