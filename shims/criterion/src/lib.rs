//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use.
//!
//! The build container cannot fetch crates, so the real `criterion` is
//! unavailable. This shim keeps every `benches/*.rs` target compiling and
//! runnable: each benchmark closure is timed over a small fixed number of
//! iterations and the median wall-clock time is printed. There is no
//! statistical analysis, plotting, or HTML report. When invoked with
//! `--test` (as `cargo test --benches` does), each benchmark runs exactly
//! once as a smoke test.
// Lint policy: see [workspace.lints] in the root Cargo.toml.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (a much-reduced `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    /// Iterations measured per benchmark (1 in `--test` mode).
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 5,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Honour the CLI arguments cargo passes to bench binaries (only
    /// `--test` changes behaviour; everything else is accepted and
    /// ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Run `f` as a named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.effective_samples(), f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a function name plus parameter.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the measured iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.clamp(1, 100));
        self
    }

    /// Run `f` as a benchmark inside this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&full, self.effective_samples(), f);
        self
    }

    /// Run `f` with an input value as a benchmark inside this group.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&full, self.effective_samples(), |b| f(b, input));
        self
    }

    /// Finish the group (report footer; no-op beyond output here).
    pub fn finish(&mut self) {}

    fn effective_samples(&self) -> usize {
        if self.criterion.test_mode {
            1
        } else {
            // Cap the shim's measured iterations: benches here exercise
            // NP-hard kernels, so "statistical" sample counts are not
            // affordable without the real criterion's adaptive planning.
            self.sample_size.unwrap_or(5).min(5)
        }
    }
}

/// Per-benchmark timing handle (`b.iter(..)`).
#[derive(Debug, Default)]
pub struct Bencher {
    times: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Time `f`, `iters` times (set by the driver).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            let out = f();
            self.times.push(t0.elapsed());
            drop(black_box(out));
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iters: usize, mut f: F) {
    let mut b = Bencher {
        times: Vec::new(),
        iters,
    };
    f(&mut b);
    b.times.sort_unstable();
    let median = b
        .times
        .get(b.times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    println!(
        "bench {id:<48} median {median:>12.3?} ({} iters)",
        b.times.len()
    );
}

/// Declare a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` for a bench binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("unit", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| black_box(7) * 2)
        });
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &x| {
            ran = x;
            b.iter(|| x + 1)
        });
        g.finish();
        assert_eq!(ran, 3);
    }
}
