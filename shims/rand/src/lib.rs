//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build container has no network access and no vendored registry, so
//! the real `rand` crate cannot be fetched. This shim re-implements the
//! exact surface the workspace consumes — [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`Rng::gen`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] — on top of a SplitMix64 /
//! xoshiro256++ generator. Streams are deterministic per seed but are
//! *not* bit-compatible with the real `rand::rngs::StdRng` (ChaCha12);
//! tests in this workspace assert structural properties, not exact
//! sampled values, so only determinism matters.
// Lint policy: see [workspace.lints] in the root Cargo.toml.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the workspace only uses [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types sampleable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Primitive types with uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((lo as $wide as u128).wrapping_add(off)) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                ((lo as $wide as u128).wrapping_add(off)) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let frac = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + frac * (hi - lo)
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let frac = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + frac * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(*self.start(), *self.end(), rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++ seeded via SplitMix64).
    ///
    /// Named `StdRng` for drop-in source compatibility with `rand` 0.8.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Snapshot the raw xoshiro256++ state.
        ///
        /// Together with [`StdRng::from_state`] this lets a checkpointing
        /// pipeline persist its generator mid-run and resume the exact
        /// stream later — the whole-pipeline determinism guarantee extends
        /// across process restarts only because the state round-trips
        /// losslessly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot. The
        /// restored generator continues the original stream bit-for-bit.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let s: f64 = rng.gen();
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(41);
        // Burn part of the stream, snapshot, and check the restored
        // generator replays the remainder exactly.
        for _ in 0..17 {
            let _: u64 = a.gen();
        }
        let snap = a.state();
        let mut b = StdRng::from_state(snap);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!([0usize; 0].choose(&mut rng).is_none());
        assert!([1, 2, 3].choose(&mut rng).is_some());
    }
}
