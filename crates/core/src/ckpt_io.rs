//! Checkpoint payload encodings for the end-to-end pipeline, plus the
//! run fingerprint that ties a checkpoint directory to one
//! (dataset, config, budget) triple.
//!
//! Two whole-stage payloads extend the clustering phase's checkpoints
//! (owned by `catapult-cluster`) to the full Algorithm 1 run: the CSG
//! set after summarization, and the final [`SelectionResult`]. Every
//! payload round-trips byte-identically through
//! [`catapult_ckpt::wire`] — the resume-equals-uninterrupted property
//! test compares [`result_digest`]s, which are built from the same
//! encoders.

use crate::catapult::{CatapultConfig, CatapultResult};
use crate::report::PipelineReport;
use crate::select::{SelectedPattern, SelectionResult};
use catapult_ckpt::wire::{Dec, Enc, WireError};
use catapult_ckpt::{fnv1a, Fingerprint};
use catapult_cluster::{SimilarityKind, Strategy};
use catapult_csg::{Csg, IdSet};
use catapult_graph::{Graph, VertexId};

/// The fingerprint binding a checkpoint directory to this run: a
/// checkpoint written under any other (dataset, config, budget) triple
/// is rejected loudly instead of silently resumed.
///
/// Execution-mode knobs that cannot change a run's output — thread
/// count, `keep_going`, deadlines/cancellation, the recorder — are
/// deliberately excluded, so a crashed 8-thread run can resume on 1
/// thread (or vice versa) and still reproduce the original bytes.
#[must_use]
pub fn fingerprint(db: &[Graph], cfg: &CatapultConfig) -> Fingerprint {
    Fingerprint {
        dataset_hash: dataset_hash(db),
        config_hash: config_hash(cfg),
        eta_min: cfg.budget.eta_min() as u64,
        eta_max: cfg.budget.eta_max() as u64,
        gamma: cfg.budget.gamma() as u64,
    }
}

/// FNV-1a over the wire encoding of every graph in `db`, in order.
/// Order matters: cluster members are database indices.
#[must_use]
pub fn dataset_hash(db: &[Graph]) -> u64 {
    let mut e = Enc::new();
    e.usize(db.len());
    for g in db {
        e.graph(g);
    }
    fnv1a(&e.into_bytes())
}

/// FNV-1a over every configuration field that can change the pipeline's
/// output: clustering strategy and parameters, the sampling plan, the
/// walk count, the seed, the node cap, and the full budget (size
/// distribution included).
#[must_use]
pub fn config_hash(cfg: &CatapultConfig) -> u64 {
    let c = &cfg.clustering;
    let sim_tag = |k: SimilarityKind| match k {
        SimilarityKind::Mcs => 1u8,
        SimilarityKind::Mccs => 2u8,
    };
    let mut e = Enc::new();
    match c.strategy {
        Strategy::CoarseOnly => {
            e.u8(0);
            e.u8(0);
        }
        Strategy::FineOnly(k) => {
            e.u8(1);
            e.u8(sim_tag(k));
        }
        Strategy::Hybrid(k) => {
            e.u8(2);
            e.u8(sim_tag(k));
        }
    }
    e.usize(c.max_cluster_size);
    e.f64(c.miner.min_support);
    e.usize(c.miner.max_edges);
    e.usize(c.miner.max_patterns_per_level);
    e.usize(c.max_features);
    match &c.sampling {
        None => e.bool(false),
        Some(s) => {
            e.bool(true);
            e.f64(s.eager.epsilon);
            e.f64(s.eager.rho);
            e.f64(s.eager.phi);
            e.f64(s.lazy.z);
            e.f64(s.lazy.p);
            e.f64(s.lazy.e);
        }
    }
    e.usize(cfg.walks);
    e.u64(cfg.seed);
    e.u64(cfg.search.node_cap);
    // ηmin/ηmax/γ are first-class fingerprint fields (so a mismatch
    // names them directly); only the size distribution — including any
    // custom per-size caps, via its deterministic Debug form — belongs
    // to the config hash.
    e.str(&format!("{:?}", cfg.budget.distribution()));
    fnv1a(&e.into_bytes())
}

/// Encode the CSG set (payload of the `csg` stage checkpoint).
#[must_use]
pub fn encode_csgs(csgs: &[Csg]) -> Vec<u8> {
    let mut e = Enc::new();
    e.usize(csgs.len());
    for c in csgs {
        e.graph(&c.graph);
        encode_idsets(&mut e, &c.vertex_members);
        encode_idsets(&mut e, &c.edge_members);
        e.u32s(&c.cluster);
        e.usize(c.member_images.len());
        for img in &c.member_images {
            let ids: Vec<u32> = img.iter().map(|v| v.0).collect();
            e.u32s(&ids);
        }
    }
    e.into_bytes()
}

/// Decode a `csg` stage payload.
pub fn decode_csgs(bytes: &[u8]) -> Result<Vec<Csg>, WireError> {
    let mut d = Dec::new(bytes);
    let n = d.usize()?;
    if n > d.remaining() {
        return Err(WireError::Malformed("sequence length exceeds payload"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let graph = d.graph()?;
        let vertex_members = decode_idsets(&mut d)?;
        let edge_members = decode_idsets(&mut d)?;
        let cluster = d.u32s()?;
        let m = d.usize()?;
        if m > d.remaining() {
            return Err(WireError::Malformed("sequence length exceeds payload"));
        }
        let mut member_images = Vec::with_capacity(m);
        for _ in 0..m {
            member_images.push(d.u32s()?.into_iter().map(VertexId).collect());
        }
        out.push(Csg {
            graph,
            vertex_members,
            edge_members,
            cluster,
            member_images,
        });
    }
    d.finish()?;
    Ok(out)
}

/// Encode a [`PipelineReport`] (three per-stage tallies).
#[must_use]
pub fn encode_report(r: &PipelineReport) -> Vec<u8> {
    let mut e = Enc::new();
    report_into(&mut e, r);
    e.into_bytes()
}

/// Decode a [`PipelineReport`].
pub fn decode_report(bytes: &[u8]) -> Result<PipelineReport, WireError> {
    let mut d = Dec::new(bytes);
    let r = report_from(&mut d)?;
    d.finish()?;
    Ok(r)
}

/// Encode the final [`SelectionResult`] (payload of the `selection`
/// stage checkpoint, saved *after* the earlier stages' audits are
/// spliced in, so a resumed load is the complete answer).
#[must_use]
pub fn encode_selection(r: &SelectionResult) -> Vec<u8> {
    let mut e = Enc::new();
    e.usize(r.selected.len());
    for s in &r.selected {
        e.graph(&s.pattern);
        e.f64(s.score);
        e.usize(s.source_csg);
    }
    e.duration(r.elapsed);
    report_into(&mut e, &r.report);
    e.into_bytes()
}

/// Decode a `selection` stage payload.
pub fn decode_selection(bytes: &[u8]) -> Result<SelectionResult, WireError> {
    let mut d = Dec::new(bytes);
    let n = d.usize()?;
    if n > d.remaining() {
        return Err(WireError::Malformed("sequence length exceeds payload"));
    }
    let mut selected = Vec::with_capacity(n);
    for _ in 0..n {
        selected.push(SelectedPattern {
            pattern: d.graph()?,
            score: d.f64()?,
            source_csg: d.usize()?,
        });
    }
    let elapsed = d.duration()?;
    let report = report_from(&mut d)?;
    d.finish()?;
    Ok(SelectionResult {
        selected,
        elapsed,
        report,
    })
}

/// Canonical bytes of everything a run produced *except* wall-clock
/// durations: clusters, features count, CSGs, selected patterns with
/// scores, and the kernel audit. Two runs are equivalent iff their
/// digests match — the resume property tests compare exactly this.
#[must_use]
pub fn result_digest(r: &CatapultResult) -> Vec<u8> {
    let mut e = Enc::new();
    e.clusters(&r.clustering.clusters);
    e.usize(r.clustering.features.len());
    e.tally(&r.clustering.mining);
    e.tally(&r.clustering.fine);
    let mut d = Enc::new();
    d.usize(r.selection.selected.len());
    for s in &r.selection.selected {
        d.graph(&s.pattern);
        d.f64(s.score);
        d.usize(s.source_csg);
    }
    report_into(&mut d, &r.selection.report);
    e.bytes(&d.into_bytes());
    e.bytes(&encode_csgs(&r.csgs));
    e.into_bytes()
}

fn report_into(e: &mut Enc, r: &PipelineReport) {
    e.tally(&r.mining);
    e.tally(&r.clustering);
    e.tally(&r.scoring);
}

fn report_from(d: &mut Dec<'_>) -> Result<PipelineReport, WireError> {
    Ok(PipelineReport {
        mining: d.tally()?,
        clustering: d.tally()?,
        scoring: d.tally()?,
    })
}

fn encode_idsets(e: &mut Enc, sets: &[IdSet]) {
    e.usize(sets.len());
    for s in sets {
        let ids: Vec<u32> = s.iter().collect();
        e.u32s(&ids);
    }
}

fn decode_idsets(d: &mut Dec<'_>) -> Result<Vec<IdSet>, WireError> {
    let n = d.usize()?;
    if n > d.remaining() {
        return Err(WireError::Malformed("sequence length exceeds payload"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut set = IdSet::new();
        for id in d.u32s()? {
            set.insert(id);
        }
        out.push(set);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::{Completeness, Label, Tally, TallyCounts};

    fn pattern(n: u32) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add_vertex(Label(i % 2));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn tally() -> TallyCounts {
        let t = Tally::new();
        t.record(Completeness::Exact);
        t.record(Completeness::BudgetExhausted);
        t.record(Completeness::Degraded);
        t.counts()
    }

    #[test]
    fn selection_result_roundtrips_byte_identically() {
        let r = SelectionResult {
            selected: vec![
                SelectedPattern {
                    pattern: pattern(4),
                    score: 1.5,
                    source_csg: 2,
                },
                SelectedPattern {
                    pattern: pattern(3),
                    score: -0.0,
                    source_csg: 0,
                },
            ],
            elapsed: std::time::Duration::from_micros(987),
            report: PipelineReport {
                mining: tally(),
                clustering: TallyCounts::default(),
                scoring: tally(),
            },
        };
        let bytes = encode_selection(&r);
        let back = decode_selection(&bytes).unwrap();
        assert_eq!(encode_selection(&back), bytes, "re-encode byte-identical");
        assert_eq!(back.selected.len(), 2);
        assert_eq!(back.selected[0].score.to_bits(), 1.5f64.to_bits());
        assert_eq!(back.selected[1].score.to_bits(), (-0.0f64).to_bits());
        assert!(decode_selection(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn pipeline_report_roundtrips_byte_identically() {
        let r = PipelineReport {
            mining: tally(),
            clustering: tally(),
            scoring: TallyCounts::default(),
        };
        let bytes = encode_report(&r);
        let back = decode_report(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(encode_report(&back), bytes);
    }

    #[test]
    fn csgs_roundtrip_byte_identically() {
        let csgs = vec![Csg::build(&[pattern(3), pattern(4), pattern(3)], &[0, 2])];
        let bytes = encode_csgs(&csgs);
        let back = decode_csgs(&bytes).unwrap();
        assert_eq!(encode_csgs(&back), bytes, "re-encode byte-identical");
        assert_eq!(back[0].cluster, vec![0, 2]);
        assert_eq!(back[0].vertex_members, csgs[0].vertex_members);
        assert_eq!(back[0].member_images, csgs[0].member_images);
        assert!(decode_csgs(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn fingerprint_tracks_output_affecting_knobs_only() {
        let db = vec![pattern(3), pattern(5)];
        let base = CatapultConfig::default();
        let fp = fingerprint(&db, &base);
        // Execution-mode knobs leave the fingerprint alone…
        let mut keep = base.clone();
        keep.clustering.keep_going = true;
        assert_eq!(fingerprint(&db, &keep), fp);
        // …output-affecting knobs do not.
        let reseeded = CatapultConfig {
            seed: base.seed + 1,
            ..base.clone()
        };
        assert_ne!(fingerprint(&db, &reseeded).config_hash, fp.config_hash);
        let mut resized = base.clone();
        resized.clustering.max_cluster_size += 1;
        assert_ne!(fingerprint(&db, &resized).config_hash, fp.config_hash);
        assert_ne!(fingerprint(&db[..1], &base).dataset_hash, fp.dataset_hash);
    }
}
