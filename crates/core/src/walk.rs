//! Weighted random walks for potential candidate pattern (PCP) generation
//! (§5, Fig. 6b).
//!
//! Each walk starts at the CSG's *seed edge* (largest weight) and grows the
//! partial PCP one adjacent edge at a time until the target size is reached
//! or no candidate adjacent edge (CAE) remains. The paper integerizes CAE
//! weights with an LCM and replicates candidates to pick uniformly; that
//! procedure selects CAE `i` with probability `w_i / Σ_j w_j`, which we
//! implement directly as weighted sampling (see
//! `catapult_graph::random::weighted_choice`). A property test in this
//! module checks the distributional equivalence against an explicit LCM
//! replication on rational weights.

use catapult_csg::WeightedCsg;
use catapult_graph::EdgeId;
use rand::Rng;

/// One potential candidate pattern: a set of CSG edge ids forming a
/// connected subgraph of the CSG.
pub type Pcp = Vec<EdgeId>;

/// Candidate adjacent edges of the partial pattern: CSG edges not yet in
/// the pattern that share a vertex with it.
fn candidate_adjacent_edges(
    w: &WeightedCsg<'_>,
    in_pattern: &[bool],
    in_vertices: &[bool],
) -> Vec<EdgeId> {
    w.csg
        .graph
        .edges()
        .filter(|&(eid, e)| {
            !in_pattern[eid.index()] && (in_vertices[e.u.index()] || in_vertices[e.v.index()])
        })
        .map(|(eid, _)| eid)
        .collect()
}

/// Run one weighted random walk generating a PCP with (up to)
/// `target_edges` edges. Returns `None` when the CSG has no usable seed
/// edge (e.g. all weights zero on an empty graph).
pub fn generate_pcp<R: Rng>(w: &WeightedCsg<'_>, target_edges: usize, rng: &mut R) -> Option<Pcp> {
    let seed = w.seed_edge()?;
    if target_edges == 0 {
        return None;
    }
    let g = &w.csg.graph;
    let mut in_pattern = vec![false; g.edge_count()];
    let mut in_vertices = vec![false; g.vertex_count()];
    let mut pcp = Vec::with_capacity(target_edges);

    let add_edge = |eid: EdgeId, in_pattern: &mut [bool], in_vertices: &mut [bool]| {
        in_pattern[eid.index()] = true;
        let e = g.edge(eid);
        in_vertices[e.u.index()] = true;
        in_vertices[e.v.index()] = true;
    };
    add_edge(seed, &mut in_pattern, &mut in_vertices);
    pcp.push(seed);

    while pcp.len() < target_edges {
        let caes = candidate_adjacent_edges(w, &in_pattern, &in_vertices);
        if caes.is_empty() {
            break;
        }
        let weights: Vec<f64> = caes.iter().map(|&e| w.weight(e)).collect();
        let chosen = match catapult_graph::random::weighted_choice(&weights, rng) {
            Some(i) => caes[i],
            // All-zero weights: fall back to uniform choice so the walk can
            // still cover rare regions.
            None => caes[rng.gen_range(0..caes.len())],
        };
        add_edge(chosen, &mut in_pattern, &mut in_vertices);
        pcp.push(chosen);
    }
    Some(pcp)
}

/// Generate the PCP library `L`: `x` independent walks (§5; the paper's
/// default is 100 walks).
pub fn generate_library<R: Rng>(
    w: &WeightedCsg<'_>,
    target_edges: usize,
    walks: usize,
    rng: &mut R,
) -> Vec<Pcp> {
    (0..walks)
        .filter_map(|_| generate_pcp(w, target_edges, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_csg::{build_csgs, EdgeLabelWeights};
    use catapult_graph::{Graph, Label};
    use catapult_mining::EdgeLabelStats;
    use rand::SeedableRng;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn setup() -> (Vec<Graph>, Vec<Vec<u32>>) {
        let db = vec![
            Graph::from_parts(&[l(0), l(1), l(2), l(3)], &[(0, 1), (0, 2), (0, 3)]),
            Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (0, 2), (1, 2)]),
            Graph::from_parts(&[l(0), l(1)], &[(0, 1)]),
        ];
        (db, vec![vec![0, 1, 2]])
    }

    #[test]
    fn pcp_is_connected_and_right_size() {
        let (db, clusters) = setup();
        let csgs = build_csgs(&db, &clusters);
        let elw = EdgeLabelWeights::new(EdgeLabelStats::from_graphs(&db));
        let w = WeightedCsg::new(&csgs[0], &elw);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let pcp = generate_pcp(&w, 3, &mut rng).unwrap();
            assert!(pcp.len() <= 3 && !pcp.is_empty());
            let sub = csgs[0].graph.subgraph_from_edges(&pcp);
            assert!(catapult_graph::components::is_connected(&sub));
        }
    }

    #[test]
    fn walk_starts_at_seed_edge() {
        let (db, clusters) = setup();
        let csgs = build_csgs(&db, &clusters);
        let elw = EdgeLabelWeights::new(EdgeLabelStats::from_graphs(&db));
        let w = WeightedCsg::new(&csgs[0], &elw);
        let seed = w.seed_edge().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let pcp = generate_pcp(&w, 2, &mut rng).unwrap();
            assert_eq!(pcp[0], seed);
        }
    }

    #[test]
    fn walk_saturates_small_csgs() {
        let (db, clusters) = setup();
        let csgs = build_csgs(&db, &clusters);
        let elw = EdgeLabelWeights::new(EdgeLabelStats::from_graphs(&db));
        let w = WeightedCsg::new(&csgs[0], &elw);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        // Request far more edges than the CSG has.
        let pcp = generate_pcp(&w, 100, &mut rng).unwrap();
        assert_eq!(pcp.len(), csgs[0].graph.edge_count());
    }

    #[test]
    fn library_has_requested_walks() {
        let (db, clusters) = setup();
        let csgs = build_csgs(&db, &clusters);
        let elw = EdgeLabelWeights::new(EdgeLabelStats::from_graphs(&db));
        let w = WeightedCsg::new(&csgs[0], &elw);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let lib = generate_library(&w, 3, 25, &mut rng);
        assert_eq!(lib.len(), 25);
    }

    /// The paper's LCM-integerisation (§5 steps a–d) and direct weighted
    /// sampling induce the same distribution: verify on rational weights
    /// by explicit replication.
    #[test]
    fn lcm_replication_equivalence() {
        use catapult_graph::random::weighted_choice;
        // weights 1/2, 1/3, 1/6 → LCM(2,3,6) = 6 → integer weights 3, 2, 1.
        let weights = [0.5, 1.0 / 3.0, 1.0 / 6.0];
        let replicated: Vec<usize> = [0usize, 0, 0, 1, 1, 2].to_vec(); // 3,2,1 copies
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let trials = 60_000;
        let mut direct = [0usize; 3];
        let mut lcm = [0usize; 3];
        for _ in 0..trials {
            direct[weighted_choice(&weights, &mut rng).unwrap()] += 1;
            lcm[replicated[rng.gen_range(0..replicated.len())]] += 1;
        }
        for i in 0..3 {
            let p_direct = direct[i] as f64 / trials as f64;
            let p_lcm = lcm[i] as f64 / trials as f64;
            assert!(
                (p_direct - p_lcm).abs() < 0.01,
                "index {i}: direct {p_direct} vs lcm {p_lcm}"
            );
        }
    }
}
