//! The pattern budget `b = (ηmin, ηmax, γ)` (Definition 3.1).
//!
//! `ηmin`/`ηmax` bound the size (in edges) of canned patterns, `γ` is the
//! number of patterns the GUI can display, and each pattern size `k ∈
//! [ηmin, ηmax]` may contribute at most `γ / (ηmax − ηmin + 1)` patterns —
//! the paper's uniform size distribution. Patterns smaller than 3 edges are
//! basic GUI widgets, not canned patterns, hence `ηmin > 2`.

use std::fmt;

/// Errors from constructing a [`PatternBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetError {
    /// `ηmin` must exceed 2 (Definition 3.1).
    MinTooSmall,
    /// `ηmax` must be ≥ `ηmin`.
    EmptySizeRange,
    /// `γ` must be positive.
    ZeroPatterns,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::MinTooSmall => write!(f, "ηmin must be greater than 2"),
            BudgetError::EmptySizeRange => write!(f, "ηmax must be at least ηmin"),
            BudgetError::ZeroPatterns => write!(f, "γ must be positive"),
        }
    }
}

impl std::error::Error for BudgetError {}

/// How the `γ` pattern slots distribute over sizes `[ηmin, ηmax]`.
///
/// The paper defaults to a uniform distribution (`γ / (ηmax − ηmin + 1)`
/// per size) and notes in the §5 remark that a custom distribution
/// `Ψ_dist` can be accommodated by changing `GetPatternSizeRange`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum SizeDistribution {
    /// Uniform per-size cap `γ / (ηmax − ηmin + 1)`, at least 1.
    #[default]
    Uniform,
    /// Explicit per-size caps `(size, max patterns)`. Sizes not listed get
    /// no quota; listed sizes must fall within `[ηmin, ηmax]`.
    Custom(Vec<(usize, usize)>),
}

/// The pattern budget `b = (ηmin, ηmax, γ)` (optionally `(…, Ψ_dist)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternBudget {
    eta_min: usize,
    eta_max: usize,
    gamma: usize,
    distribution: SizeDistribution,
}

impl PatternBudget {
    /// Construct a budget, validating Definition 3.1's constraints.
    pub fn new(eta_min: usize, eta_max: usize, gamma: usize) -> Result<Self, BudgetError> {
        if eta_min <= 2 {
            return Err(BudgetError::MinTooSmall);
        }
        if eta_max < eta_min {
            return Err(BudgetError::EmptySizeRange);
        }
        if gamma == 0 {
            return Err(BudgetError::ZeroPatterns);
        }
        Ok(PatternBudget {
            eta_min,
            eta_max,
            gamma,
            distribution: SizeDistribution::Uniform,
        })
    }

    /// Construct a budget with a custom size distribution `Ψ_dist`
    /// (§5 remark). Every listed size must lie in `[ηmin, ηmax]`.
    pub fn with_distribution(
        eta_min: usize,
        eta_max: usize,
        gamma: usize,
        caps: Vec<(usize, usize)>,
    ) -> Result<Self, BudgetError> {
        let mut b = Self::new(eta_min, eta_max, gamma)?;
        if caps.iter().any(|&(s, _)| s < eta_min || s > eta_max) {
            return Err(BudgetError::EmptySizeRange);
        }
        b.distribution = SizeDistribution::Custom(caps);
        Ok(b)
    }

    /// The paper's default experimental budget: ηmin = 3, ηmax = 12,
    /// γ = 30 (§6.1).
    pub fn paper_default() -> Self {
        PatternBudget {
            eta_min: 3,
            eta_max: 12,
            gamma: 30,
            distribution: SizeDistribution::Uniform,
        }
    }

    /// Minimum pattern size in edges.
    pub fn eta_min(&self) -> usize {
        self.eta_min
    }

    /// Maximum pattern size in edges.
    pub fn eta_max(&self) -> usize {
        self.eta_max
    }

    /// Total number of patterns `γ`.
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// The size distribution `Ψ_dist`.
    pub fn distribution(&self) -> &SizeDistribution {
        &self.distribution
    }

    /// Number of distinct pattern sizes.
    pub fn size_count(&self) -> usize {
        self.eta_max - self.eta_min + 1
    }

    /// Per-size cap for `size`: uniform `γ / (ηmax − ηmin + 1)` (at least
    /// 1), or the `Ψ_dist` entry under a custom distribution (0 when the
    /// size is unlisted).
    pub fn size_cap(&self, size: usize) -> usize {
        if size < self.eta_min || size > self.eta_max {
            return 0;
        }
        match &self.distribution {
            SizeDistribution::Uniform => (self.gamma / self.size_count()).max(1),
            SizeDistribution::Custom(caps) => caps
                .iter()
                .find(|&&(s, _)| s == size)
                .map(|&(_, c)| c)
                .unwrap_or(0),
        }
    }

    /// The uniform per-size cap (legacy helper; equals
    /// `size_cap(any in-range size)` under [`SizeDistribution::Uniform`]).
    pub fn per_size_cap(&self) -> usize {
        (self.gamma / self.size_count()).max(1)
    }

    /// Iterate the allowed sizes `ηmin..=ηmax`.
    pub fn sizes(&self) -> impl Iterator<Item = usize> {
        self.eta_min..=self.eta_max
    }

    /// Sizes that still have quota given `per_size_counts[size]` selections
    /// so far (Algorithm 4's `GetPatternSizeRange`, honoring `Ψ_dist`).
    pub fn open_sizes(&self, counts: &SizeCounts) -> Vec<usize> {
        self.sizes()
            .filter(|&s| counts.count(s) < self.size_cap(s))
            .collect()
    }
}

/// Tracks how many patterns of each size have been selected.
#[derive(Clone, Debug, Default)]
pub struct SizeCounts {
    counts: std::collections::HashMap<usize, usize>,
}

impl SizeCounts {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selections of size `s` so far.
    pub fn count(&self, s: usize) -> usize {
        self.counts.get(&s).copied().unwrap_or(0)
    }

    /// Record a selection of size `s`.
    pub fn record(&mut self, s: usize) {
        *self.counts.entry(s).or_insert(0) += 1;
    }

    /// Total selections.
    pub fn total(&self) -> usize {
        // usize addition is commutative; order cannot affect the total.
        // xtask-allow: hash-iter-order
        self.counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert_eq!(PatternBudget::new(2, 8, 10), Err(BudgetError::MinTooSmall));
        assert_eq!(
            PatternBudget::new(5, 4, 10),
            Err(BudgetError::EmptySizeRange)
        );
        assert_eq!(PatternBudget::new(3, 8, 0), Err(BudgetError::ZeroPatterns));
        assert!(PatternBudget::new(3, 8, 12).is_ok());
    }

    #[test]
    fn paper_defaults() {
        let b = PatternBudget::paper_default();
        assert_eq!((b.eta_min(), b.eta_max(), b.gamma()), (3, 12, 30));
        assert_eq!(b.size_count(), 10);
        assert_eq!(b.per_size_cap(), 3);
    }

    #[test]
    fn per_size_cap_floors_at_one() {
        let b = PatternBudget::new(3, 12, 5).unwrap();
        assert_eq!(b.per_size_cap(), 1);
    }

    #[test]
    fn custom_distribution_controls_caps() {
        let b = PatternBudget::with_distribution(3, 6, 10, vec![(3, 7), (5, 3)]).unwrap();
        assert_eq!(b.size_cap(3), 7);
        assert_eq!(b.size_cap(4), 0); // unlisted
        assert_eq!(b.size_cap(5), 3);
        assert_eq!(b.size_cap(7), 0); // out of range
        let counts = SizeCounts::new();
        assert_eq!(b.open_sizes(&counts), vec![3, 5]);
    }

    #[test]
    fn custom_distribution_validates_range() {
        assert!(PatternBudget::with_distribution(3, 6, 10, vec![(7, 1)]).is_err());
        assert!(PatternBudget::with_distribution(3, 6, 10, vec![(2, 1)]).is_err());
    }

    #[test]
    fn uniform_size_cap_matches_legacy() {
        let b = PatternBudget::new(3, 12, 30).unwrap();
        for s in 3..=12 {
            assert_eq!(b.size_cap(s), b.per_size_cap());
        }
        assert_eq!(b.size_cap(2), 0);
        assert_eq!(b.size_cap(13), 0);
    }

    #[test]
    fn open_sizes_shrink_as_quota_fills() {
        let b = PatternBudget::new(3, 4, 2).unwrap(); // cap = 1 per size
        let mut counts = SizeCounts::new();
        assert_eq!(b.open_sizes(&counts), vec![3, 4]);
        counts.record(3);
        assert_eq!(b.open_sizes(&counts), vec![4]);
        counts.record(4);
        assert!(b.open_sizes(&counts).is_empty());
        assert_eq!(counts.total(), 2);
    }
}
