//! Query-log-aware selection (the §3.3 remark).
//!
//! CATAPULT is deliberately query-log-*oblivious* — logs are unavailable in
//! cold-start settings — but the paper notes that the canned-pattern
//! selection step "can be extended to incorporate frequency of patterns in
//! past subgraph queries". This module provides that extension: a
//! [`QueryLog`] measures how often a candidate pattern occurred inside
//! logged queries, and [`crate::select::SelectionConfig::query_log`]
//! multiplies the Eq. 2 score by `1 + λ · freq(p)`, biasing selection
//! toward patterns users actually compose with — without ever *excluding*
//! data-driven patterns (a zero-frequency pattern keeps its base score).

use catapult_graph::iso::{for_each_embedding, MatchOptions};
use catapult_graph::{Graph, SearchBudget};
use std::ops::ControlFlow;

/// A log of previously formulated subgraph queries.
#[derive(Clone, Debug, Default)]
pub struct QueryLog {
    queries: Vec<Graph>,
}

/// VF2 budget per containment probe; logged queries are small (≤ ~40
/// edges) so this is ample.
const LOG_ISO_BUDGET: u64 = 200_000;

impl QueryLog {
    /// Build a log from recorded queries.
    pub fn new(queries: Vec<Graph>) -> Self {
        QueryLog { queries }
    }

    /// Number of logged queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Append one query to the log.
    pub fn record(&mut self, q: Graph) {
        self.queries.push(q);
    }

    /// Fraction of logged queries containing `pattern` (0 for an empty
    /// log).
    pub fn pattern_frequency(&self, pattern: &Graph) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let hits = self
            .queries
            .iter()
            .filter(|q| {
                let opts = MatchOptions {
                    max_embeddings: 1,
                    budget: SearchBudget::nodes(LOG_ISO_BUDGET),
                    ..MatchOptions::default()
                };
                // A tripped probe under-counts the boost factor — it can
                // only weaken the log bias, never corrupt the base score.
                for_each_embedding(q, pattern, opts, |_| ControlFlow::Break(())).embeddings > 0
            })
            .count();
        hits as f64 / self.queries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn cycle(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        Graph::from_parts(&labels, &edges)
    }

    fn path(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn frequency_counts_containing_queries() {
        let log = QueryLog::new(vec![cycle(6), cycle(5), path(4)]);
        // A 3-path embeds in all three; a triangle in none.
        assert!((log.pattern_frequency(&path(3)) - 1.0).abs() < 1e-12);
        assert_eq!(log.pattern_frequency(&cycle(3)), 0.0);
        // cycle(5) only in the 5-cycle query.
        assert!((log.pattern_frequency(&cycle(5)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_log_is_neutral() {
        let log = QueryLog::default();
        assert!(log.is_empty());
        assert_eq!(log.pattern_frequency(&path(3)), 0.0);
    }

    #[test]
    fn record_grows_log() {
        let mut log = QueryLog::default();
        log.record(cycle(4));
        assert_eq!(log.len(), 1);
        assert_eq!(log.pattern_frequency(&cycle(4)), 1.0);
    }
}
