//! Pipeline-wide completeness reporting.
//!
//! Every NP-hard kernel in the pipeline (VF2 isomorphism, MCS/MCCS,
//! GED, miners) runs under a [`SearchBudget`](catapult_graph::SearchBudget)
//! and tags its result with a [`Completeness`]. This module aggregates
//! those tags per stage so callers can see *whether* a selection is exact
//! and, when it is not, *which stage* degraded and why — instead of
//! silently trusting truncated searches.

use catapult_graph::{Completeness, TallyCounts};

/// Per-stage completeness audit of one end-to-end pipeline run.
///
/// Each field counts kernel invocations in that stage by the
/// [`Completeness`] they reported. An all-exact report means every search
/// ran to completion and the output is byte-identical to an unbudgeted
/// run; any degraded count means the corresponding stage returned
/// best-so-far results (still valid patterns, possibly not optimal).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Frequent-subtree mining containment probes (support counts are
    /// lower bounds when degraded).
    pub mining: TallyCounts,
    /// Fine-clustering MCS/MCCS searches (degraded pairs fall back to
    /// label-vector similarity).
    pub clustering: TallyCounts,
    /// Selection-time kernels: candidate dedup VF2, ccov probes, and
    /// diversity GEDs.
    pub scoring: TallyCounts,
}

impl PipelineReport {
    /// A report with no kernel calls recorded yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total kernel invocations across all stages.
    pub fn total(&self) -> u64 {
        self.mining.total() + self.clustering.total() + self.scoring.total()
    }

    /// True when every kernel in every stage ran to completion.
    pub fn all_exact(&self) -> bool {
        self.mining.all_exact() && self.clustering.all_exact() && self.scoring.all_exact()
    }

    /// The worst completeness observed anywhere in the pipeline.
    pub fn worst(&self) -> Completeness {
        self.mining
            .worst()
            .worst(self.clustering.worst())
            .worst(self.scoring.worst())
    }

    /// Names of the stages that had at least one degraded kernel call, in
    /// pipeline order.
    pub fn degraded_stages(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (name, t) in self.stages() {
            if !t.all_exact() {
                out.push(name);
            }
        }
        out
    }

    /// `(stage name, counts)` pairs in pipeline order.
    pub fn stages(&self) -> [(&'static str, TallyCounts); 3] {
        [
            ("mining", self.mining),
            ("clustering", self.clustering),
            ("scoring", self.scoring),
        ]
    }

    /// Human-readable one-paragraph summary (used by the CLI).
    pub fn summary(&self) -> String {
        if self.all_exact() {
            format!(
                "all {} kernel searches exact (mining {}, clustering {}, scoring {})",
                self.total(),
                self.mining.total(),
                self.clustering.total(),
                self.scoring.total(),
            )
        } else {
            let mut lines = vec![format!(
                "{} of {} kernel searches degraded (worst: {})",
                self.total() - self.exact_total(),
                self.total(),
                self.worst().name(),
            )];
            for (name, t) in self.stages() {
                if !t.all_exact() {
                    lines.push(format!(
                        "  {name}: {}/{} degraded ({})",
                        t.degraded(),
                        t.total(),
                        t.worst().name(),
                    ));
                }
            }
            lines.join("\n")
        }
    }

    fn exact_total(&self) -> u64 {
        self.mining.exact + self.clustering.exact + self.scoring.exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::Tally;

    fn counts(exact: u64, exhausted: u64) -> TallyCounts {
        let t = Tally::new();
        for _ in 0..exact {
            t.record(Completeness::Exact);
        }
        for _ in 0..exhausted {
            t.record(Completeness::BudgetExhausted);
        }
        t.counts()
    }

    #[test]
    fn empty_report_is_exact() {
        let r = PipelineReport::new();
        assert!(r.all_exact());
        assert_eq!(r.total(), 0);
        assert_eq!(r.worst(), Completeness::Exact);
        assert!(r.degraded_stages().is_empty());
        assert!(r.summary().contains("exact"));
    }

    #[test]
    fn degraded_stage_is_named() {
        let r = PipelineReport {
            mining: counts(10, 0),
            clustering: counts(5, 2),
            scoring: counts(8, 0),
        };
        assert!(!r.all_exact());
        assert_eq!(r.degraded_stages(), vec!["clustering"]);
        assert_eq!(r.worst(), Completeness::BudgetExhausted);
        assert_eq!(r.total(), 25);
        let s = r.summary();
        assert!(s.contains("clustering"), "summary must name the stage: {s}");
        assert!(s.contains("budget-exhausted"), "summary must say why: {s}");
    }

    #[test]
    fn worst_ranks_across_stages() {
        let cancelled = {
            let t = Tally::new();
            t.record(Completeness::Cancelled);
            t.counts()
        };
        let r = PipelineReport {
            mining: counts(1, 1),
            clustering: cancelled,
            scoring: counts(0, 0),
        };
        assert_eq!(r.worst(), Completeness::Cancelled);
        assert_eq!(r.degraded_stages(), vec!["mining", "clustering"]);
    }
}
