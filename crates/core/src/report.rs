//! Pipeline-wide completeness reporting.
//!
//! Every NP-hard kernel in the pipeline (VF2 isomorphism, MCS/MCCS,
//! GED, miners) runs under a [`SearchBudget`](catapult_graph::SearchBudget)
//! and tags its result with a [`Completeness`]. This module aggregates
//! those tags per stage so callers can see *whether* a selection is exact
//! and, when it is not, *which stage* degraded and why — instead of
//! silently trusting truncated searches.

use catapult_graph::{Completeness, TallyCounts};

/// Per-stage completeness audit of one end-to-end pipeline run.
///
/// Each field counts kernel invocations in that stage by the
/// [`Completeness`] they reported. An all-exact report means every search
/// ran to completion and the output is byte-identical to an unbudgeted
/// run; any degraded count means the corresponding stage returned
/// best-so-far results (still valid patterns, possibly not optimal).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Frequent-subtree mining containment probes (support counts are
    /// lower bounds when degraded).
    pub mining: TallyCounts,
    /// Fine-clustering MCS/MCCS searches (degraded pairs fall back to
    /// label-vector similarity).
    pub clustering: TallyCounts,
    /// Selection-time kernels: candidate dedup VF2, ccov probes, and
    /// diversity GEDs.
    pub scoring: TallyCounts,
}

impl PipelineReport {
    /// A report with no kernel calls recorded yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total kernel invocations across all stages.
    pub fn total(&self) -> u64 {
        self.mining.total() + self.clustering.total() + self.scoring.total()
    }

    /// True when every kernel in every stage ran to completion.
    pub fn all_exact(&self) -> bool {
        self.mining.all_exact() && self.clustering.all_exact() && self.scoring.all_exact()
    }

    /// The worst completeness observed anywhere in the pipeline.
    pub fn worst(&self) -> Completeness {
        self.mining
            .worst()
            .worst(self.clustering.worst())
            .worst(self.scoring.worst())
    }

    /// Names of the stages that had at least one degraded kernel call, in
    /// pipeline order.
    pub fn degraded_stages(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (name, t) in self.stages() {
            if !t.all_exact() {
                out.push(name);
            }
        }
        out
    }

    /// Stage-wise sum of two reports (each stage merged with
    /// [`TallyCounts::merge`]).
    ///
    /// Explicitly **commutative and associative**: intermediate per-chunk
    /// or per-thread reports may be folded in *any* order — including the
    /// nondeterministic completion order of parallel workers — and the
    /// total is identical. Callers must never rely on the iteration order
    /// of the intermediate vectors they fold over; [`merge_all`] is the
    /// order-oblivious fold.
    ///
    /// [`merge_all`]: PipelineReport::merge_all
    pub fn merge(self, other: PipelineReport) -> PipelineReport {
        PipelineReport {
            mining: self.mining.merge(other.mining),
            clustering: self.clustering.merge(other.clustering),
            scoring: self.scoring.merge(other.scoring),
        }
    }

    /// Fold any number of partial reports into one. The result is
    /// independent of the order in which `parts` yields them.
    pub fn merge_all<I: IntoIterator<Item = PipelineReport>>(parts: I) -> PipelineReport {
        parts
            .into_iter()
            .fold(PipelineReport::new(), PipelineReport::merge)
    }

    /// `(stage name, counts)` pairs in pipeline order.
    pub fn stages(&self) -> [(&'static str, TallyCounts); 3] {
        [
            ("mining", self.mining),
            ("clustering", self.clustering),
            ("scoring", self.scoring),
        ]
    }

    /// Human-readable one-paragraph summary (used by the CLI).
    pub fn summary(&self) -> String {
        if self.all_exact() {
            format!(
                "all {} kernel searches exact (mining {}, clustering {}, scoring {})",
                self.total(),
                self.mining.total(),
                self.clustering.total(),
                self.scoring.total(),
            )
        } else {
            let mut lines = vec![format!(
                "{} of {} kernel searches degraded (worst: {})",
                self.total() - self.exact_total(),
                self.total(),
                self.worst().name(),
            )];
            for (name, t) in self.stages() {
                if !t.all_exact() {
                    lines.push(format!(
                        "  {name}: {}/{} degraded ({})",
                        t.degraded(),
                        t.total(),
                        t.worst().name(),
                    ));
                }
            }
            lines.join("\n")
        }
    }

    fn exact_total(&self) -> u64 {
        self.mining.exact + self.clustering.exact + self.scoring.exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::Tally;

    fn counts(exact: u64, exhausted: u64) -> TallyCounts {
        let t = Tally::new();
        for _ in 0..exact {
            t.record(Completeness::Exact);
        }
        for _ in 0..exhausted {
            t.record(Completeness::BudgetExhausted);
        }
        t.counts()
    }

    #[test]
    fn empty_report_is_exact() {
        let r = PipelineReport::new();
        assert!(r.all_exact());
        assert_eq!(r.total(), 0);
        assert_eq!(r.worst(), Completeness::Exact);
        assert!(r.degraded_stages().is_empty());
        assert!(r.summary().contains("exact"));
    }

    #[test]
    fn degraded_stage_is_named() {
        let r = PipelineReport {
            mining: counts(10, 0),
            clustering: counts(5, 2),
            scoring: counts(8, 0),
        };
        assert!(!r.all_exact());
        assert_eq!(r.degraded_stages(), vec!["clustering"]);
        assert_eq!(r.worst(), Completeness::BudgetExhausted);
        assert_eq!(r.total(), 25);
        let s = r.summary();
        assert!(s.contains("clustering"), "summary must name the stage: {s}");
        assert!(s.contains("budget-exhausted"), "summary must say why: {s}");
    }

    #[test]
    fn merge_is_commutative_and_associative_under_shuffled_orders() {
        // Partial reports as produced by per-thread accumulators. The
        // fold total must not depend on the iteration order of the
        // intermediate vector (worker completion order is arbitrary).
        let parts = [
            PipelineReport {
                mining: counts(3, 1),
                clustering: counts(0, 0),
                scoring: counts(2, 0),
            },
            PipelineReport {
                mining: counts(1, 0),
                clustering: counts(4, 2),
                scoring: counts(0, 1),
            },
            PipelineReport {
                mining: counts(0, 2),
                clustering: counts(1, 0),
                scoring: counts(5, 0),
            },
            PipelineReport {
                mining: counts(2, 0),
                clustering: counts(0, 1),
                scoring: counts(1, 3),
            },
        ];
        let reference = PipelineReport::merge_all(parts);
        // Every permutation of four parts (deterministically enumerated —
        // no RNG needed for 4! = 24 orders).
        let mut idx = [0usize, 1, 2, 3];
        let mut orders = Vec::new();
        permutations(&mut idx, 0, &mut orders);
        assert_eq!(orders.len(), 24);
        for order in orders {
            let shuffled = PipelineReport::merge_all(order.iter().map(|&i| parts[i]));
            assert_eq!(shuffled, reference, "order {order:?}");
        }
        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let left = parts[0].merge(parts[1]).merge(parts[2]);
        let right = parts[0].merge(parts[1].merge(parts[2]));
        assert_eq!(left, right);
        // Identity: the empty report is neutral on both sides.
        assert_eq!(PipelineReport::new().merge(parts[0]), parts[0]);
        assert_eq!(parts[0].merge(PipelineReport::new()), parts[0]);
    }

    fn permutations(idx: &mut [usize; 4], k: usize, out: &mut Vec<[usize; 4]>) {
        if k == idx.len() {
            out.push(*idx);
            return;
        }
        for i in k..idx.len() {
            idx.swap(k, i);
            permutations(idx, k + 1, out);
            idx.swap(k, i);
        }
    }

    #[test]
    fn worst_ranks_across_stages() {
        let cancelled = {
            let t = Tally::new();
            t.record(Completeness::Cancelled);
            t.counts()
        };
        let r = PipelineReport {
            mining: counts(1, 1),
            clustering: cancelled,
            scoring: counts(0, 0),
        };
        assert_eq!(r.worst(), Completeness::Cancelled);
        assert_eq!(r.degraded_stages(), vec!["mining", "clustering"]);
    }
}
