//! Pattern scoring (§5, Eq. 2):
//! `s_p = ccov(p, cw, C) × lcov(p, D) × div(p, P\p) / cog(p)`.
//!
//! * `ccov` estimates subgraph coverage through the cluster weights: a CSG
//!   "covers" `p` when `p` is subgraph-isomorphic to it (tested with VF2).
//! * `lcov(p, D)` is the fraction of data graphs containing at least one
//!   edge whose label occurs in `p`, computed against a bitset index.
//! * `div` is the minimum GED to the already-selected patterns, with the
//!   Definition 5.1 lower bound pruning exact computations (§5 steps a–c).
//! * `cog` is the density-based cognitive load (§3.2).
//!
//! The four criteria combine multiplicatively following Tofallis [37]
//! because no trade-off rate between them is known a priori.

use catapult_csg::{ClusterWeights, Csg};
use catapult_graph::ged::{ged_lower_bound, ged_with_budget};
use catapult_graph::iso::{for_each_embedding, MatchOptions};
use catapult_graph::metrics::cognitive_load;
use catapult_graph::{EdgeLabel, Graph, SearchBudget, Tally};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// Bitset index: per edge label, which data graphs contain it.
///
/// Enables `lcov(p, D)` — the size of the *union* of transaction sets over
/// `p`'s edge labels — in O(labels × |D|/64).
#[derive(Clone, Debug)]
pub struct EdgeLabelIndex {
    blocks_per_row: usize,
    rows: HashMap<EdgeLabel, Vec<u64>>,
    db_size: usize,
}

impl EdgeLabelIndex {
    /// Build the index over `db`.
    pub fn build(db: &[Graph]) -> Self {
        let n = db.len();
        let blocks = n.div_ceil(64);
        let mut rows: HashMap<EdgeLabel, Vec<u64>> = HashMap::new();
        for (i, g) in db.iter().enumerate() {
            for el in g.edge_label_set() {
                let row = rows.entry(el).or_insert_with(|| vec![0u64; blocks]);
                row[i / 64] |= 1u64 << (i % 64);
            }
        }
        EdgeLabelIndex {
            blocks_per_row: blocks,
            rows,
            db_size: n,
        }
    }

    /// Number of graphs indexed.
    pub fn db_size(&self) -> usize {
        self.db_size
    }

    /// `lcov(p, D)`: fraction of graphs containing any of `p`'s edge labels.
    pub fn lcov(&self, pattern: &Graph) -> f64 {
        if self.db_size == 0 {
            return 0.0;
        }
        let mut acc = vec![0u64; self.blocks_per_row];
        for el in pattern.edge_label_set() {
            if let Some(row) = self.rows.get(&el) {
                for (a, &b) in acc.iter_mut().zip(row) {
                    *a |= b;
                }
            }
        }
        let covered: u32 = acc.iter().map(|b| b.count_ones()).sum();
        covered as f64 / self.db_size as f64
    }

    /// `lcov` for a whole pattern set (union over all patterns' labels).
    pub fn lcov_set(&self, patterns: &[Graph]) -> f64 {
        if self.db_size == 0 {
            return 0.0;
        }
        let mut acc = vec![0u64; self.blocks_per_row];
        for p in patterns {
            for el in p.edge_label_set() {
                if let Some(row) = self.rows.get(&el) {
                    for (a, &b) in acc.iter_mut().zip(row) {
                        *a |= b;
                    }
                }
            }
        }
        let covered: u32 = acc.iter().map(|b| b.count_ones()).sum();
        covered as f64 / self.db_size as f64
    }
}

/// Default node cap for each CSG-containment VF2 test (CSGs are small;
/// this is generous). A user [`SearchBudget`] node cap overrides it.
pub const CCOV_ISO_BUDGET: u64 = 2_000_000;

/// Which CSGs contain `p` (subgraph isomorphism against the closure graph).
///
/// Convenience wrapper over [`covering_csgs_audited`] with the default
/// budget and no audit trail.
pub fn covering_csgs(pattern: &Graph, csgs: &[Csg]) -> Vec<usize> {
    covering_csgs_audited(pattern, csgs, &SearchBudget::unbounded(), &Tally::new())
}

/// [`covering_csgs`] under an explicit [`SearchBudget`], recording each
/// VF2 probe's [`Completeness`](catapult_graph::Completeness) in `tally`.
/// A degraded probe may miss a covering CSG (never invents one), so `ccov`
/// built from it is a lower bound.
pub fn covering_csgs_audited(
    pattern: &Graph,
    csgs: &[Csg],
    budget: &SearchBudget,
    tally: &Tally,
) -> Vec<usize> {
    let probe = budget.with_default_cap(CCOV_ISO_BUDGET);
    csgs.iter()
        .enumerate()
        .filter(|(_, c)| {
            let opts = MatchOptions {
                max_embeddings: 1,
                budget: probe.clone(),
                ..MatchOptions::default()
            };
            let out = for_each_embedding(&c.graph, pattern, opts, |_| ControlFlow::Break(()));
            tally.record(out.completeness);
            out.embeddings > 0
        })
        .map(|(i, _)| i)
        .collect()
}

/// `ccov(p, cw, C) = Σ_i cw_i · I(CSG_i ⊇ p)` (§5).
pub fn ccov(pattern: &Graph, csgs: &[Csg], cw: &ClusterWeights) -> f64 {
    ccov_audited(pattern, csgs, cw, &SearchBudget::unbounded(), &Tally::new())
}

/// [`ccov`] under an explicit budget with a completeness audit trail.
pub fn ccov_audited(
    pattern: &Graph,
    csgs: &[Csg],
    cw: &ClusterWeights,
    budget: &SearchBudget,
    tally: &Tally,
) -> f64 {
    covering_csgs_audited(pattern, csgs, budget, tally)
        .into_iter()
        .map(|i| cw.get(i))
        .sum()
}

/// Default GED node cap for diversity computations (patterns are ≤ ηmax ≈
/// 12 edges). A user [`SearchBudget`] node cap overrides it.
pub const DIV_GED_BUDGET: u64 = 50_000;

/// `div(p, P\p) = min_i GED(p, p_i)` with lower-bound pruning (§5):
/// order selected patterns by ascending `GED_l`, compute exact GEDs in that
/// order, and drop every pattern whose lower bound already exceeds the
/// best exact distance found.
///
/// Returns `None` for an empty `selected` set (the first pattern has no
/// diversity term).
pub fn diversity(pattern: &Graph, selected: &[Graph]) -> Option<f64> {
    diversity_audited(pattern, selected, &SearchBudget::unbounded(), &Tally::new())
}

/// [`diversity`] under an explicit budget with a completeness audit trail.
/// A tripped GED returns its best upper bound, so a degraded `div` can
/// only over-estimate the true minimum distance.
pub fn diversity_audited(
    pattern: &Graph,
    selected: &[Graph],
    budget: &SearchBudget,
    tally: &Tally,
) -> Option<f64> {
    if selected.is_empty() {
        return None;
    }
    let probe = budget.with_default_cap(DIV_GED_BUDGET);
    let mut order: Vec<(usize, usize)> = selected
        .iter()
        .map(|p| ged_lower_bound(pattern, p))
        .enumerate()
        .collect();
    order.sort_by_key(|&(_, lb)| lb);
    let mut best = usize::MAX;
    for (i, lb) in order {
        if lb >= best {
            break; // all remaining lower bounds are ≥ best: prune (step c3)
        }
        let r = ged_with_budget(pattern, &selected[i], &probe);
        tally.record(r.completeness);
        if r.distance < best {
            best = r.distance;
        }
    }
    Some(best as f64)
}

/// Scoring-function variants: the paper's Eq. 2 plus the ablations the
/// harness evaluates (`experiments ablation1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScoreVariant {
    /// Eq. 2: `ccov × lcov × div / cog` (multiplicative, per [37]).
    #[default]
    Full,
    /// Drop the diversity term: `ccov × lcov / cog`.
    NoDiversity,
    /// Drop the cognitive-load term: `ccov × lcov × div`.
    NoCognitiveLoad,
    /// Additive combination of normalized criteria — the alternative [37]
    /// argues against when trade-off rates are unknown:
    /// `(ccov + lcov + div/(div+1) + 1/(1+cog)) / 4`.
    Additive,
}

/// The Eq. 2 pattern score. `div` defaults to 1 when no pattern has been
/// selected yet (the multiplicative identity — the first pick is driven by
/// coverage and cognitive load alone).
pub fn pattern_score(
    pattern: &Graph,
    csgs: &[Csg],
    cw: &ClusterWeights,
    index: &EdgeLabelIndex,
    selected: &[Graph],
) -> f64 {
    pattern_score_variant(pattern, csgs, cw, index, selected, ScoreVariant::Full)
}

/// Pattern score under a chosen [`ScoreVariant`].
pub fn pattern_score_variant(
    pattern: &Graph,
    csgs: &[Csg],
    cw: &ClusterWeights,
    index: &EdgeLabelIndex,
    selected: &[Graph],
    variant: ScoreVariant,
) -> f64 {
    pattern_score_audited(
        pattern,
        csgs,
        cw,
        index,
        selected,
        variant,
        &SearchBudget::unbounded(),
        &Tally::new(),
    )
}

/// [`pattern_score_variant`] under an explicit [`SearchBudget`], recording
/// every NP-hard kernel call (ccov VF2 probes, diversity GEDs) in `tally`.
/// With a degraded tally the score is approximate: `ccov` is a lower bound
/// and `div` an upper bound.
#[allow(clippy::too_many_arguments)]
pub fn pattern_score_audited(
    pattern: &Graph,
    csgs: &[Csg],
    cw: &ClusterWeights,
    index: &EdgeLabelIndex,
    selected: &[Graph],
    variant: ScoreVariant,
    budget: &SearchBudget,
    tally: &Tally,
) -> f64 {
    let cov = ccov_audited(pattern, csgs, cw, budget, tally);
    let label_cov = index.lcov(pattern);
    let cog = cognitive_load(pattern);
    if cog <= 0.0 {
        return 0.0;
    }
    match variant {
        ScoreVariant::Full => {
            let div = diversity_audited(pattern, selected, budget, tally).unwrap_or(1.0);
            cov * label_cov * div / cog
        }
        ScoreVariant::NoDiversity => cov * label_cov / cog,
        ScoreVariant::NoCognitiveLoad => {
            let div = diversity_audited(pattern, selected, budget, tally).unwrap_or(1.0);
            cov * label_cov * div
        }
        ScoreVariant::Additive => {
            let div = diversity_audited(pattern, selected, budget, tally).unwrap_or(1.0);
            (cov + label_cov + div / (div + 1.0) + 1.0 / (1.0 + cog)) / 4.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_csg::build_csgs;
    use catapult_graph::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn db() -> Vec<Graph> {
        vec![
            Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2)]),
            Graph::from_parts(&[l(0), l(1)], &[(0, 1)]),
            Graph::from_parts(&[l(3), l(4)], &[(0, 1)]),
        ]
    }

    #[test]
    fn lcov_unions_transactions() {
        let db = db();
        let idx = EdgeLabelIndex::build(&db);
        let p = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        assert!((idx.lcov(&p) - 2.0 / 3.0).abs() < 1e-12);
        let q = Graph::from_parts(&[l(0), l(1), l(3), l(4)], &[(0, 1), (2, 3)]);
        assert!((idx.lcov(&q) - 1.0).abs() < 1e-12);
        assert!((idx.lcov_set(&[p, q]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccov_weights_covering_clusters() {
        let db = db();
        let csgs = build_csgs(&db, &[vec![0, 1], vec![2]]);
        let cw = ClusterWeights::new(&csgs, db.len());
        let p = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        // p is in CSG 0 (weight 2/3) only.
        assert!((ccov(&p, &csgs, &cw) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(covering_csgs(&p, &csgs), vec![0]);
    }

    #[test]
    fn diversity_is_min_ged() {
        let p = Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2)]);
        let near = Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2), (0, 2)]); // +1 edge
        let far = Graph::from_parts(&[l(9); 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let d = diversity(&p, &[far, near]).unwrap();
        assert_eq!(d, 1.0);
        assert!(diversity(&p, &[]).is_none());
    }

    #[test]
    fn pruning_matches_naive_min() {
        let p = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2)]);
        let set = vec![
            Graph::from_parts(&[l(0), l(1)], &[(0, 1)]),
            Graph::from_parts(&[l(0), l(1), l(2), l(3)], &[(0, 1), (1, 2), (2, 3)]),
            Graph::from_parts(&[l(5), l(6), l(7)], &[(0, 1), (1, 2)]),
        ];
        let pruned = diversity(&p, &set).unwrap();
        let naive = set
            .iter()
            .map(|q| ged_with_budget(&p, q, 1_000_000).distance)
            .min()
            .unwrap() as f64;
        assert_eq!(pruned, naive);
    }

    #[test]
    fn score_prefers_low_cog_high_cov() {
        let db = db();
        let csgs = build_csgs(&db, &[vec![0, 1], vec![2]]);
        let cw = ClusterWeights::new(&csgs, db.len());
        let idx = EdgeLabelIndex::build(&db);
        // A pattern in the big cluster vs one in the small cluster.
        let popular = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2)]);
        let niche = Graph::from_parts(&[l(3), l(4)], &[(0, 1)]);
        let s1 = pattern_score(&popular, &csgs, &cw, &idx, &[]);
        let s2 = pattern_score(&niche, &csgs, &cw, &idx, &[]);
        assert!(s1 > s2, "popular {s1} vs niche {s2}");
    }

    #[test]
    fn variants_differ_as_designed() {
        let db = db();
        let csgs = build_csgs(&db, &[vec![0, 1], vec![2]]);
        let cw = ClusterWeights::new(&csgs, db.len());
        let idx = EdgeLabelIndex::build(&db);
        let p = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2)]);
        let selected = vec![Graph::from_parts(&[l(0), l(1)], &[(0, 1)])];
        let full = pattern_score_variant(&p, &csgs, &cw, &idx, &selected, ScoreVariant::Full);
        let no_div =
            pattern_score_variant(&p, &csgs, &cw, &idx, &selected, ScoreVariant::NoDiversity);
        let no_cog = pattern_score_variant(
            &p,
            &csgs,
            &cw,
            &idx,
            &selected,
            ScoreVariant::NoCognitiveLoad,
        );
        let add = pattern_score_variant(&p, &csgs, &cw, &idx, &selected, ScoreVariant::Additive);
        // div(p, selected) = GED to the single edge = 2 → full = no_div × 2.
        assert!((full - no_div * 2.0).abs() < 1e-9);
        // no_cog = full × cog.
        let cog = catapult_graph::metrics::cognitive_load(&p);
        assert!((no_cog - full * cog).abs() < 1e-9);
        // additive is bounded in [0, 1].
        assert!((0.0..=1.0).contains(&add));
    }

    #[test]
    fn default_variant_is_full() {
        assert_eq!(ScoreVariant::default(), ScoreVariant::Full);
    }

    #[test]
    fn empty_db_scores_zero() {
        let idx = EdgeLabelIndex::build(&[]);
        let p = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        assert_eq!(idx.lcov(&p), 0.0);
    }
}
