//! Canned pattern selection — Algorithm 4 (`FindCannedPatternSet`).
//!
//! Greedy iterations: every CSG proposes one final candidate pattern per
//! open size (random-walk library → FCP), each candidate is scored with
//! Eq. 2, the best one joins the pattern set, and cluster / edge-label
//! weights are damped multiplicatively so later iterations favour uncovered
//! regions. The loop stops when `γ` patterns are selected, every size quota
//! is filled, or no scoring candidate remains.

use crate::budget::{PatternBudget, SizeCounts};
use crate::fcp::generate_fcp;
use crate::querylog::QueryLog;
use crate::report::PipelineReport;
use crate::score::{covering_csgs_audited, pattern_score_audited, EdgeLabelIndex, ScoreVariant};
use crate::walk::generate_library;
use catapult_csg::{ClusterWeights, Csg, EdgeLabelWeights, WeightedCsg};
use catapult_graph::iso::are_isomorphic_tagged;
use catapult_graph::{Graph, SearchBudget, Tally};
use catapult_mining::EdgeLabelStats;
use catapult_obs::{Recorder, Stopwatch};
use rand::Rng;
use rayon::prelude::*;
use std::time::Duration;

/// Selection parameters beyond the pattern budget.
#[derive(Clone, Debug)]
pub struct SelectionConfig {
    /// The pattern budget `b = (ηmin, ηmax, γ)`.
    pub budget: PatternBudget,
    /// Random walks per (CSG, size) pair (`x` in Algorithm 4; paper
    /// example uses 100).
    pub walks: usize,
    /// Scoring function (Eq. 2 by default; ablation variants available).
    pub variant: ScoreVariant,
    /// Optional query log (§3.3 remark): when present, scores are boosted
    /// by `1 + log_weight × freq(p)` so patterns frequent in past queries
    /// are preferred.
    pub query_log: Option<QueryLog>,
    /// Strength `λ` of the query-log boost.
    pub log_weight: f64,
    /// Execution budget shared by selection's NP-hard kernels (dedup VF2,
    /// ccov probes, diversity GEDs). Its deadline/cancellation also stops
    /// the greedy loop between iterations, returning the patterns selected
    /// so far. Per-kernel default node caps apply when unbounded.
    pub search: SearchBudget,
    /// Observability recorder (disabled by default). When enabled, the
    /// loop emits a `selection` span with per-iteration `greedy_iter`
    /// children (`walks` / `dedup` / `score` inside), and kernel effort
    /// lands in the `scoring.*` counters.
    pub recorder: Recorder,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            budget: PatternBudget::paper_default(),
            walks: 100,
            variant: ScoreVariant::Full,
            query_log: None,
            log_weight: 1.0,
            search: SearchBudget::unbounded(),
            recorder: Recorder::disabled(),
        }
    }
}

impl SelectionConfig {
    /// Paper-default selection settings.
    pub fn paper_default() -> Self {
        Self::default()
    }
}

/// A selected canned pattern with its provenance.
#[derive(Clone, Debug)]
pub struct SelectedPattern {
    /// The pattern graph.
    pub pattern: Graph,
    /// Eq. 2 score at selection time.
    pub score: f64,
    /// Which CSG proposed it.
    pub source_csg: usize,
}

/// Result of Algorithm 4.
#[derive(Clone, Debug)]
pub struct SelectionResult {
    /// Selected patterns in selection order.
    pub selected: Vec<SelectedPattern>,
    /// Wall-clock pattern-generation time (the paper's PGT measure).
    pub elapsed: Duration,
    /// Completeness audit of every NP-hard kernel call. Direct callers
    /// only see the `scoring` stage populated; [`run_catapult`]
    /// (crate::catapult::run_catapult) fills in mining and clustering.
    pub report: PipelineReport,
}

impl SelectionResult {
    /// Just the pattern graphs, in selection order.
    pub fn patterns(&self) -> Vec<Graph> {
        self.selected.iter().map(|s| s.pattern.clone()).collect()
    }
}

/// Run Algorithm 4 over prebuilt CSGs.
///
/// `db` supplies the label-coverage index and edge-label weights; `csgs`
/// the candidate source. Deterministic for a fixed RNG seed.
pub fn find_canned_patterns<R: Rng>(
    db: &[Graph],
    csgs: &[Csg],
    cfg: &SelectionConfig,
    rng: &mut R,
) -> SelectionResult {
    let _span = cfg.recorder.span("selection");
    let start = Stopwatch::start();
    // Every kernel metered under this budget flushes into `scoring.*`.
    let search = cfg
        .search
        .clone()
        .with_probe(cfg.recorder.stage_probe("scoring"));
    let iterations = cfg.recorder.counter("scoring.greedy.iterations");
    let candidates_seen = cfg.recorder.counter("scoring.greedy.candidates");
    let budget = cfg.budget.clone();
    // Progress accounting (`--progress` ETA): γ slots to fill, one done
    // per selected pattern. The greedy loop may stop early (exhausted
    // candidates), so done ≤ total is a bound, not a promise.
    let items_done = cfg.recorder.counter("selection.items.done");
    cfg.recorder
        .counter("selection.items.total")
        .add(budget.gamma() as u64);
    let mut elw = EdgeLabelWeights::new(EdgeLabelStats::from_graphs(db));
    let mut cw = ClusterWeights::new(csgs, db.len());
    let index = EdgeLabelIndex::build(db);
    let mut selected: Vec<SelectedPattern> = Vec::new();
    let mut selected_graphs: Vec<Graph> = Vec::new();
    let mut counts = SizeCounts::new();
    let scoring = Tally::new();

    while selected.len() < budget.gamma() {
        // A deadline or cancellation stops the greedy loop between
        // iterations: the patterns chosen so far remain valid and
        // budget-conforming, and the report records why we stopped early.
        if let Some(c) = search.interrupted() {
            scoring.record(c);
            break;
        }
        iterations.incr();
        let _iter_span = cfg.recorder.span("greedy_iter");
        let sizes = budget.open_sizes(&counts);
        if sizes.is_empty() {
            break;
        }
        // Candidate generation: every CSG proposes one FCP per open size.
        let walk_span = cfg.recorder.span("walks");
        let mut candidates: Vec<(Graph, usize)> = Vec::new();
        for (ci, csg) in csgs.iter().enumerate() {
            let weighted = WeightedCsg::new(csg, &elw);
            for &size in &sizes {
                let library = generate_library(&weighted, size, cfg.walks, rng);
                if let Some((fcp, _)) = generate_fcp(csg, &library, size) {
                    let got = fcp.edge_count();
                    // Accept only when the realized size still has quota
                    // (small CSGs can produce undersized FCPs).
                    if got >= budget.eta_min()
                        && got <= budget.eta_max()
                        && counts.count(got) < budget.size_cap(got)
                    {
                        candidates.push((fcp, ci));
                    }
                }
            }
        }
        drop(walk_span);
        candidates_seen.add(candidates.len() as u64);
        let dedup_span = cfg.recorder.span("dedup");
        // Drop candidates identical (isomorphic) to an already-selected
        // pattern — their diversity is 0, so they can never help. A
        // degraded check may let a duplicate through; scoring then gives
        // it zero diversity, so it is merely wasted work, never a wrong
        // selection.
        let iso_eq = |a: &Graph, b: &Graph| {
            let (eq, c) = are_isomorphic_tagged(a, b, &search);
            scoring.record(c);
            eq
        };
        candidates.retain(|(c, _)| !selected_graphs.iter().any(|p| iso_eq(p, c)));
        // Dedup isomorphic candidates proposed by different CSGs (clusters
        // often share motifs); scoring is the expensive part of the loop.
        let mut unique: Vec<(Graph, usize)> = Vec::with_capacity(candidates.len());
        for (c, ci) in candidates {
            if !unique.iter().any(|(u, _)| iso_eq(u, &c)) {
                unique.push((c, ci));
            }
        }
        let mut candidates = unique;
        drop(dedup_span);
        if candidates.is_empty() {
            break;
        }
        let _score_span = cfg.recorder.span("score");
        // Score in parallel (pure function of immutable state; `scoring`
        // is a commutative `Tally`). `enumerate` pairs each score with its
        // *source* index and collection is ordered, so the greedy argmax
        // below sees the same list for every thread count.
        let scored: Vec<(f64, usize)> = candidates
            .par_iter()
            .enumerate()
            .map(|(i, (c, _))| {
                let mut s = pattern_score_audited(
                    c,
                    csgs,
                    &cw,
                    &index,
                    &selected_graphs,
                    cfg.variant,
                    &search,
                    &scoring,
                );
                if let Some(log) = &cfg.query_log {
                    s *= 1.0 + cfg.log_weight * log.pattern_frequency(c);
                }
                (s, i)
            })
            .collect();
        // `candidates` was checked non-empty above, so `scored` has a
        // maximum; `total_cmp` keeps the greedy argmax well-defined even if
        // a score degenerated to NaN.
        let Some(&(best_score, best_idx)) = scored
            .iter()
            .max_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)))
        else {
            break;
        };
        if best_score <= 0.0 {
            // Nothing covers anything anymore (all weights damped to ~0 or
            // zero-coverage candidates): stop rather than pick noise.
            break;
        }
        let (pattern, source_csg) = candidates.swap_remove(best_idx);
        // Damp weights: clusters whose CSG contains the pattern, and the
        // pattern's edge labels (§5, multiplicative weights update).
        for ci in covering_csgs_audited(&pattern, csgs, &search, &scoring) {
            cw.damp(ci);
        }
        elw.damp_pattern(&pattern);
        counts.record(pattern.edge_count());
        selected_graphs.push(pattern.clone());
        selected.push(SelectedPattern {
            pattern,
            score: best_score,
            source_csg,
        });
        items_done.incr();
    }

    SelectionResult {
        selected,
        elapsed: start.elapsed(),
        report: PipelineReport {
            scoring: scoring.counts(),
            ..PipelineReport::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_csg::build_csgs;
    use catapult_graph::iso::are_isomorphic;
    use catapult_graph::{CancelToken, Label, VertexId};
    use rand::SeedableRng;

    fn ring(n: u32, label: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(label));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn chain(n: u32, labels: &[u32]) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add_vertex(Label(labels[i as usize % labels.len()]));
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    fn db_and_csgs() -> (Vec<Graph>, Vec<Csg>) {
        let mut db = Vec::new();
        for _ in 0..6 {
            db.push(ring(6, 0));
        }
        for _ in 0..6 {
            db.push(chain(7, &[0, 1]));
        }
        let clusters = vec![(0..6).collect::<Vec<u32>>(), (6..12).collect()];
        let csgs = build_csgs(&db, &clusters);
        (db, csgs)
    }

    #[test]
    fn respects_budget() {
        let (db, csgs) = db_and_csgs();
        let cfg = SelectionConfig {
            budget: PatternBudget::new(3, 5, 4).unwrap(),
            walks: 30,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = find_canned_patterns(&db, &csgs, &cfg, &mut rng);
        assert!(r.selected.len() <= 4);
        assert!(!r.selected.is_empty());
        for s in &r.selected {
            let e = s.pattern.edge_count();
            assert!((3..=5).contains(&e), "pattern size {e}");
        }
        // Per-size cap: 4 / 3 = 1.
        for size in 3..=5 {
            assert!(
                r.selected
                    .iter()
                    .filter(|s| s.pattern.edge_count() == size)
                    .count()
                    <= 2,
                "per-size cap violated"
            );
        }
    }

    #[test]
    fn no_duplicate_patterns() {
        let (db, csgs) = db_and_csgs();
        let cfg = SelectionConfig {
            budget: PatternBudget::new(3, 6, 8).unwrap(),
            walks: 30,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let r = find_canned_patterns(&db, &csgs, &cfg, &mut rng);
        let pats = r.patterns();
        for i in 0..pats.len() {
            for j in (i + 1)..pats.len() {
                assert!(!are_isomorphic(&pats[i], &pats[j]), "duplicate at {i},{j}");
            }
        }
    }

    #[test]
    fn patterns_occur_in_database() {
        let (db, csgs) = db_and_csgs();
        let cfg = SelectionConfig {
            budget: PatternBudget::new(3, 5, 4).unwrap(),
            walks: 30,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let r = find_canned_patterns(&db, &csgs, &cfg, &mut rng);
        // Every selected pattern embeds into at least one CSG, and (because
        // these clusters are homogeneous) into at least one data graph.
        for s in &r.selected {
            assert!(
                db.iter()
                    .any(|g| catapult_graph::iso::contains(g, &s.pattern)),
                "pattern not found in any data graph"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (db, csgs) = db_and_csgs();
        let cfg = SelectionConfig {
            budget: PatternBudget::new(3, 5, 4).unwrap(),
            walks: 20,
            ..Default::default()
        };
        let run = |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            find_canned_patterns(&db, &csgs, &cfg, &mut rng)
                .patterns()
                .iter()
                .map(|p| (p.vertex_count(), p.edge_count()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn query_log_biases_selection() {
        // Two homogeneous clusters; a log full of chain queries must pull
        // selection toward chain patterns on the very first pick.
        let (db, csgs) = db_and_csgs();
        let chain_queries: Vec<Graph> = (0..5).map(|_| chain(6, &[0, 1])).collect();
        let base_cfg = SelectionConfig {
            budget: PatternBudget::new(3, 4, 1).unwrap(),
            walks: 30,
            ..Default::default()
        };
        let log_cfg = SelectionConfig {
            query_log: Some(crate::querylog::QueryLog::new(chain_queries.clone())),
            log_weight: 10.0,
            ..base_cfg
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let with_log = find_canned_patterns(&db, &csgs, &log_cfg, &mut rng);
        // The single selected pattern must occur in the logged queries.
        let p = &with_log.selected[0].pattern;
        assert!(
            chain_queries
                .iter()
                .any(|q| catapult_graph::iso::contains(q, p)),
            "log-boosted pick must match the log"
        );
    }

    #[test]
    fn ablation_variants_run_to_completion() {
        use crate::score::ScoreVariant;
        let (db, csgs) = db_and_csgs();
        for variant in [
            ScoreVariant::Full,
            ScoreVariant::NoDiversity,
            ScoreVariant::NoCognitiveLoad,
            ScoreVariant::Additive,
        ] {
            let cfg = SelectionConfig {
                budget: PatternBudget::new(3, 5, 4).unwrap(),
                walks: 20,
                variant,
                ..Default::default()
            };
            let mut rng = rand::rngs::StdRng::seed_from_u64(43);
            let r = find_canned_patterns(&db, &csgs, &cfg, &mut rng);
            assert!(
                !r.selected.is_empty(),
                "variant {variant:?} selected nothing"
            );
        }
    }

    #[test]
    fn custom_distribution_is_respected() {
        let (db, csgs) = db_and_csgs();
        let budget = PatternBudget::with_distribution(3, 6, 6, vec![(3, 2), (5, 1)]).unwrap();
        let cfg = SelectionConfig {
            budget,
            walks: 30,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let r = find_canned_patterns(&db, &csgs, &cfg, &mut rng);
        for s in &r.selected {
            let e = s.pattern.edge_count();
            assert!(e == 3 || e == 5, "size {e} has no quota");
        }
        assert!(
            r.selected
                .iter()
                .filter(|s| s.pattern.edge_count() == 3)
                .count()
                <= 2
        );
        assert!(
            r.selected
                .iter()
                .filter(|s| s.pattern.edge_count() == 5)
                .count()
                <= 1
        );
    }

    #[test]
    fn exact_run_reports_all_exact() {
        let (db, csgs) = db_and_csgs();
        let cfg = SelectionConfig {
            budget: PatternBudget::new(3, 5, 4).unwrap(),
            walks: 30,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = find_canned_patterns(&db, &csgs, &cfg, &mut rng);
        assert!(r.report.all_exact(), "unbounded run must be exact");
        assert!(r.report.scoring.total() > 0, "kernels must be audited");
        assert!(r.report.degraded_stages().is_empty());
    }

    #[test]
    fn cancelled_search_stops_greedy_loop_and_is_reported() {
        let (db, csgs) = db_and_csgs();
        let token = CancelToken::new();
        token.cancel();
        let cfg = SelectionConfig {
            budget: PatternBudget::new(3, 5, 4).unwrap(),
            walks: 30,
            search: SearchBudget::unbounded().with_cancel(token),
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = find_canned_patterns(&db, &csgs, &cfg, &mut rng);
        assert!(r.selected.is_empty(), "pre-cancelled run selects nothing");
        assert_eq!(r.report.degraded_stages(), vec!["scoring"]);
        assert_eq!(
            r.report.worst(),
            catapult_graph::Completeness::Cancelled,
            "report must say why the loop stopped"
        );
    }

    #[test]
    fn empty_inputs() {
        let cfg = SelectionConfig::paper_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let r = find_canned_patterns(&[], &[], &cfg, &mut rng);
        assert!(r.selected.is_empty());
    }

    #[test]
    fn first_pattern_has_positive_score() {
        let (db, csgs) = db_and_csgs();
        let cfg = SelectionConfig {
            budget: PatternBudget::new(3, 4, 2).unwrap(),
            walks: 20,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let r = find_canned_patterns(&db, &csgs, &cfg, &mut rng);
        assert!(r.selected[0].score > 0.0);
    }
}
