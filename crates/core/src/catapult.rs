//! The end-to-end CATAPULT pipeline — Algorithm 1.
//!
//! ```text
//! 1  C_coarse ← CoarseClustering(D)            (Algorithm 2)
//! 2  C_fine   ← FineClustering(C_coarse)       (Algorithm 3)
//! 3  S        ← ClusterSummaryGraphSet(C_fine) (§4.2)
//! 4  elw      ← GetEdgeLabelWeight(D)
//! 5  cw       ← GetGraphClusterWeights(C_fine)
//! 6  P        ← FindCannedPatternSet(elw, cw, S, b)  (Algorithm 4)
//! ```
//!
//! Steps 4–5 are folded into [`crate::select::find_canned_patterns`];
//! this module wires clustering, summarization, and selection together and
//! reports the two timing measures used throughout §6 (clustering time and
//! pattern-generation time, PGT).

use crate::budget::PatternBudget;
use crate::report::PipelineReport;
use crate::select::{find_canned_patterns, SelectionConfig, SelectionResult};
use catapult_cluster::{cluster_graphs, Clustering, ClusteringConfig};
use catapult_csg::{build_csgs_recorded, Csg};
use catapult_graph::{Graph, SearchBudget};
use catapult_obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Full-pipeline configuration.
#[derive(Clone, Debug)]
pub struct CatapultConfig {
    /// Small-graph clustering settings (strategy, `N`, sampling, …).
    pub clustering: ClusteringConfig,
    /// Pattern budget `b = (ηmin, ηmax, γ)`.
    pub budget: PatternBudget,
    /// Random walks per (CSG, size) pair.
    pub walks: usize,
    /// RNG seed (the whole pipeline is deterministic given the seed).
    pub seed: u64,
    /// Global execution budget overlaid on every stage: an explicit node
    /// cap overrides the per-stage defaults, and its deadline/cancellation
    /// reaches mining, clustering, and the greedy selection loop. Leave
    /// unbounded for the per-stage defaults (and an exact run).
    pub search: SearchBudget,
    /// Observability recorder (disabled by default — a no-op). When
    /// enabled, the run emits a `pipeline` span tree covering every stage
    /// and per-stage kernel counters; snapshot it afterwards to build a
    /// [`catapult_obs::RunManifest`].
    pub recorder: Recorder,
}

impl Default for CatapultConfig {
    fn default() -> Self {
        CatapultConfig {
            clustering: ClusteringConfig::default(),
            budget: PatternBudget::paper_default(),
            walks: 100,
            seed: 0xCA7A_9017,
            search: SearchBudget::unbounded(),
            recorder: Recorder::disabled(),
        }
    }
}

/// Everything the pipeline produced.
#[derive(Clone, Debug)]
pub struct CatapultResult {
    /// The canned pattern set `P`, in selection order with scores.
    pub selection: SelectionResult,
    /// The cluster summary graphs.
    pub csgs: Vec<Csg>,
    /// The clustering output (clusters, features, clustering time).
    pub clustering: Clustering,
}

impl CatapultResult {
    /// The selected canned patterns.
    pub fn patterns(&self) -> Vec<Graph> {
        self.selection.patterns()
    }

    /// Clustering time (§6.1 measure a).
    pub fn clustering_time(&self) -> Duration {
        self.clustering.elapsed
    }

    /// Pattern generation time, PGT (§6.1 measure b).
    pub fn pattern_generation_time(&self) -> Duration {
        self.selection.elapsed
    }

    /// The per-stage completeness audit of the whole run.
    pub fn report(&self) -> &PipelineReport {
        &self.selection.report
    }
}

/// Run Algorithm 1 end to end over `db`.
pub fn run_catapult(db: &[Graph], cfg: &CatapultConfig) -> CatapultResult {
    let _span = cfg.recorder.span("pipeline");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let clustering_cfg = ClusteringConfig {
        // The global budget overrides the clustering stage's own settings
        // where explicit; stage defaults apply otherwise.
        search: cfg.search.overlay(&cfg.clustering.search),
        recorder: cfg.recorder.clone(),
        ..cfg.clustering.clone()
    };
    let clustering = cluster_graphs(db, &clustering_cfg, &mut rng);
    let csgs = build_csgs_recorded(db, &clustering.clusters, &cfg.recorder);
    let mut selection = find_canned_patterns(
        db,
        &csgs,
        &SelectionConfig {
            budget: cfg.budget.clone(),
            walks: cfg.walks,
            search: cfg.search.clone(),
            recorder: cfg.recorder.clone(),
            ..Default::default()
        },
        &mut rng,
    );
    // Selection only audited its own kernels; splice in the earlier stages
    // so the report covers the full Algorithm 1 run.
    selection.report.mining = clustering.mining;
    selection.report.clustering = clustering.fine;
    CatapultResult {
        selection,
        csgs,
        clustering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::{Label, VertexId};

    fn ring(n: u32, label: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(label));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn chain(n: u32, labels: &[u32]) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add_vertex(Label(labels[i as usize % labels.len()]));
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    fn small_db() -> Vec<Graph> {
        let mut db = Vec::new();
        for i in 0..10 {
            db.push(ring(5 + i % 2, 0));
            db.push(chain(6, &[0, 1]));
        }
        db
    }

    #[test]
    fn end_to_end_produces_patterns() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 5, 6).unwrap(),
            walks: 20,
            clustering: catapult_cluster::ClusteringConfig {
                max_cluster_size: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = run_catapult(&db, &cfg);
        assert!(!r.patterns().is_empty());
        assert!(!r.csgs.is_empty());
        for p in r.patterns() {
            assert!((3..=5).contains(&p.edge_count()));
            assert!(catapult_graph::components::is_connected(&p));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 4, 3).unwrap(),
            walks: 10,
            seed: 99,
            ..Default::default()
        };
        let fingerprint = |r: &CatapultResult| {
            r.patterns()
                .iter()
                .map(|p| p.invariant_signature())
                .collect::<Vec<_>>()
        };
        let r1 = run_catapult(&db, &cfg);
        let r2 = run_catapult(&db, &cfg);
        assert_eq!(fingerprint(&r1), fingerprint(&r2));
    }

    #[test]
    fn happy_path_reports_all_exact() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 4, 3).unwrap(),
            walks: 10,
            ..Default::default()
        };
        let r = run_catapult(&db, &cfg);
        assert!(r.report().all_exact(), "default run must be exact");
        assert!(r.report().total() > 0, "all stages must be audited");
        assert!(r.report().mining.total() > 0 || r.report().clustering.total() > 0);
    }

    #[test]
    fn expired_deadline_degrades_but_still_returns() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 4, 3).unwrap(),
            walks: 10,
            search: SearchBudget::unbounded()
                .with_deadline(catapult_graph::Deadline::at(std::time::Instant::now())),
            ..Default::default()
        };
        let r = run_catapult(&db, &cfg);
        // Patterns selected (possibly none) must still conform to the
        // budget, and the report must name at least one degraded stage.
        for p in r.patterns() {
            assert!((3..=4).contains(&p.edge_count()));
        }
        assert!(!r.report().all_exact());
        assert!(!r.report().degraded_stages().is_empty());
    }

    #[test]
    fn empty_database() {
        let cfg = CatapultConfig::default();
        let r = run_catapult(&[], &cfg);
        assert!(r.patterns().is_empty());
        assert!(r.csgs.is_empty());
    }

    #[test]
    fn timings_are_populated() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 4, 2).unwrap(),
            walks: 10,
            ..Default::default()
        };
        let r = run_catapult(&db, &cfg);
        // Durations exist (may be sub-millisecond but non-negative by type).
        let _ = r.clustering_time();
        let _ = r.pattern_generation_time();
    }
}
