//! The end-to-end CATAPULT pipeline — Algorithm 1.
//!
//! ```text
//! 1  C_coarse ← CoarseClustering(D)            (Algorithm 2)
//! 2  C_fine   ← FineClustering(C_coarse)       (Algorithm 3)
//! 3  S        ← ClusterSummaryGraphSet(C_fine) (§4.2)
//! 4  elw      ← GetEdgeLabelWeight(D)
//! 5  cw       ← GetGraphClusterWeights(C_fine)
//! 6  P        ← FindCannedPatternSet(elw, cw, S, b)  (Algorithm 4)
//! ```
//!
//! Steps 4–5 are folded into [`crate::select::find_canned_patterns`];
//! this module wires clustering, summarization, and selection together and
//! reports the two timing measures used throughout §6 (clustering time and
//! pattern-generation time, PGT).

use crate::budget::PatternBudget;
use crate::ckpt_io;
use crate::report::PipelineReport;
use crate::select::{find_canned_patterns, SelectionConfig, SelectionResult};
use catapult_ckpt::{CheckpointConfig, CkptError, StageStore};
use catapult_cluster::{cluster_graphs, cluster_graphs_resumable, Clustering, ClusteringConfig};
use catapult_csg::{build_csgs_recorded, Csg};
use catapult_graph::{Graph, SearchBudget};
use catapult_obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Full-pipeline configuration.
#[derive(Clone, Debug)]
pub struct CatapultConfig {
    /// Small-graph clustering settings (strategy, `N`, sampling, …).
    pub clustering: ClusteringConfig,
    /// Pattern budget `b = (ηmin, ηmax, γ)`.
    pub budget: PatternBudget,
    /// Random walks per (CSG, size) pair.
    pub walks: usize,
    /// RNG seed (the whole pipeline is deterministic given the seed).
    pub seed: u64,
    /// Global execution budget overlaid on every stage: an explicit node
    /// cap overrides the per-stage defaults, and its deadline/cancellation
    /// reaches mining, clustering, and the greedy selection loop. Leave
    /// unbounded for the per-stage defaults (and an exact run).
    pub search: SearchBudget,
    /// Observability recorder (disabled by default — a no-op). When
    /// enabled, the run emits a `pipeline` span tree covering every stage
    /// and per-stage kernel counters; snapshot it afterwards to build a
    /// [`catapult_obs::RunManifest`].
    pub recorder: Recorder,
}

impl Default for CatapultConfig {
    fn default() -> Self {
        CatapultConfig {
            clustering: ClusteringConfig::default(),
            budget: PatternBudget::paper_default(),
            walks: 100,
            seed: 0xCA7A_9017,
            search: SearchBudget::unbounded(),
            recorder: Recorder::disabled(),
        }
    }
}

/// Everything the pipeline produced.
#[derive(Clone, Debug)]
pub struct CatapultResult {
    /// The canned pattern set `P`, in selection order with scores.
    pub selection: SelectionResult,
    /// The cluster summary graphs.
    pub csgs: Vec<Csg>,
    /// The clustering output (clusters, features, clustering time).
    pub clustering: Clustering,
}

impl CatapultResult {
    /// The selected canned patterns.
    pub fn patterns(&self) -> Vec<Graph> {
        self.selection.patterns()
    }

    /// Clustering time (§6.1 measure a).
    pub fn clustering_time(&self) -> Duration {
        self.clustering.elapsed
    }

    /// Pattern generation time, PGT (§6.1 measure b).
    pub fn pattern_generation_time(&self) -> Duration {
        self.selection.elapsed
    }

    /// The per-stage completeness audit of the whole run.
    pub fn report(&self) -> &PipelineReport {
        &self.selection.report
    }
}

/// Run Algorithm 1 end to end over `db`.
pub fn run_catapult(db: &[Graph], cfg: &CatapultConfig) -> CatapultResult {
    match run_inner(db, cfg, None) {
        Ok(r) => r,
        // A store-free run performs no checkpoint I/O and cannot fail.
        Err(_) => unreachable!("checkpoint-free pipeline cannot fail"),
    }
}

/// As [`run_catapult`], writing a checkpoint at every stage boundary
/// (clustering's `mining`/`coarse`/`fine`/`clustering` slots, then
/// `csg` and `selection`) and — when `ckpt.resume` is set — continuing
/// from the furthest compatible checkpoint in `ckpt.dir`, including
/// mid-fine-clustering. Checkpoints are fingerprinted by
/// [`ckpt_io::fingerprint`]: a directory written under a different
/// dataset, config, or budget is rejected with a diagnostic naming the
/// mismatched field. Given the same seed and inputs, an
/// interrupted-then-resumed run reproduces the uninterrupted run's
/// [`ckpt_io::result_digest`] exactly.
pub fn run_catapult_resumable(
    db: &[Graph],
    cfg: &CatapultConfig,
    ckpt: &CheckpointConfig,
) -> Result<CatapultResult, CkptError> {
    let store = StageStore::open(ckpt, ckpt_io::fingerprint(db, cfg), cfg.recorder.clone())?;
    run_inner(db, cfg, Some(&store))
}

/// The shared engine behind [`run_catapult`] and
/// [`run_catapult_resumable`].
fn run_inner(
    db: &[Graph],
    cfg: &CatapultConfig,
    store: Option<&StageStore>,
) -> Result<CatapultResult, CkptError> {
    let _span = cfg.recorder.span("pipeline");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let clustering_cfg = ClusteringConfig {
        // The global budget overrides the clustering stage's own settings
        // where explicit; stage defaults apply otherwise.
        search: cfg.search.overlay(&cfg.clustering.search),
        recorder: cfg.recorder.clone(),
        ..cfg.clustering.clone()
    };
    let clustering = match store {
        Some(st) => cluster_graphs_resumable(db, &clustering_cfg, &mut rng, st)?,
        None => cluster_graphs(db, &clustering_cfg, &mut rng),
    };
    // CSG summarization is RNG-free, so its checkpoint carries no RNG
    // state: the stream position entering selection is exactly the one
    // the clustering checkpoint restored.
    let csgs = match load_stage(store, "csg", ckpt_io::decode_csgs)? {
        Some(csgs) => csgs,
        None => {
            let csgs = build_csgs_recorded(db, &clustering.clusters, &cfg.recorder);
            if let Some(st) = store {
                st.save("csg", 0, &ckpt_io::encode_csgs(&csgs))?;
            }
            csgs
        }
    };
    let selection = match load_stage(store, "selection", ckpt_io::decode_selection)? {
        Some(selection) => selection,
        None => {
            let mut selection = find_canned_patterns(
                db,
                &csgs,
                &SelectionConfig {
                    budget: cfg.budget.clone(),
                    walks: cfg.walks,
                    search: cfg.search.clone(),
                    recorder: cfg.recorder.clone(),
                    ..Default::default()
                },
                &mut rng,
            );
            // Selection only audited its own kernels; splice in the
            // earlier stages so the report covers the full Algorithm 1
            // run. The checkpoint stores the post-splice result, so a
            // resumed load is already complete.
            selection.report.mining = clustering.mining;
            selection.report.clustering = clustering.fine;
            if let Some(st) = store {
                st.save("selection", 0, &ckpt_io::encode_selection(&selection))?;
            }
            selection
        }
    };
    Ok(CatapultResult {
        selection,
        csgs,
        clustering,
    })
}

/// Load and decode one stage checkpoint, discarding (with a warning) a
/// checksummed-but-undecodable payload so the stage recomputes.
fn load_stage<T>(
    store: Option<&StageStore>,
    stage: &str,
    decode: impl Fn(&[u8]) -> Result<T, catapult_ckpt::wire::WireError>,
) -> Result<Option<T>, CkptError> {
    let Some(st) = store else { return Ok(None) };
    let Some((_seq, payload)) = st.load(stage)? else {
        return Ok(None);
    };
    match decode(&payload) {
        Ok(v) => Ok(Some(v)),
        Err(e) => {
            catapult_obs::warn(format!(
                "discarding undecodable {stage} checkpoint ({e}); recomputing"
            ));
            st.discard(stage)?;
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::{Label, VertexId};

    fn ring(n: u32, label: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(label));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn chain(n: u32, labels: &[u32]) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add_vertex(Label(labels[i as usize % labels.len()]));
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    fn small_db() -> Vec<Graph> {
        let mut db = Vec::new();
        for i in 0..10 {
            db.push(ring(5 + i % 2, 0));
            db.push(chain(6, &[0, 1]));
        }
        db
    }

    #[test]
    fn end_to_end_produces_patterns() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 5, 6).unwrap(),
            walks: 20,
            clustering: catapult_cluster::ClusteringConfig {
                max_cluster_size: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = run_catapult(&db, &cfg);
        assert!(!r.patterns().is_empty());
        assert!(!r.csgs.is_empty());
        for p in r.patterns() {
            assert!((3..=5).contains(&p.edge_count()));
            assert!(catapult_graph::components::is_connected(&p));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 4, 3).unwrap(),
            walks: 10,
            seed: 99,
            ..Default::default()
        };
        let fingerprint = |r: &CatapultResult| {
            r.patterns()
                .iter()
                .map(|p| p.invariant_signature())
                .collect::<Vec<_>>()
        };
        let r1 = run_catapult(&db, &cfg);
        let r2 = run_catapult(&db, &cfg);
        assert_eq!(fingerprint(&r1), fingerprint(&r2));
    }

    #[test]
    fn happy_path_reports_all_exact() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 4, 3).unwrap(),
            walks: 10,
            ..Default::default()
        };
        let r = run_catapult(&db, &cfg);
        assert!(r.report().all_exact(), "default run must be exact");
        assert!(r.report().total() > 0, "all stages must be audited");
        assert!(r.report().mining.total() > 0 || r.report().clustering.total() > 0);
    }

    #[test]
    fn expired_deadline_degrades_but_still_returns() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 4, 3).unwrap(),
            walks: 10,
            search: SearchBudget::unbounded()
                .with_deadline(catapult_graph::Deadline::at(std::time::Instant::now())),
            ..Default::default()
        };
        let r = run_catapult(&db, &cfg);
        // Patterns selected (possibly none) must still conform to the
        // budget, and the report must name at least one degraded stage.
        for p in r.patterns() {
            assert!((3..=4).contains(&p.edge_count()));
        }
        assert!(!r.report().all_exact());
        assert!(!r.report().degraded_stages().is_empty());
    }

    #[test]
    fn empty_database() {
        let cfg = CatapultConfig::default();
        let r = run_catapult(&[], &cfg);
        assert!(r.patterns().is_empty());
        assert!(r.csgs.is_empty());
    }

    #[test]
    fn resumable_run_matches_plain_and_resumes_from_disk() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 4, 3).unwrap(),
            walks: 10,
            seed: 42,
            ..Default::default()
        };
        let plain = run_catapult(&db, &cfg);
        let dir = std::env::temp_dir().join("catapult-core-resume");
        std::fs::remove_dir_all(&dir).ok();
        let ck = CheckpointConfig::new(&dir);
        let first = run_catapult_resumable(&db, &cfg, &ck).unwrap();
        assert_eq!(
            ckpt_io::result_digest(&first),
            ckpt_io::result_digest(&plain),
            "checkpointed run must reproduce the plain run"
        );

        // Resuming from the completed run reloads every stage from disk.
        let mut resume = CheckpointConfig::new(&dir);
        resume.resume = true;
        let second = run_catapult_resumable(&db, &cfg, &resume).unwrap();
        assert_eq!(
            ckpt_io::result_digest(&second),
            ckpt_io::result_digest(&first)
        );

        // Deleting the later stages resumes mid-pipeline and still
        // reproduces the original bytes.
        for stage in ["selection", "csg", "clustering"] {
            std::fs::remove_file(dir.join(format!("{stage}.ckpt"))).unwrap();
            let redo = run_catapult_resumable(&db, &cfg, &resume).unwrap();
            assert_eq!(
                ckpt_io::result_digest(&redo),
                ckpt_io::result_digest(&first),
                "after deleting {stage}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_checkpoints_are_rejected_by_fingerprint() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 4, 2).unwrap(),
            walks: 10,
            seed: 7,
            ..Default::default()
        };
        let dir = std::env::temp_dir().join("catapult-core-foreign");
        std::fs::remove_dir_all(&dir).ok();
        let ck = CheckpointConfig::new(&dir);
        run_catapult_resumable(&db, &cfg, &ck).unwrap();

        let mut resume = CheckpointConfig::new(&dir);
        resume.resume = true;
        // A different seed changes the config hash.
        let reseeded = CatapultConfig {
            seed: 8,
            ..cfg.clone()
        };
        let err = run_catapult_resumable(&db, &reseeded, &resume).unwrap_err();
        assert!(err.to_string().contains("config_hash"), "{err}");
        // A different budget changes a first-class fingerprint field.
        let rebudgeted = CatapultConfig {
            budget: PatternBudget::new(3, 4, 3).unwrap(),
            ..cfg.clone()
        };
        let err = run_catapult_resumable(&db, &rebudgeted, &resume).unwrap_err();
        assert!(err.to_string().contains("budget.gamma"), "{err}");
        // A different database changes the dataset hash.
        let mut other_db = db;
        other_db.pop();
        let err = run_catapult_resumable(&other_db, &cfg, &resume).unwrap_err();
        assert!(err.to_string().contains("dataset_hash"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timings_are_populated() {
        let db = small_db();
        let cfg = CatapultConfig {
            budget: PatternBudget::new(3, 4, 2).unwrap(),
            walks: 10,
            ..Default::default()
        };
        let r = run_catapult(&db, &cfg);
        // Durations exist (may be sub-millisecond but non-negative by type).
        let _ = r.clustering_time();
        let _ = r.pattern_generation_time();
    }
}
