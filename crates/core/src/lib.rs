//! # catapult-core
//!
//! The paper's primary contribution: data-driven canned pattern selection
//! (Algorithms 1 and 4 of SIGMOD'19 *CATAPULT: Data-driven Selection of
//! Canned Patterns for Efficient Visual Graph Query Formulation*).
//!
//! The entry point is [`catapult::run_catapult`]: given a database of
//! small labeled graphs and a pattern budget `b = (ηmin, ηmax, γ)`, it
//! clusters the database, summarizes each cluster into a closure graph,
//! and greedily selects `γ` canned patterns that maximize subgraph and
//! label coverage and diversity while minimizing cognitive load.
//!
//! ```
//! use catapult_core::prelude::*;
//! use catapult_graph::{Graph, Label, VertexId};
//!
//! // A toy repository of triangles.
//! let tri = Graph::from_parts(&[Label(0); 3], &[(0, 1), (1, 2), (0, 2)]);
//! let db = vec![tri.clone(), tri.clone(), tri];
//! let cfg = CatapultConfig {
//!     budget: PatternBudget::new(3, 3, 1).unwrap(),
//!     walks: 10,
//!     ..Default::default()
//! };
//! let result = run_catapult(&db, &cfg);
//! assert_eq!(result.patterns().len(), 1);
//! ```

// Lint policy: see [workspace.lints] in the root Cargo.toml.
#![warn(missing_docs)]
// Unit tests are allowed the ergonomic panicking shortcuts the library
// itself forbids; the policy targets production code paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod budget;
pub mod catapult;
pub mod ckpt_io;
pub mod fcp;
pub mod incremental;
pub mod querylog;
pub mod report;
pub mod score;
pub mod select;
pub mod walk;

pub use budget::{BudgetError, PatternBudget, SizeCounts, SizeDistribution};
pub use catapult::{run_catapult, run_catapult_resumable, CatapultConfig, CatapultResult};
pub use incremental::{IncrementalCatapult, IncrementalConfig, UpdateStats};
pub use querylog::QueryLog;
pub use report::PipelineReport;
pub use score::{EdgeLabelIndex, ScoreVariant};
pub use select::{find_canned_patterns, SelectedPattern, SelectionConfig, SelectionResult};

/// Convenience re-exports for typical pipeline users.
pub mod prelude {
    pub use crate::budget::PatternBudget;
    pub use crate::catapult::{run_catapult, CatapultConfig, CatapultResult};
    pub use crate::select::{SelectionConfig, SelectionResult};
    pub use catapult_cluster::{ClusteringConfig, SimilarityKind, Strategy};
}
