//! Final candidate pattern (FCP) assembly from a PCP library (§5, Fig. 6c).
//!
//! The FCP starts from the most frequent edge across the library's walks
//! and is grown one edge at a time, always taking the most frequent
//! library edge that keeps the pattern connected, until the target size is
//! reached or no connected frequent edge remains.

use crate::walk::Pcp;
use catapult_csg::Csg;
use catapult_graph::{EdgeId, Graph};
use std::collections::HashMap;

/// Count how often each CSG edge occurs across the library (Fig. 6c's
/// `Freq` table).
pub fn edge_frequencies(library: &[Pcp]) -> HashMap<EdgeId, usize> {
    let mut freq = HashMap::new();
    for pcp in library {
        for &e in pcp {
            *freq.entry(e).or_insert(0usize) += 1;
        }
    }
    freq
}

/// Assemble the FCP of `target_edges` edges from the walk library.
///
/// Returns the pattern as a standalone graph (extracted from the CSG) plus
/// the CSG edge ids it uses, or `None` for an empty library. May return a
/// pattern smaller than requested when the library's connected frequent
/// region is exhausted.
pub fn generate_fcp(
    csg: &Csg,
    library: &[Pcp],
    target_edges: usize,
) -> Option<(Graph, Vec<EdgeId>)> {
    let freq = edge_frequencies(library);
    if freq.is_empty() || target_edges == 0 {
        return None;
    }
    let g = &csg.graph;
    // Most frequent edge; deterministic tie-break on edge id.
    // `freq` was checked non-empty above; `?` keeps this selection kernel
    // free of panicking paths without a reachable early return.
    let first = *freq
        // max_by_key over a total (count, Reverse(edge id)) key has a
        // unique winner for any visit order.
        // xtask-allow: hash-iter-order, taint -- argmax over a total (count, Reverse(id)) key; unique winner for any visit order
        .iter()
        .max_by_key(|&(e, &c)| (c, std::cmp::Reverse(e.0)))
        .map(|(e, _)| e)?;
    let mut chosen = vec![first];
    let mut in_pattern = vec![false; g.edge_count()];
    let mut in_vertices = vec![false; g.vertex_count()];
    let mark = |eid: EdgeId, in_pattern: &mut [bool], in_vertices: &mut [bool]| {
        in_pattern[eid.index()] = true;
        let e = g.edge(eid);
        in_vertices[e.u.index()] = true;
        in_vertices[e.v.index()] = true;
    };
    mark(first, &mut in_pattern, &mut in_vertices);

    while chosen.len() < target_edges {
        // Most frequent library edge connected to the current pattern.
        let next = freq
            // Same total (count, Reverse(id)) key as above: the argmax
            // is unique, so visit order cannot leak.
            // xtask-allow: hash-iter-order, taint -- argmax over a total (count, Reverse(id)) key; unique winner for any visit order
            .iter()
            .filter(|&(&eid, _)| {
                if in_pattern[eid.index()] {
                    return false;
                }
                let e = g.edge(eid);
                in_vertices[e.u.index()] || in_vertices[e.v.index()]
            })
            .max_by_key(|&(&eid, &c)| (c, std::cmp::Reverse(eid.0)))
            .map(|(&eid, _)| eid);
        match next {
            Some(eid) => {
                mark(eid, &mut in_pattern, &mut in_vertices);
                chosen.push(eid);
            }
            None => break,
        }
    }
    Some((g.subgraph_from_edges(&chosen), chosen))
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_csg::{build_csgs, EdgeLabelWeights, WeightedCsg};
    use catapult_graph::components::is_connected;
    use catapult_graph::{Graph, Label};
    use catapult_mining::EdgeLabelStats;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn star_csg() -> (Vec<Graph>, Vec<Csg>) {
        let db = vec![
            Graph::from_parts(&[l(0), l(1), l(2), l(3)], &[(0, 1), (0, 2), (0, 3)]),
            Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (0, 2)]),
        ];
        let csgs = build_csgs(&db, &[vec![0, 1]]);
        (db, csgs)
    }

    #[test]
    fn fcp_prefers_frequent_edges() {
        let (_, csgs) = star_csg();
        // A hand-built library where edge 0 dominates, then edge 1.
        let library: Vec<Pcp> = vec![
            vec![EdgeId(0), EdgeId(1)],
            vec![EdgeId(0), EdgeId(1)],
            vec![EdgeId(0), EdgeId(2)],
        ];
        let (fcp, chosen) = generate_fcp(&csgs[0], &library, 2).unwrap();
        assert_eq!(chosen[0], EdgeId(0));
        assert_eq!(chosen[1], EdgeId(1));
        assert_eq!(fcp.edge_count(), 2);
    }

    #[test]
    fn fcp_is_connected() {
        let (db, csgs) = star_csg();
        let elw = EdgeLabelWeights::new(EdgeLabelStats::from_graphs(&db));
        let w = WeightedCsg::new(&csgs[0], &elw);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let lib = crate::walk::generate_library(&w, 3, 50, &mut rng);
        let (fcp, _) = generate_fcp(&csgs[0], &lib, 3).unwrap();
        assert!(is_connected(&fcp));
        assert!(fcp.edge_count() <= 3);
    }

    #[test]
    fn empty_library_yields_none() {
        let (_, csgs) = star_csg();
        assert!(generate_fcp(&csgs[0], &[], 3).is_none());
    }

    #[test]
    fn fcp_capped_by_connected_region() {
        let (_, csgs) = star_csg();
        // Library only ever saw one edge.
        let library: Vec<Pcp> = vec![vec![EdgeId(2)]];
        let (fcp, chosen) = generate_fcp(&csgs[0], &library, 5).unwrap();
        assert_eq!(chosen.len(), 1);
        assert_eq!(fcp.edge_count(), 1);
    }

    #[test]
    fn frequencies_count_multiplicity() {
        let library: Vec<Pcp> = vec![vec![EdgeId(0)], vec![EdgeId(0), EdgeId(1)]];
        let f = edge_frequencies(&library);
        assert_eq!(f[&EdgeId(0)], 2);
        assert_eq!(f[&EdgeId(1)], 1);
    }
}
