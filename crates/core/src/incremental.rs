//! Incremental maintenance of canned patterns (the §1 extension).
//!
//! The paper positions CATAPULT as extensible "to support incremental
//! maintenance of canned patterns as the underlying data graphs evolve".
//! Clustering is the expensive one-time phase (§4.1 remark); this module
//! maintains the clustering incrementally so only the cheap selection
//! phase reruns per batch:
//!
//! 1. each arriving graph is assigned to the existing cluster whose CSG it
//!    is most MCCS-similar to, if the similarity clears a threshold;
//! 2. unassigned arrivals pool as *outliers*; once the pool exceeds the
//!    cluster-size bound `N` it is fine-clustered (Algorithm 3) into new
//!    clusters;
//! 3. only touched CSGs are rebuilt, and pattern selection (Algorithm 4)
//!    reruns over the updated summaries.

use crate::select::{find_canned_patterns, SelectionConfig, SelectionResult};
use catapult_cluster::fine::{fine_cluster, FineConfig};
use catapult_csg::Csg;
use catapult_graph::mcs::mccs_similarity_tagged;
use catapult_graph::{Graph, SearchBudget};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Maintenance parameters.
#[derive(Clone, Debug)]
pub struct IncrementalConfig {
    /// Minimum MCCS similarity to join an existing cluster.
    pub assignment_threshold: f64,
    /// Execution budget per assignment MCCS probe (and for maturing the
    /// outlier pool). A degraded probe under-estimates similarity, so an
    /// arrival may pool as an outlier instead of joining a cluster —
    /// sound, just conservative; [`UpdateStats::degraded_probes`] counts
    /// how often that happened.
    pub search: SearchBudget,
    /// Maximum cluster size `N`; also the outlier-pool trigger.
    pub max_cluster_size: usize,
    /// Selection settings used on refresh.
    pub selection: SelectionConfig,
    /// Seed for the (deterministic) refresh RNG.
    pub seed: u64,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            assignment_threshold: 0.5,
            search: SearchBudget::nodes(20_000),
            max_cluster_size: 20,
            selection: SelectionConfig::default(),
            seed: 0x1AC_u64,
        }
    }
}

/// Statistics of one maintenance batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Arrivals absorbed into existing clusters.
    pub assigned: usize,
    /// Arrivals parked in the outlier pool.
    pub outliers: usize,
    /// CSGs rebuilt by this batch.
    pub rebuilt_csgs: usize,
    /// New clusters created from the outlier pool.
    pub new_clusters: usize,
    /// Assignment MCCS probes that tripped their budget (their similarity
    /// is a lower bound).
    pub degraded_probes: usize,
}

/// A maintained CATAPULT instance: repository + clustering + CSGs, with
/// batch insertion and on-demand pattern refresh.
#[derive(Clone, Debug)]
pub struct IncrementalCatapult {
    db: Vec<Graph>,
    clusters: Vec<Vec<u32>>,
    csgs: Vec<Csg>,
    outlier_pool: Vec<u32>,
    cfg: IncrementalConfig,
}

impl IncrementalCatapult {
    /// Wrap an existing clustering (e.g. from
    /// [`crate::catapult::run_catapult`]'s `clustering.clusters`).
    pub fn new(db: Vec<Graph>, clusters: Vec<Vec<u32>>, cfg: IncrementalConfig) -> Self {
        let csgs = catapult_csg::build_csgs(&db, &clusters);
        let clusters = clusters.into_iter().filter(|c| !c.is_empty()).collect();
        IncrementalCatapult {
            db,
            clusters,
            csgs,
            outlier_pool: Vec::new(),
            cfg,
        }
    }

    /// Current repository size.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Current clusters (including none for pooled outliers).
    pub fn clusters(&self) -> &[Vec<u32>] {
        &self.clusters
    }

    /// Current CSGs.
    pub fn csgs(&self) -> &[Csg] {
        &self.csgs
    }

    /// Graphs waiting in the outlier pool.
    pub fn pending_outliers(&self) -> usize {
        self.outlier_pool.len()
    }

    /// Assign one graph to the most similar cluster, if any clears the
    /// threshold. Also returns how many similarity probes were degraded.
    fn assign(&self, g: &Graph) -> (Option<usize>, usize) {
        let mut best: Option<(usize, f64)> = None;
        let mut degraded = 0;
        for (i, c) in self.csgs.iter().enumerate() {
            let (sim, completeness) = mccs_similarity_tagged(g, &c.graph, &self.cfg.search);
            if !completeness.is_exact() {
                degraded += 1;
            }
            if best.is_none_or(|(_, s)| sim > s) {
                best = Some((i, sim));
            }
        }
        let chosen = match best {
            Some((i, s)) if s >= self.cfg.assignment_threshold => Some(i),
            _ => None,
        };
        (chosen, degraded)
    }

    /// Insert a batch of graphs, updating clusters and CSGs.
    pub fn insert_batch(&mut self, batch: Vec<Graph>) -> UpdateStats {
        let mut stats = UpdateStats::default();
        let mut touched: Vec<usize> = Vec::new();
        for g in batch {
            let id = self.db.len() as u32;
            let (assigned, degraded) = self.assign(&g);
            stats.degraded_probes += degraded;
            match assigned {
                Some(c) => {
                    self.clusters[c].push(id);
                    touched.push(c);
                    stats.assigned += 1;
                }
                None => {
                    self.outlier_pool.push(id);
                    stats.outliers += 1;
                }
            }
            self.db.push(g);
        }
        touched.sort_unstable();
        touched.dedup();
        for &c in &touched {
            self.csgs[c] = Csg::build(&self.db, &self.clusters[c]);
        }
        stats.rebuilt_csgs = touched.len();

        // Mature the outlier pool into proper clusters once it outgrows N.
        if self.outlier_pool.len() > self.cfg.max_cluster_size {
            let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ self.db.len() as u64);
            let fine_cfg = FineConfig {
                max_cluster_size: self.cfg.max_cluster_size,
                budget: self.cfg.search.clone(),
                ..Default::default()
            };
            let pool = std::mem::take(&mut self.outlier_pool);
            let new_clusters = fine_cluster(&self.db, vec![pool], &fine_cfg, &mut rng);
            stats.new_clusters = new_clusters.len();
            for c in new_clusters {
                self.csgs.push(Csg::build(&self.db, &c));
                self.clusters.push(c);
            }
        }
        // Outlier-pool graphs are unclustered by design, so the assignment
        // covers a subset; soundness (bounds, no double assignment) holds.
        catapult_graph::debug_invariants!(catapult_cluster::invariants::validate_assignment(
            self.db.len(),
            &self.clusters,
            false,
        ));
        stats
    }

    /// Re-run pattern selection over the current summaries. Outlier-pool
    /// graphs not yet clustered still contribute to `lcov`/`elw` through
    /// the database; they just don't propose candidates until matured.
    pub fn refresh_patterns(&self) -> SelectionResult {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        find_canned_patterns(&self.db, &self.csgs, &self.cfg.selection, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::PatternBudget;
    use catapult_graph::{Label, VertexId};

    fn ring(n: u32, label: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(label));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn chain(n: u32, label: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(label));
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    fn config() -> IncrementalConfig {
        IncrementalConfig {
            max_cluster_size: 5,
            selection: SelectionConfig {
                budget: PatternBudget::new(3, 5, 4).unwrap(),
                walks: 15,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn seeded() -> IncrementalCatapult {
        let db: Vec<Graph> = (0..6).map(|_| ring(6, 0)).collect();
        let clusters = vec![(0..3).collect::<Vec<u32>>(), (3..6).collect()];
        IncrementalCatapult::new(db, clusters, config())
    }

    #[test]
    fn similar_arrivals_join_existing_clusters() {
        let mut inc = seeded();
        let stats = inc.insert_batch(vec![ring(6, 0), ring(6, 0)]);
        assert_eq!(stats.assigned, 2);
        assert_eq!(stats.outliers, 0);
        assert!(stats.rebuilt_csgs >= 1);
        assert_eq!(inc.len(), 8);
        // Every CSG still carries valid member witnesses.
        for csg in inc.csgs() {
            assert!(csg.verify_members(&inc.db));
        }
    }

    #[test]
    fn dissimilar_arrivals_pool_as_outliers() {
        let mut inc = seeded();
        // Chains with a fresh label share nothing with the ring clusters.
        let stats = inc.insert_batch(vec![chain(5, 9), chain(6, 9)]);
        assert_eq!(stats.assigned, 0);
        assert_eq!(stats.outliers, 2);
        assert_eq!(inc.pending_outliers(), 2);
        assert_eq!(stats.new_clusters, 0);
    }

    #[test]
    fn outlier_pool_matures_into_clusters() {
        let mut inc = seeded();
        let arrivals: Vec<Graph> = (0..7).map(|_| chain(6, 9)).collect();
        let stats = inc.insert_batch(arrivals);
        assert_eq!(stats.outliers, 7); // pool 7 > N = 5 → matured
        assert!(stats.new_clusters >= 1);
        assert_eq!(inc.pending_outliers(), 0);
        // All graphs are covered by clusters now.
        let covered: usize = inc.clusters().iter().map(Vec::len).sum();
        assert_eq!(covered, inc.len());
    }

    #[test]
    fn refreshed_patterns_cover_new_structures() {
        let mut inc = seeded();
        let before = inc.refresh_patterns().patterns();
        // Mature a batch of labeled chains into a new cluster.
        let arrivals: Vec<Graph> = (0..7).map(|_| chain(7, 9)).collect();
        inc.insert_batch(arrivals);
        let after = inc.refresh_patterns().patterns();
        let probe = chain(4, 9);
        let before_hit = before
            .iter()
            .any(|p| catapult_graph::iso::contains(&probe, p));
        let after_hit = after
            .iter()
            .any(|p| catapult_graph::iso::contains(&probe, p));
        assert!(!before_hit, "stale panel cannot know the new label");
        assert!(after_hit, "maintained panel must cover the new motif");
    }

    #[test]
    fn deterministic_refresh() {
        let inc = seeded();
        let a = inc.refresh_patterns();
        let b = inc.refresh_patterns();
        assert_eq!(
            a.patterns()
                .iter()
                .map(Graph::invariant_signature)
                .collect::<Vec<_>>(),
            b.patterns()
                .iter()
                .map(Graph::invariant_signature)
                .collect::<Vec<_>>()
        );
    }
}
