//! Bitset adjacency matrices for the search kernels.
//!
//! The MCS and isomorphism kernels test `has_edge` in their innermost
//! loops; [`Graph`] answers it by scanning the shorter adjacency list,
//! which is O(degree) per probe. [`BitAdjacency`] is a dense row-per-vertex
//! bit matrix built once per search (O(|V|²/64) words, O(|V| + |E|) build
//! time) that answers the same query with one shift and mask. For the
//! molecule-scale graphs CATAPULT clusters (|V| ≤ ~60) a full row is one
//! cache line, so neighbor-set probes during backtracking stay in L1.

use crate::graph::{Graph, VertexId};

/// Dense adjacency bit matrix: row `v` holds one bit per vertex, set when
/// `(v, w)` is an edge. Rows are `stride` words long.
#[derive(Clone, Debug)]
pub struct BitAdjacency {
    words: Vec<u64>,
    stride: usize,
}

impl BitAdjacency {
    /// Build the bit matrix for `g`.
    pub fn new(g: &Graph) -> Self {
        let n = g.vertex_count();
        let stride = n.div_ceil(64);
        let mut words = vec![0u64; n * stride];
        for (_, e) in g.edges() {
            let (u, v) = (e.u.index(), e.v.index());
            words[u * stride + v / 64] |= 1u64 << (v % 64);
            words[v * stride + u / 64] |= 1u64 << (u % 64);
        }
        BitAdjacency { words, stride }
    }

    /// Whether `(u, v)` is an edge. Out-of-range vertices are non-adjacent.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (u, v) = (u.index(), v.index());
        match self.words.get(u * self.stride + v / 64) {
            Some(w) => (w >> (v % 64)) & 1 == 1,
            None => false,
        }
    }

    /// The neighbor-set row of `u` as bit words (empty if out of range).
    #[inline]
    pub fn row(&self, u: VertexId) -> &[u64] {
        let start = u.index() * self.stride;
        self.words.get(start..start + self.stride).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    #[test]
    fn matches_graph_has_edge() {
        let g = Graph::from_parts(
            &[Label(0), Label(1), Label(0), Label(2), Label(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)],
        );
        let bits = BitAdjacency::new(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    bits.has_edge(u, v),
                    g.has_edge(u, v),
                    "mismatch at ({u:?}, {v:?})"
                );
            }
        }
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::new();
        let bits = BitAdjacency::new(&g);
        assert!(!bits.has_edge(VertexId(0), VertexId(1)));
        assert!(bits.row(VertexId(0)).is_empty());
    }

    #[test]
    fn wide_graph_crosses_word_boundaries() {
        // 70 vertices: rows span two words; edges land on both sides.
        let labels = vec![Label(0); 70];
        let edges: Vec<(u32, u32)> = vec![(0, 63), (0, 64), (63, 69), (1, 2)];
        let g = Graph::from_parts(&labels, &edges);
        let bits = BitAdjacency::new(&g);
        assert!(bits.has_edge(VertexId(0), VertexId(63)));
        assert!(bits.has_edge(VertexId(64), VertexId(0)));
        assert!(bits.has_edge(VertexId(69), VertexId(63)));
        assert!(!bits.has_edge(VertexId(2), VertexId(69)));
    }
}
