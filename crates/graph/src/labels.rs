//! Interned vertex labels and derived edge labels.
//!
//! CATAPULT operates on repositories of small labeled graphs (e.g. chemical
//! compounds, where vertex labels are element symbols). Labels are interned
//! once into dense `u32` ids so that graphs themselves store only integers
//! and label comparisons are O(1).

use std::collections::HashMap;
use std::fmt;

/// An interned vertex label.
///
/// Obtained from a [`LabelInterner`]. Two `Label`s from the same interner
/// are equal iff their original strings were equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl Label {
    /// Raw id as `usize`, for indexing per-label tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The label of an (undirected) edge, derived from its endpoint labels.
///
/// Per the paper (§3.2, footnote 5): *"In graphs where only vertices are
/// labelled, an edge label can be considered as concatenation of labels of
/// the end vertices."* We store the unordered pair in canonical
/// (min, max) order so that `(C, O)` and `(O, C)` compare equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeLabel(pub Label, pub Label);

impl EdgeLabel {
    /// Canonicalize an endpoint label pair into an edge label.
    #[inline]
    pub fn new(a: Label, b: Label) -> Self {
        if a <= b {
            EdgeLabel(a, b)
        } else {
            EdgeLabel(b, a)
        }
    }
}

impl fmt::Debug for EdgeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?},{:?})", self.0, self.1)
    }
}

/// String ↔ [`Label`] interner.
///
/// A repository shares one interner; datasets, queries, and selected canned
/// patterns must agree on label ids to be comparable.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    names: Vec<String>,
    ids: HashMap<String, Label>,
}

impl LabelInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable [`Label`].
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.ids.get(name) {
            return l;
        }
        let l = Label(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), l);
        l
    }

    /// Look up an already-interned label without inserting.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.ids.get(name).copied()
    }

    /// The original string for `label`, if it came from this interner.
    pub fn name(&self, label: Label) -> Option<&str> {
        self.names.get(label.index()).map(String::as_str)
    }

    /// Resolve a label to a printable string (falls back to the raw id).
    pub fn display(&self, label: Label) -> String {
        self.name(label)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("L{}", label.0))
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(Label, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = LabelInterner::new();
        let c1 = it.intern("C");
        let o = it.intern("O");
        let c2 = it.intern("C");
        assert_eq!(c1, c2);
        assert_ne!(c1, o);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn name_round_trips() {
        let mut it = LabelInterner::new();
        let n = it.intern("N");
        assert_eq!(it.name(n), Some("N"));
        assert_eq!(it.get("N"), Some(n));
        assert_eq!(it.get("P"), None);
        assert_eq!(it.display(Label(99)), "L99");
    }

    #[test]
    fn edge_label_is_unordered() {
        let a = Label(3);
        let b = Label(7);
        assert_eq!(EdgeLabel::new(a, b), EdgeLabel::new(b, a));
        assert_eq!(EdgeLabel::new(a, b).0, a);
    }

    #[test]
    fn iter_returns_in_id_order() {
        let mut it = LabelInterner::new();
        it.intern("C");
        it.intern("N");
        let v: Vec<_> = it.iter().map(|(l, n)| (l.0, n.to_owned())).collect();
        assert_eq!(v, vec![(0, "C".to_owned()), (1, "N".to_owned())]);
    }
}
