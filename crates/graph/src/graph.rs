//! The core labeled, undirected, simple graph type.
//!
//! Per the paper (§2): data graphs and visual subgraph queries are
//! *undirected simple graphs with labeled vertices*, connected, with at
//! least one edge; the size of a graph is its number of edges, `|G| = |E|`.

use crate::invariants::InvariantViolation;
use crate::labels::{EdgeLabel, Label};
use std::fmt;

/// Index of a vertex within a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Raw index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of an edge within a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Raw index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected edge, stored with `u <= v` normalisation for simple-graph
/// duplicate detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
}

impl Edge {
    fn new(a: VertexId, b: VertexId) -> Self {
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Given one endpoint, return the other.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            self.u
        }
    }
}

/// Errors from graph mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// Self-loops are not allowed in simple graphs.
    SelfLoop,
    /// The edge already exists (simple graph).
    DuplicateEdge,
    /// A vertex id was out of range.
    InvalidVertex,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop => write!(f, "self-loops are not allowed"),
            GraphError::DuplicateEdge => write!(f, "edge already exists"),
            GraphError::InvalidVertex => write!(f, "vertex id out of range"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A labeled, undirected, simple graph.
///
/// Vertices carry a [`Label`]; edge labels are derived from endpoint labels
/// (see [`EdgeLabel`]). Vertex and edge ids are dense indices.
#[derive(Clone, Default)]
pub struct Graph {
    labels: Vec<Label>,
    adj: Vec<Vec<(VertexId, EdgeId)>>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty graph with vertex capacity reserved.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        Graph {
            labels: Vec::with_capacity(vertices),
            adj: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Add a vertex with `label`, returning its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId(self.labels.len() as u32);
        self.labels.push(label);
        self.adj.push(Vec::new());
        id
    }

    /// Add an undirected edge between `a` and `b`.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) -> Result<EdgeId, GraphError> {
        if a.index() >= self.labels.len() || b.index() >= self.labels.len() {
            return Err(GraphError::InvalidVertex);
        }
        if a == b {
            return Err(GraphError::SelfLoop);
        }
        if self.has_edge(a, b) {
            return Err(GraphError::DuplicateEdge);
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge::new(a, b));
        self.adj[a.index()].push((b, id));
        self.adj[b.index()].push((a, id));
        Ok(id)
    }

    /// Add an edge if absent; returns the edge id either way.
    pub fn ensure_edge(&mut self, a: VertexId, b: VertexId) -> Result<EdgeId, GraphError> {
        if let Some(e) = self.find_edge(a, b) {
            return Ok(e);
        }
        self.add_edge(a, b)
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges. The paper defines the *size* of a graph as `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The paper's `|G|`: the number of edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.edge_count()
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v.index()]
    }

    /// All vertex labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Neighbors of `v` with the connecting edge ids.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// Iterate over vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.labels.len() as u32).map(VertexId)
    }

    /// Iterate over edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &e)| (EdgeId(i as u32), e))
    }

    /// The edge with id `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.index()]
    }

    /// Whether an edge between `a` and `b` exists.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.find_edge(a, b).is_some()
    }

    /// Find the id of the edge between `a` and `b`, if present.
    pub fn find_edge(&self, a: VertexId, b: VertexId) -> Option<EdgeId> {
        if a.index() >= self.adj.len() || b.index() >= self.adj.len() {
            return None;
        }
        // Scan the smaller adjacency list.
        let (x, y) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[x.index()]
            .iter()
            .find(|&&(n, _)| n == y)
            .map(|&(_, e)| e)
    }

    /// The derived label of edge `e` (unordered endpoint label pair).
    pub fn edge_label(&self, e: EdgeId) -> EdgeLabel {
        let Edge { u, v } = self.edges[e.index()];
        EdgeLabel::new(self.label(u), self.label(v))
    }

    /// Distinct edge labels appearing in the graph, sorted.
    pub fn edge_label_set(&self) -> Vec<EdgeLabel> {
        let mut ls = self.sorted_edge_labels();
        ls.dedup();
        ls
    }

    /// Sorted edge-label *multiset* (duplicates kept, unlike
    /// [`Graph::edge_label_set`]). The size of the multiset intersection of
    /// two graphs' sorted edge labels is an upper bound on their common
    /// subgraph size, since any common edge must carry a shared edge label.
    pub fn sorted_edge_labels(&self) -> Vec<EdgeLabel> {
        let mut ls: Vec<EdgeLabel> = self.edges().map(|(e, _)| self.edge_label(e)).collect();
        ls.sort_unstable();
        ls
    }

    /// Graph density `ρ = 2|E| / (|V| (|V|-1))`; 0 for graphs with < 2 vertices.
    pub fn density(&self) -> f64 {
        let n = self.vertex_count();
        if n < 2 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / (n as f64 * (n as f64 - 1.0))
    }

    /// Sorted vertex-label multiset (an isomorphism invariant).
    pub fn sorted_labels(&self) -> Vec<Label> {
        let mut v = self.labels.clone();
        v.sort_unstable();
        v
    }

    /// Sorted degree sequence (an isomorphism invariant).
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.vertex_count())
            .map(|i| self.adj[i].len())
            .collect();
        v.sort_unstable();
        v
    }

    /// A cheap isomorphism-invariant signature used to bucket graphs before
    /// expensive isomorphism tests: `(|V|, |E|, label multiset hash, degree
    /// sequence hash)`.
    pub fn invariant_signature(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.vertex_count().hash(&mut h);
        self.edge_count().hash(&mut h);
        for l in self.sorted_labels() {
            l.0.hash(&mut h);
        }
        for d in self.degree_sequence() {
            d.hash(&mut h);
        }
        // Per-vertex (label, degree) pairs, sorted: stronger than the two
        // independent sequences.
        let mut ld: Vec<(Label, usize)> = self
            .vertices()
            .map(|v| (self.label(v), self.degree(v)))
            .collect();
        ld.sort_unstable();
        for (l, d) in ld {
            l.0.hash(&mut h);
            d.hash(&mut h);
        }
        h.finish()
    }

    /// Build the subgraph induced by `vertices` (edges among them only).
    /// Returns the subgraph and the mapping old id → new id.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (Graph, Vec<Option<VertexId>>) {
        let mut map: Vec<Option<VertexId>> = vec![None; self.vertex_count()];
        let mut g = Graph::with_capacity(vertices.len(), vertices.len());
        for &v in vertices {
            map[v.index()] = Some(g.add_vertex(self.label(v)));
        }
        for (_, e) in self.edges() {
            if let (Some(nu), Some(nv)) = (map[e.u.index()], map[e.v.index()]) {
                // A simple graph visits each vertex pair once, so the new
                // edge cannot collide.
                #[allow(clippy::expect_used)]
                g.add_edge(nu, nv).expect("induced edges are unique");
            }
        }
        crate::debug_invariants!(g.validate());
        (g, map)
    }

    /// Build the subgraph formed by `edge_ids` (and their endpoints).
    pub fn subgraph_from_edges(&self, edge_ids: &[EdgeId]) -> Graph {
        let mut map: Vec<Option<VertexId>> = vec![None; self.vertex_count()];
        let mut g = Graph::new();
        for &eid in edge_ids {
            let e = self.edge(eid);
            let mut intern = |x: VertexId, g: &mut Graph| match map[x.index()] {
                Some(id) => id,
                None => {
                    let id = g.add_vertex(self.label(x));
                    map[x.index()] = Some(id);
                    id
                }
            };
            let nu = intern(e.u, &mut g);
            let nv = intern(e.v, &mut g);
            let _ = g.add_edge(nu, nv);
        }
        crate::debug_invariants!(g.validate());
        g
    }

    /// Construct a graph from vertex labels and endpoint index pairs.
    ///
    /// Convenience for tests and fixture graphs; panics on invalid input.
    pub fn from_parts(labels: &[Label], edges: &[(u32, u32)]) -> Graph {
        let mut g = Graph::with_capacity(labels.len(), edges.len());
        for &l in labels {
            g.add_vertex(l);
        }
        for &(a, b) in edges {
            // Documented contract: fixture input must be valid, and the
            // panic is this constructor's advertised failure mode.
            #[allow(clippy::expect_used)]
            g.add_edge(VertexId(a), VertexId(b))
                .expect("valid fixture edge");
        }
        crate::debug_invariants!(g.validate());
        g
    }

    /// Check every structural invariant of the representation:
    ///
    /// * the label table and the adjacency table agree on `|V|`;
    /// * every edge's endpoints are in bounds, distinct (no self-loops),
    ///   and normalised `u <= v`;
    /// * no duplicate undirected edges;
    /// * adjacency symmetry: `(w, e)` in `adj[v]` iff `(v, e)` in
    ///   `adj[w]`, each adjacency entry agrees with the edge table, and
    ///   every edge is incident to exactly its two endpoints.
    ///
    /// `Ok(())` on a well-formed graph; a described [`InvariantViolation`]
    /// on the first inconsistency found. Run automatically at composite
    /// mutation sites via [`crate::debug_invariants!`].
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        let n = self.labels.len();
        if self.adj.len() != n {
            return Err(InvariantViolation::new(format!(
                "label table has {n} entries but adjacency table has {}",
                self.adj.len()
            )));
        }
        let mut seen_pairs = std::collections::HashSet::with_capacity(self.edges.len());
        for (i, e) in self.edges.iter().enumerate() {
            if e.u.index() >= n || e.v.index() >= n {
                return Err(InvariantViolation::new(format!(
                    "edge {i} ({:?}-{:?}) has an endpoint out of bounds (|V| = {n})",
                    e.u, e.v
                )));
            }
            if e.u == e.v {
                return Err(InvariantViolation::new(format!(
                    "edge {i} is a self-loop on {:?}",
                    e.u
                )));
            }
            if e.u > e.v {
                return Err(InvariantViolation::new(format!(
                    "edge {i} ({:?}-{:?}) is not endpoint-normalised",
                    e.u, e.v
                )));
            }
            if !seen_pairs.insert((e.u, e.v)) {
                return Err(InvariantViolation::new(format!(
                    "duplicate undirected edge {i} ({:?}-{:?})",
                    e.u, e.v
                )));
            }
        }
        let mut incidence = vec![0usize; self.edges.len()];
        for v in 0..n {
            let vid = VertexId(v as u32);
            let mut local = std::collections::HashSet::with_capacity(self.adj[v].len());
            for &(w, eid) in &self.adj[v] {
                if w.index() >= n {
                    return Err(InvariantViolation::new(format!(
                        "adjacency of {vid:?} references out-of-bounds vertex {w:?}"
                    )));
                }
                let Some(&edge) = self.edges.get(eid.index()) else {
                    return Err(InvariantViolation::new(format!(
                        "adjacency of {vid:?} references out-of-bounds edge {eid:?}"
                    )));
                };
                if Edge::new(vid, w) != edge {
                    return Err(InvariantViolation::new(format!(
                        "adjacency entry ({vid:?}, {w:?}) disagrees with edge table entry \
                         {eid:?} = {:?}-{:?}",
                        edge.u, edge.v
                    )));
                }
                if !local.insert(w) {
                    return Err(InvariantViolation::new(format!(
                        "vertex {vid:?} lists neighbor {w:?} twice"
                    )));
                }
                incidence[eid.index()] += 1;
                if !self.adj[w.index()]
                    .iter()
                    .any(|&(x, xe)| x == vid && xe == eid)
                {
                    return Err(InvariantViolation::new(format!(
                        "asymmetric adjacency: {vid:?} lists ({w:?}, {eid:?}) but \
                         {w:?} does not list {vid:?}"
                    )));
                }
            }
        }
        if let Some(missing) = incidence.iter().position(|&c| c != 2) {
            return Err(InvariantViolation::new(format!(
                "edge e{missing} appears {} times in adjacency lists (expected 2)",
                incidence[missing]
            )));
        }
        Ok(())
    }

    /// Corruption helpers for invariant-validator tests. Each method
    /// deliberately breaks one representation invariant that
    /// [`Graph::validate`] must detect. Hidden from docs: test-only API.
    #[doc(hidden)]
    pub fn corrupt_for_test(&mut self, kind: CorruptionKind) {
        match kind {
            CorruptionKind::AsymmetricAdjacency => {
                // Drop the reverse adjacency entry of the first edge.
                if let Some(&Edge { u, v }) = self.edges.first() {
                    self.adj[v.index()].retain(|&(w, _)| w != u);
                }
            }
            CorruptionKind::EdgeOutOfBounds => {
                let n = self.labels.len() as u32;
                if let Some(e) = self.edges.first_mut() {
                    e.v = VertexId(n + 7);
                }
            }
            CorruptionKind::DuplicateEdge => {
                if let Some(&e) = self.edges.first() {
                    self.edges.push(e);
                }
            }
            CorruptionKind::LabelTableMismatch => {
                self.labels.pop();
            }
        }
    }
}

/// Which invariant [`Graph::corrupt_for_test`] breaks.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Remove one direction of an edge's adjacency entries.
    AsymmetricAdjacency,
    /// Point an edge endpoint past the vertex table.
    EdgeOutOfBounds,
    /// Append a second copy of an existing edge.
    DuplicateEdge,
    /// Shrink the label table below the adjacency table.
    LabelTableMismatch,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(|V|={}, |E|={}; V=[",
            self.vertex_count(),
            self.edge_count()
        )?;
        for v in self.vertices() {
            write!(f, "{}:{} ", v.0, self.label(v).0)?;
        }
        write!(f, "], E=[")?;
        for (_, e) in self.edges() {
            write!(f, "{}-{} ", e.u.0, e.v.0)?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u32) -> Label {
        Label(x)
    }

    #[test]
    fn build_triangle() {
        let g = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.size(), 3);
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_self_loop_and_duplicate() {
        let mut g = Graph::new();
        let a = g.add_vertex(l(0));
        let b = g.add_vertex(l(1));
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop));
        g.add_edge(a, b).unwrap();
        assert_eq!(g.add_edge(b, a), Err(GraphError::DuplicateEdge));
        assert_eq!(g.add_edge(a, VertexId(9)), Err(GraphError::InvalidVertex));
    }

    #[test]
    fn edge_label_is_sorted_pair() {
        let g = Graph::from_parts(&[l(5), l(2)], &[(0, 1)]);
        let el = g.edge_label(EdgeId(0));
        assert_eq!(el, EdgeLabel::new(l(2), l(5)));
        assert_eq!(el.0, l(2));
    }

    #[test]
    fn induced_subgraph_keeps_inner_edges() {
        // path 0-1-2-3 plus chord 0-2
        let g = Graph::from_parts(&[l(0); 4], &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let (s, map) = g.induced_subgraph(&[VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(s.vertex_count(), 3);
        assert_eq!(s.edge_count(), 3); // 0-1, 1-2, 0-2
        assert!(map[3].is_none());
    }

    #[test]
    fn subgraph_from_edges_collects_endpoints() {
        let g = Graph::from_parts(&[l(0), l(1), l(2), l(3)], &[(0, 1), (1, 2), (2, 3)]);
        let s = g.subgraph_from_edges(&[EdgeId(0), EdgeId(2)]);
        assert_eq!(s.vertex_count(), 4);
        assert_eq!(s.edge_count(), 2);
    }

    #[test]
    fn invariant_signature_is_permutation_invariant() {
        let g1 = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2)]);
        let g2 = Graph::from_parts(&[l(2), l(1), l(0)], &[(2, 1), (1, 0)]);
        assert_eq!(g1.invariant_signature(), g2.invariant_signature());
        let g3 = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (0, 2)]);
        // Different structure: center label differs in (label, degree) pairs.
        assert_ne!(g1.invariant_signature(), g3.invariant_signature());
    }

    #[test]
    fn density_of_path() {
        let g = Graph::from_parts(&[l(0); 4], &[(0, 1), (1, 2), (2, 3)]);
        assert!((g.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_well_formed_graphs() {
        assert_eq!(Graph::new().validate(), Ok(()));
        let g = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_each_seeded_corruption() {
        for kind in [
            CorruptionKind::AsymmetricAdjacency,
            CorruptionKind::EdgeOutOfBounds,
            CorruptionKind::DuplicateEdge,
            CorruptionKind::LabelTableMismatch,
        ] {
            let mut g = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2)]);
            g.corrupt_for_test(kind);
            assert!(
                g.validate().is_err(),
                "validate() accepted a graph corrupted with {kind:?}"
            );
        }
    }

    #[test]
    fn validate_reports_non_normalised_edges() {
        let mut g = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        // Swap the stored endpoints: still symmetric, but un-normalised.
        g.edges[0] = Edge {
            u: VertexId(1),
            v: VertexId(0),
        };
        let err = g.validate().expect_err("must reject unsorted endpoints");
        assert!(err.message().contains("normalised"), "got: {err}");
    }

    #[test]
    fn edge_label_set_dedups() {
        let g = Graph::from_parts(&[l(0), l(1), l(1), l(1)], &[(0, 1), (2, 3), (1, 2)]);
        // labels: (0,1), (1,1), (1,1) → two distinct
        assert_eq!(g.edge_label_set().len(), 2);
    }
}
