//! Shared execution budgets for the NP-hard search kernels.
//!
//! Every stage of the CATAPULT pipeline leans on worst-case-exponential
//! searches — subgraph isomorphism ([`crate::iso`]), MCS/MCCS
//! ([`crate::mcs`]), GED ([`crate::ged`]) and the frequent-pattern miners
//! built on top of them. Production use (the plug-and-play setting of
//! arXiv:2107.09952) requires those searches to be *bounded* and their
//! degradation to be *explicit*: a search that stops early must say so, and
//! must still hand back the best solution it found.
//!
//! This module is that mechanism:
//!
//! * [`SearchBudget`] — one budget type for every kernel: a node-expansion
//!   cap, an optional wall-clock [`Deadline`] (checked every
//!   [`SearchBudget::check_every`] expansions, so the fast path stays a
//!   counter compare), and an optional cooperative [`CancelToken`].
//! * [`Completeness`] — why a search stopped: [`Completeness::Exact`] (the
//!   search space was exhausted / the caller got everything it asked for),
//!   or one of the degraded outcomes. Kernels *always* return best-so-far
//!   results tagged with this value; nothing is silently truncated.
//! * [`BudgetMeter`] — the per-search instrument: `tick()` once per
//!   expansion, stop when it returns `true`, report `status()` to callers.
//! * [`Tally`] / [`TallyCounts`] — thread-safe accumulation of completeness
//!   tags across many kernel calls, feeding the pipeline-level report.
//! * [`fault`] (behind the `fault-injection` feature) — a deterministic
//!   harness that forces exhaustion / deadline / cancellation at the K-th
//!   kernel invocation, so graceful degradation is testable.
//!
//! The budget is also the carrier for kernel **observability**: a
//! [`StageProbe`] (from `catapult-obs`) stamped onto a [`SearchBudget`]
//! rides into every meter, which accumulates probes / budget checks /
//! improvements as plain integers and flushes them into the stage's
//! `stage.kernel.metric` counters exactly once, when it drops. A
//! default (disabled) probe costs nothing.

pub use catapult_obs::{Kernel, KernelMeasurement, StageProbe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted search stopped.
///
/// Ordered by severity: [`Completeness::Exact`] is best; the degraded
/// variants compare greater, so "worst over many calls" is simply `max`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Completeness {
    /// The search space was exhausted, or the caller stopped the search on
    /// purpose (embedding cap reached, callback returned `Break`). The
    /// result answers exactly what was asked.
    #[default]
    Exact,
    /// The node-expansion cap was hit; the result is the best found so far
    /// (a lower bound for maximization problems such as MCS, an upper
    /// bound for minimization problems such as GED).
    BudgetExhausted,
    /// The wall-clock [`Deadline`] passed; best-so-far result.
    DeadlineExceeded,
    /// The [`CancelToken`] was triggered; best-so-far result.
    Cancelled,
    /// The work item never produced a result at all: its worker panicked
    /// and the supervised executor (`--keep-going`) isolated the panic,
    /// substituting a panic-free fallback value. The most severe tag —
    /// unlike the budget variants there is no best-so-far result behind
    /// it.
    Degraded,
}

impl Completeness {
    /// Whether the result is exact (not degraded).
    pub fn is_exact(self) -> bool {
        self == Completeness::Exact
    }

    /// The worse (more degraded) of two outcomes.
    pub fn worst(self, other: Completeness) -> Completeness {
        self.max(other)
    }

    /// Short human-readable name (used by reports and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            Completeness::Exact => "exact",
            Completeness::BudgetExhausted => "budget-exhausted",
            Completeness::DeadlineExceeded => "deadline-exceeded",
            Completeness::Cancelled => "cancelled",
            Completeness::Degraded => "degraded",
        }
    }
}

/// A wall-clock point in time after which budgeted searches stop.
///
/// Carries its creation instant so observers can report *headroom*
/// ([`Deadline::remaining`]) and *burn* ([`Deadline::elapsed`]) instead
/// of only expired / not-expired. Equality compares the target instant
/// only — two deadlines for the same cutoff are the same deadline,
/// whenever each was constructed ([`SearchBudget::overlay`] relies on
/// this when it re-wraps the earlier of two instants).
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Instant,
    created: Instant,
}

impl PartialEq for Deadline {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}

impl Eq for Deadline {}

impl Deadline {
    /// Deadline `d` from now.
    pub fn from_now(d: Duration) -> Self {
        let now = catapult_obs::now();
        Deadline {
            at: now + d,
            created: now,
        }
    }

    /// Deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline {
            at: instant,
            created: catapult_obs::now(),
        }
    }

    /// The underlying instant.
    pub fn instant(self) -> Instant {
        self.at
    }

    /// Whether the deadline has passed.
    pub fn expired(self) -> bool {
        // xtask-allow: taint -- deadline checks gate interruption only; an interrupted run checkpoints and resumes, it never silently diverges
        catapult_obs::now() >= self.at
    }

    /// Wall time since this deadline was created.
    pub fn elapsed(self) -> Duration {
        catapult_obs::now().saturating_duration_since(self.created)
    }

    /// Headroom left before the cutoff (zero once expired).
    pub fn remaining(self) -> Duration {
        self.at.saturating_duration_since(catapult_obs::now())
    }

    /// The total allotment this deadline was created with.
    pub fn total(self) -> Duration {
        self.at.saturating_duration_since(self.created)
    }
}

/// A cheap, cloneable cooperative cancellation flag.
///
/// Clones share one flag: `cancel()` on any clone is observed by every
/// search holding another clone (checked every
/// [`SearchBudget::check_every`] expansions).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the flag; all searches sharing this token stop at their next
    /// check point and report [`Completeness::Cancelled`].
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// How many expansions pass between wall-clock / cancellation checks by
/// default. The node-cap check runs on every expansion regardless.
pub const DEFAULT_CHECK_EVERY: u64 = 1024;

/// The unified execution budget accepted by every NP-hard kernel.
///
/// Three independent limits, all optional:
///
/// * `node_cap` — maximum backtracking-node expansions (deterministic;
///   `u64::MAX` means "use the call site's stage default", see
///   [`SearchBudget::with_default_cap`]);
/// * `deadline` — wall-clock cutoff, polled every `check_every` expansions;
/// * `cancel` — cooperative cancellation, polled on the same cadence.
///
/// Whichever trips first determines the [`Completeness`] tag of the result.
/// A plain node count converts directly: `SearchBudget::from(50_000u64)`.
#[derive(Clone, Debug, Default)]
pub struct SearchBudget {
    /// Node-expansion cap (`u64::MAX` = defer to the stage default).
    pub node_cap: u64,
    /// Optional wall-clock cutoff.
    pub deadline: Option<Deadline>,
    /// Optional cooperative cancellation flag.
    pub cancel: Option<CancelToken>,
    /// Expansions between deadline / cancellation polls (0 behaves as 1).
    pub check_every: u64,
    /// Kernel observability probe (disabled by default; stamped per
    /// stage by the pipeline so kernel effort lands in
    /// `stage.kernel.metric` counters).
    pub probe: StageProbe,
}

impl SearchBudget {
    /// An unbounded budget: no cap of its own (call sites substitute their
    /// stage default), no deadline, no cancellation.
    pub fn unbounded() -> Self {
        SearchBudget {
            node_cap: u64::MAX,
            deadline: None,
            cancel: None,
            check_every: DEFAULT_CHECK_EVERY,
            probe: StageProbe::default(),
        }
    }

    /// A budget with only a node-expansion cap.
    pub fn nodes(cap: u64) -> Self {
        SearchBudget {
            node_cap: cap,
            ..Self::unbounded()
        }
    }

    /// Attach a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Set the deadline / cancellation polling cadence.
    pub fn with_check_every(mut self, every: u64) -> Self {
        self.check_every = every;
        self
    }

    /// Stamp a stage observability probe onto the budget; every kernel
    /// metered under it flushes its counters into the probe's stage.
    pub fn with_probe(mut self, probe: StageProbe) -> Self {
        self.probe = probe;
        self
    }

    /// Resolve the node cap against a stage default: an explicit cap wins;
    /// an unset cap (`u64::MAX`) becomes `default_cap`. Deadline and
    /// cancellation carry over unchanged.
    ///
    /// This is how one user-facing budget (e.g. `--search-budget`) flows
    /// through stages that each have their own sensible cap.
    pub fn with_default_cap(&self, default_cap: u64) -> SearchBudget {
        let mut b = self.clone();
        if b.node_cap == u64::MAX {
            b.node_cap = default_cap;
        }
        b
    }

    /// Combine this budget (the override) with a base budget: the override
    /// cap wins when set, the *earlier* deadline applies, and the override
    /// token wins when present.
    pub fn overlay(&self, base: &SearchBudget) -> SearchBudget {
        SearchBudget {
            node_cap: if self.node_cap != u64::MAX {
                self.node_cap
            } else {
                base.node_cap
            },
            deadline: match (self.deadline, base.deadline) {
                // Keep the whole earlier deadline (not just its instant)
                // so creation time — and thus elapsed()/remaining()
                // reporting — survives the merge.
                (Some(a), Some(b)) => Some(if a.instant() <= b.instant() { a } else { b }),
                (a, b) => a.or(b),
            },
            cancel: self.cancel.clone().or_else(|| base.cancel.clone()),
            check_every: self.check_every.min(base.check_every).max(1),
            probe: if self.probe.is_enabled() {
                self.probe.clone()
            } else {
                base.probe.clone()
            },
        }
    }

    /// Whether the budget's asynchronous limits have already tripped (an
    /// expired deadline or a cancelled token). Used by coarse-grained loops
    /// (mining levels, greedy selection rounds) to stop *between* kernel
    /// calls; the node cap is per-search and is not consulted here.
    pub fn interrupted(&self) -> Option<Completeness> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Some(Completeness::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if d.expired() {
                return Some(Completeness::DeadlineExceeded);
            }
        }
        None
    }
}

impl From<u64> for SearchBudget {
    /// A bare number is a node-expansion cap (the legacy `node_budget`
    /// calling convention).
    fn from(cap: u64) -> Self {
        SearchBudget::nodes(cap)
    }
}

impl From<&SearchBudget> for SearchBudget {
    fn from(b: &SearchBudget) -> Self {
        b.clone()
    }
}

/// Per-search budget instrument.
///
/// Create one from a [`SearchBudget`] at search start, call
/// [`BudgetMeter::tick`] once per node expansion, and stop unwinding when
/// it returns `true`. [`BudgetMeter::status`] then reports why.
///
/// The fast path is one increment and one compare; deadline and
/// cancellation polls run on the `check_every` cadence (and once on the
/// very first expansion, so pre-expired deadlines stop searches promptly).
///
/// The meter doubles as the kernel's observability accumulator: probes,
/// signal checks, and best-so-far improvements are counted as plain
/// integers and flushed into the budget's [`StageProbe`] exactly once —
/// on drop — so instrumentation adds no atomics to the search loop and
/// totals stay deterministic under any worker interleaving.
#[derive(Debug)]
pub struct BudgetMeter {
    nodes: u64,
    node_cap: u64,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    check_every: u64,
    status: Completeness,
    kernel: Kernel,
    checks: u64,
    improved: u64,
    probe: StageProbe,
}

impl BudgetMeter {
    /// Instrument one `kernel` search under `budget`.
    ///
    /// With the `fault-injection` feature enabled this is also the kernel
    /// invocation counter the [`fault`] harness keys on.
    pub fn new(budget: &SearchBudget, kernel: Kernel) -> Self {
        #[allow(unused_mut)]
        let mut m = BudgetMeter {
            nodes: 0,
            node_cap: budget.node_cap,
            deadline: budget.deadline.map(Deadline::instant),
            cancel: budget.cancel.clone(),
            check_every: budget.check_every.max(1),
            status: Completeness::Exact,
            kernel,
            checks: 0,
            improved: 0,
            probe: budget.probe.clone(),
        };
        #[cfg(feature = "fault-injection")]
        fault::arm(&mut m);
        m
    }

    /// Record one node expansion. Returns `true` when the search must stop;
    /// the reason is available from [`BudgetMeter::status`].
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.nodes += 1;
        if self.nodes > self.node_cap {
            self.status = Completeness::BudgetExhausted;
            return true;
        }
        if (self.nodes == 1 || self.nodes.is_multiple_of(self.check_every)) && self.check_signals()
        {
            return true;
        }
        false
    }

    #[cold]
    fn check_signals(&mut self) -> bool {
        self.checks += 1;
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                self.status = Completeness::Cancelled;
                return true;
            }
        }
        if let Some(d) = self.deadline {
            // xtask-allow: taint -- deadline trip gates interruption only and is recorded as Completeness::DeadlineExceeded, never silent
            if catapult_obs::now() >= d {
                self.status = Completeness::DeadlineExceeded;
                return true;
            }
        }
        false
    }

    /// Why the search stopped ([`Completeness::Exact`] while it is still
    /// running or when it ran to completion).
    pub fn status(&self) -> Completeness {
        self.status
    }

    /// Whether a limit has tripped.
    pub fn tripped(&self) -> bool {
        self.status != Completeness::Exact
    }

    /// Expansions recorded so far.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Deadline / cancellation polls performed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Record a best-so-far improvement (embedding reported, bound
    /// tightened) for the stage's `improved` counter.
    #[inline]
    pub fn note_improvement(&mut self) {
        self.improved += 1;
    }

    /// Reset a tripped limit back to [`Completeness::Exact`]: the caller
    /// proved its best-so-far optimal (e.g. an a-priori upper bound was
    /// met), so the answer is exact no matter why expansion stopped. The
    /// Drop-flushed `exact`/`degraded` counters follow the corrected tag.
    pub fn note_proven_exact(&mut self) {
        self.status = Completeness::Exact;
    }
}

impl Drop for BudgetMeter {
    fn drop(&mut self) {
        // Single flush per kernel invocation; a disabled probe makes
        // this a branch on `None`.
        self.probe.flush(
            self.kernel,
            KernelMeasurement {
                probes: self.nodes,
                checks: self.checks,
                improved: self.improved,
                exact: self.status.is_exact(),
            },
        );
    }
}

/// Thread-safe accumulator of [`Completeness`] tags across kernel calls.
///
/// Kernels run from `rayon` parallel loops throughout the pipeline (the
/// shim executor really does fan out over `std::thread::scope` workers),
/// so the counters are atomic; share a `Tally` by reference and snapshot
/// it with [`Tally::counts`] when the stage finishes.
///
/// Recording is **commutative and associative**: each tag is an
/// independent `fetch_add`, so the snapshot is identical no matter how
/// worker threads interleave their `record` calls — this is what keeps
/// [`TallyCounts`] byte-identical across thread counts. Per-thread
/// [`TallyCounts`] accumulators folded with [`TallyCounts::merge`] give
/// the same result for every fold order.
#[derive(Debug, Default)]
pub struct Tally {
    exact: AtomicU64,
    budget_exhausted: AtomicU64,
    deadline_exceeded: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
}

impl Tally {
    /// A fresh, all-zero tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one kernel outcome.
    pub fn record(&self, c: Completeness) {
        let counter = match c {
            Completeness::Exact => &self.exact,
            Completeness::BudgetExhausted => &self.budget_exhausted,
            Completeness::DeadlineExceeded => &self.deadline_exceeded,
            Completeness::Cancelled => &self.cancelled,
            Completeness::Degraded => &self.failed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counts.
    pub fn counts(&self) -> TallyCounts {
        TallyCounts {
            exact: self.exact.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of kernel-call outcomes for one pipeline stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TallyCounts {
    /// Calls that ran to an exact answer.
    pub exact: u64,
    /// Calls stopped by the node-expansion cap.
    pub budget_exhausted: u64,
    /// Calls stopped by the wall-clock deadline.
    pub deadline_exceeded: u64,
    /// Calls stopped by cancellation.
    pub cancelled: u64,
    /// Calls whose worker panicked and was isolated by the supervised
    /// executor (tagged [`Completeness::Degraded`]); their results are
    /// panic-free fallback values, not truncated searches.
    pub failed: u64,
}

impl TallyCounts {
    /// Total kernel calls recorded.
    pub fn total(&self) -> u64 {
        self.exact + self.degraded()
    }

    /// Calls that returned a degraded (non-exact) result.
    pub fn degraded(&self) -> u64 {
        self.budget_exhausted + self.deadline_exceeded + self.cancelled + self.failed
    }

    /// Whether every recorded call was exact.
    pub fn all_exact(&self) -> bool {
        self.degraded() == 0
    }

    /// The worst outcome observed (Exact for an empty tally).
    pub fn worst(&self) -> Completeness {
        if self.failed > 0 {
            Completeness::Degraded
        } else if self.cancelled > 0 {
            Completeness::Cancelled
        } else if self.deadline_exceeded > 0 {
            Completeness::DeadlineExceeded
        } else if self.budget_exhausted > 0 {
            Completeness::BudgetExhausted
        } else {
            Completeness::Exact
        }
    }

    /// Element-wise sum of two snapshots.
    ///
    /// Commutative and associative (plain per-field addition), so
    /// folding per-thread snapshots produces the same totals in any
    /// merge order — parallel stages rely on this.
    pub fn merge(self, other: TallyCounts) -> TallyCounts {
        TallyCounts {
            exact: self.exact + other.exact,
            budget_exhausted: self.budget_exhausted + other.budget_exhausted,
            deadline_exceeded: self.deadline_exceeded + other.deadline_exceeded,
            cancelled: self.cancelled + other.cancelled,
            failed: self.failed + other.failed,
        }
    }

    /// Record one outcome into a non-shared snapshot (serial loops).
    pub fn record(&mut self, c: Completeness) {
        match c {
            Completeness::Exact => self.exact += 1,
            Completeness::BudgetExhausted => self.budget_exhausted += 1,
            Completeness::DeadlineExceeded => self.deadline_exceeded += 1,
            Completeness::Cancelled => self.cancelled += 1,
            Completeness::Degraded => self.failed += 1,
        }
    }
}

/// Deterministic fault injection for kernel invocations.
///
/// Every [`BudgetMeter::new`] counts as one kernel invocation; an installed
/// [`FaultPlan`] rewrites the K-th (or every ≥ K-th, when sticky) meter so
/// the search trips immediately with the planned [`Completeness`]. This
/// turns "what does the pipeline do when GED call #7 times out?" into a
/// reproducible unit test.
///
/// The plan and the invocation counter are process-global: tests that
/// install plans must serialize (e.g. behind a shared mutex) and
/// [`fault::clear`] when done.
#[cfg(feature = "fault-injection")]
pub mod fault {
    use super::{BudgetMeter, CancelToken, Completeness};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    /// Which degraded outcome to force.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FaultKind {
        /// Force [`Completeness::BudgetExhausted`] (node cap set to zero).
        Exhaust,
        /// Force [`Completeness::DeadlineExceeded`] (already-expired
        /// deadline, polled on the first expansion).
        Deadline,
        /// Force [`Completeness::Cancelled`] (pre-tripped token, polled on
        /// the first expansion).
        Cancel,
        /// Panic inside the K-th kernel invocation — the executor-layer
        /// fault. Without supervised execution the fan-out aborts (the
        /// fail-fast default); under `--keep-going` the item is isolated
        /// and tagged [`Completeness::Degraded`].
        Panic,
    }

    impl FaultKind {
        /// The completeness tag this fault produces.
        pub fn completeness(self) -> Completeness {
            match self {
                FaultKind::Exhaust => Completeness::BudgetExhausted,
                FaultKind::Deadline => Completeness::DeadlineExceeded,
                FaultKind::Cancel => Completeness::Cancelled,
                FaultKind::Panic => Completeness::Degraded,
            }
        }
    }

    /// A deterministic fault: trip the `at`-th kernel invocation
    /// (1-based) — and, when `sticky`, every later one too.
    #[derive(Clone, Copy, Debug)]
    pub struct FaultPlan {
        /// Outcome to force.
        pub kind: FaultKind,
        /// 1-based kernel-invocation index to fault.
        pub at: u64,
        /// Fault every invocation from `at` onward.
        pub sticky: bool,
    }

    static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
    static COUNTER: AtomicU64 = AtomicU64::new(0);

    fn plan_slot() -> std::sync::MutexGuard<'static, Option<FaultPlan>> {
        // A poisoned lock only means another test panicked; the plan value
        // itself is always valid.
        // xtask-allow: taint -- whole-value fault-plan slot: install/clear replace it atomically, no order-sensitive accumulation
        PLAN.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Install a plan and reset the invocation counter.
    pub fn install(plan: FaultPlan) {
        let mut slot = plan_slot();
        COUNTER.store(0, Ordering::SeqCst);
        *slot = Some(plan);
    }

    /// Remove any installed plan (the counter keeps counting).
    pub fn clear() {
        *plan_slot() = None;
    }

    /// Kernel invocations since the last [`install`].
    pub fn invocations() -> u64 {
        COUNTER.load(Ordering::SeqCst)
    }

    /// Called from [`BudgetMeter::new`]: count the invocation and, if the
    /// plan matches, rig the meter to trip on its first expansion.
    pub(super) fn arm(meter: &mut BudgetMeter) {
        let n = COUNTER.fetch_add(1, Ordering::SeqCst) + 1;
        let Some(plan) = *plan_slot() else { return };
        let hit = if plan.sticky {
            n >= plan.at
        } else {
            n == plan.at
        };
        if !hit {
            return;
        }
        match plan.kind {
            FaultKind::Exhaust => meter.node_cap = 0,
            FaultKind::Deadline => {
                // Test-only fault injection wants "already expired", not a
                // measured duration; the monotonic source is irrelevant.
                meter.deadline = Some(Instant::now()); // xtask-allow: raw-instant, taint -- test-only fault rig wants an already-expired deadline; the value is never observed
                meter.check_every = 1;
            }
            FaultKind::Cancel => {
                let token = CancelToken::new();
                token.cancel();
                meter.cancel = Some(token);
                meter.check_every = 1;
            }
            // The whole point of this fault is an uncontrolled worker
            // death; test-only (feature-gated) by construction.
            #[allow(clippy::panic)]
            FaultKind::Panic => {
                // xtask-allow: panic-reachability
                panic!("injected worker panic (fault-injection plan, kernel invocation {n})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_matches_legacy_cap_semantics() {
        // Legacy kernels did `nodes += 1; if nodes > cap { stop }`: a cap
        // of k allows exactly k expansions.
        let mut m = BudgetMeter::new(&SearchBudget::nodes(3), Kernel::Iso);
        assert!(!m.tick() && !m.tick() && !m.tick());
        assert!(m.tick());
        assert_eq!(m.status(), Completeness::BudgetExhausted);
        assert_eq!(m.nodes(), 4);
    }

    #[test]
    fn unbounded_budget_never_trips() {
        let mut m = BudgetMeter::new(&SearchBudget::unbounded(), Kernel::Iso);
        for _ in 0..10_000 {
            assert!(!m.tick());
        }
        assert_eq!(m.status(), Completeness::Exact);
    }

    #[test]
    fn expired_deadline_trips_on_first_tick() {
        let b = SearchBudget::unbounded().with_deadline(Deadline::at(Instant::now()));
        let mut m = BudgetMeter::new(&b, Kernel::Iso);
        assert!(m.tick());
        assert_eq!(m.status(), Completeness::DeadlineExceeded);
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let b =
            SearchBudget::unbounded().with_deadline(Deadline::from_now(Duration::from_secs(3600)));
        let mut m = BudgetMeter::new(&b, Kernel::Iso);
        for _ in 0..5000 {
            assert!(!m.tick());
        }
    }

    #[test]
    fn cancel_token_trips_at_checkpoint() {
        let token = CancelToken::new();
        let b = SearchBudget::unbounded()
            .with_cancel(token.clone())
            .with_check_every(8);
        let mut m = BudgetMeter::new(&b, Kernel::Iso);
        assert!(!m.tick()); // first-tick poll: not yet cancelled
        token.cancel();
        let mut tripped = false;
        for _ in 0..8 {
            if m.tick() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
        assert_eq!(m.status(), Completeness::Cancelled);
    }

    #[test]
    fn cap_takes_priority_over_later_checks() {
        let token = CancelToken::new();
        token.cancel();
        // Cap 2 with polls every 1000: the cap trips first.
        let b = SearchBudget::nodes(2)
            .with_cancel(token)
            .with_check_every(1000);
        let mut m = BudgetMeter::new(&b, Kernel::Iso);
        // Tick 1 polls signals (first tick) → cancelled immediately.
        assert!(m.tick());
        assert_eq!(m.status(), Completeness::Cancelled);
    }

    #[test]
    fn default_cap_resolution() {
        assert_eq!(
            SearchBudget::unbounded().with_default_cap(500).node_cap,
            500
        );
        assert_eq!(SearchBudget::nodes(9).with_default_cap(500).node_cap, 9);
        assert_eq!(SearchBudget::from(7u64).node_cap, 7);
    }

    #[test]
    fn overlay_prefers_override_and_earliest_deadline() {
        let early = Deadline::from_now(Duration::from_secs(1));
        let late = Deadline::from_now(Duration::from_secs(100));
        let over = SearchBudget::nodes(5).with_deadline(late);
        let base = SearchBudget::nodes(50).with_deadline(early);
        let merged = over.overlay(&base);
        assert_eq!(merged.node_cap, 5);
        assert_eq!(merged.deadline, Some(early));
        let defer = SearchBudget::unbounded().overlay(&base);
        assert_eq!(defer.node_cap, 50);
    }

    #[test]
    fn completeness_ordering_and_worst() {
        assert!(Completeness::Exact < Completeness::BudgetExhausted);
        assert!(Completeness::BudgetExhausted < Completeness::DeadlineExceeded);
        assert!(Completeness::DeadlineExceeded < Completeness::Cancelled);
        assert_eq!(
            Completeness::Exact.worst(Completeness::BudgetExhausted),
            Completeness::BudgetExhausted
        );
        assert!(Completeness::Exact.is_exact());
        assert!(!Completeness::Cancelled.is_exact());
    }

    #[test]
    fn tally_counts_and_merge() {
        let t = Tally::new();
        t.record(Completeness::Exact);
        t.record(Completeness::Exact);
        t.record(Completeness::BudgetExhausted);
        let c = t.counts();
        assert_eq!(c.total(), 3);
        assert_eq!(c.degraded(), 1);
        assert!(!c.all_exact());
        assert_eq!(c.worst(), Completeness::BudgetExhausted);
        let mut d = TallyCounts::default();
        d.record(Completeness::Cancelled);
        let m = c.merge(d);
        assert_eq!(m.total(), 4);
        assert_eq!(m.worst(), Completeness::Cancelled);
    }

    #[test]
    fn budget_plumbing_is_thread_safe() {
        // The parallel executor shares these by reference across scoped
        // worker threads; a regression away from Send + Sync (say, an
        // Rc-based token) must fail to compile — asserted here so the
        // error points at the contract, not at a distant call site.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SearchBudget>();
        assert_send_sync::<CancelToken>();
        assert_send_sync::<Deadline>();
        assert_send_sync::<Tally>();
        assert_send_sync::<TallyCounts>();
        assert_send_sync::<Completeness>();
    }

    #[test]
    fn tally_record_is_commutative_across_interleavings() {
        // Record the same multiset of tags in two different orders; the
        // snapshots must match (this is what makes the shared Tally safe
        // under arbitrary worker interleaving).
        let forward = Tally::new();
        let tags = [
            Completeness::Exact,
            Completeness::BudgetExhausted,
            Completeness::Exact,
            Completeness::Cancelled,
            Completeness::DeadlineExceeded,
        ];
        for &t in &tags {
            forward.record(t);
        }
        let backward = Tally::new();
        for &t in tags.iter().rev() {
            backward.record(t);
        }
        assert_eq!(forward.counts(), backward.counts());
    }

    #[test]
    fn deadline_accessors_report_headroom() {
        let d = Deadline::from_now(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_secs(3600));
        assert!(d.remaining() > Duration::from_secs(3590));
        assert!(d.elapsed() < Duration::from_secs(10));
        assert_eq!(d.total(), Duration::from_secs(3600));
        let expired = Deadline::at(catapult_obs::now());
        assert_eq!(expired.remaining(), Duration::ZERO);
    }

    #[test]
    fn overlay_keeps_the_earlier_deadline_whole() {
        let early = Deadline::from_now(Duration::from_secs(1));
        let late = Deadline::from_now(Duration::from_secs(100));
        let merged = SearchBudget::unbounded()
            .with_deadline(late)
            .overlay(&SearchBudget::unbounded().with_deadline(early));
        let Some(d) = merged.deadline else {
            panic!("deadline lost in overlay");
        };
        assert_eq!(d, early);
        // `total` proves the original creation instant survived, not
        // just the target instant.
        assert_eq!(d.total(), early.total());
    }

    #[test]
    fn meter_flushes_probe_counters_on_drop() {
        let rec = catapult_obs::Recorder::enabled();
        let budget = SearchBudget::nodes(5).with_probe(rec.stage_probe("scoring"));
        {
            let mut m = BudgetMeter::new(&budget, Kernel::Mcs);
            for _ in 0..3 {
                assert!(!m.tick());
            }
            m.note_improvement();
        } // drop flushes
        {
            let mut m = BudgetMeter::new(&budget, Kernel::Mcs);
            for _ in 0..6 {
                if m.tick() {
                    break;
                }
            }
            assert!(m.tripped());
        }
        assert_eq!(rec.counter("scoring.mcs.calls").get(), 2);
        assert_eq!(rec.counter("scoring.mcs.probes").get(), 9);
        assert_eq!(rec.counter("scoring.mcs.improved").get(), 1);
        assert_eq!(rec.counter("scoring.mcs.exact").get(), 1);
        assert_eq!(rec.counter("scoring.mcs.degraded").get(), 1);
        // The first tick of each meter polls signals once.
        assert_eq!(rec.counter("scoring.mcs.budget_checks").get(), 2);
    }

    #[test]
    fn overlay_prefers_enabled_probe() {
        let rec = catapult_obs::Recorder::enabled();
        let probed = SearchBudget::unbounded().with_probe(rec.stage_probe("mining"));
        let plain = SearchBudget::nodes(10);
        assert_eq!(
            plain.overlay(&probed).probe.stage(),
            Some("mining"),
            "base probe must survive overlay"
        );
        assert_eq!(probed.overlay(&plain).probe.stage(), Some("mining"));
    }

    #[test]
    fn interrupted_reports_async_limits() {
        assert_eq!(SearchBudget::nodes(1).interrupted(), None);
        let token = CancelToken::new();
        let b = SearchBudget::unbounded().with_cancel(token.clone());
        assert_eq!(b.interrupted(), None);
        token.cancel();
        assert_eq!(b.interrupted(), Some(Completeness::Cancelled));
        let expired = SearchBudget::unbounded().with_deadline(Deadline::at(Instant::now()));
        assert_eq!(expired.interrupted(), Some(Completeness::DeadlineExceeded));
    }
}
