//! Maximum common subgraph (MCS) and maximum *connected* common subgraph
//! (MCCS), per §2 of the paper.
//!
//! Implemented as McGregor-style backtracking [27]: vertices of the smaller
//! graph are decided in a fixed order — mapped to a label-compatible unused
//! vertex of the other graph, or skipped — while an upper bound on the
//! number of still-achievable common edges prunes the search. For MCCS, the
//! largest connected component of each improving common-edge subgraph is
//! taken (every connected common subgraph appears as a sub-solution of some
//! branch, so the enumeration is exhaustive).
//!
//! Both problems are NP-complete [36]; a configurable [`SearchBudget`]
//! bounds the pathological worst case, falling back to the best solution
//! found so far and tagging the result with why the search stopped
//! ([`McsResult::completeness`]), mirroring the budgeted McGregor
//! implementations benchmarked in [13]. A degraded result is a *lower
//! bound* on the true common-subgraph size.

use crate::bitadj::BitAdjacency;
use crate::budget::{BudgetMeter, Completeness, Kernel, SearchBudget};
use crate::graph::{Graph, VertexId};
use crate::labels::Label;

/// Default backtracking-node cap for MCS/MCCS searches.
pub const DEFAULT_NODE_CAP: u64 = 500_000;

/// Configuration for an MCS/MCCS computation.
#[derive(Clone, Debug)]
pub struct McsConfig {
    /// Require the common subgraph to be connected (MCCS, [36]).
    pub connected: bool,
    /// Execution budget; on a tripped limit the search stops with the best
    /// common subgraph found so far (a lower bound on the true MCS).
    pub budget: SearchBudget,
    /// Use the edge-label-multiset upper bound to prune and short-circuit
    /// the search (on by default, and always sound — a pruned search that
    /// meets the bound is provably optimal, hence still *Exact*). Turning
    /// it off reproduces the reference unpruned search; the
    /// kernel-equivalence suite and the kernel benchmark's before/after
    /// comparison rely on that.
    pub pruning: bool,
}

impl Default for McsConfig {
    fn default() -> Self {
        McsConfig {
            connected: false,
            budget: SearchBudget::nodes(DEFAULT_NODE_CAP),
            pruning: true,
        }
    }
}

impl McsConfig {
    /// Config for a maximum connected common subgraph computation.
    pub fn connected() -> Self {
        McsConfig {
            connected: true,
            ..Self::default()
        }
    }
}

/// Result of an MCS/MCCS computation.
#[derive(Clone, Debug)]
pub struct McsResult {
    /// Matched vertex pairs `(v in g1, v in g2)`.
    pub pairs: Vec<(VertexId, VertexId)>,
    /// Size of the common subgraph in edges (the paper's `|G|`).
    pub edges: usize,
    /// Why the search stopped. Non-exact results are the best common
    /// subgraph found before the budget tripped — a valid common subgraph
    /// and a lower bound on the true MCS size.
    pub completeness: Completeness,
}

impl McsResult {
    /// Whether the search space was exhausted (the result is the true MCS).
    pub fn is_exact(&self) -> bool {
        self.completeness.is_exact()
    }
}

/// Incremental largest-common-component tracker for the MCCS search: a
/// union-find over the decided graph's vertices with union-by-rank, **no
/// path compression**, and an undo stack, so every `link` can be rolled
/// back in O(1) when the search backtracks. Each component root carries
/// its common-edge count; `max_edges` is the running size of the largest
/// component, which turns the per-leaf "did the connected best improve?"
/// question from an O(k²) component sweep into an O(1) comparison. The
/// actual component extraction (pairs, BFS order) still goes through
/// [`largest_common_component`] on the rare improving leaf, so recorded
/// results stay byte-identical to the unoptimized search.
struct CcForest {
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// Common-edge count of the component, valid at roots only.
    edges: Vec<usize>,
    max_edges: usize,
    undo: Vec<CcUndo>,
}

enum CcUndo {
    /// An intra-component edge was counted at `root`.
    Edge { root: usize, prev_max: usize },
    /// `child` (a former root) was attached under `parent`.
    Link {
        child: usize,
        parent: usize,
        rank_bumped: bool,
        prev_max: usize,
    },
}

impl CcForest {
    fn new(n: usize) -> CcForest {
        CcForest {
            parent: (0..n).collect(),
            rank: vec![0; n],
            edges: vec![0; n],
            max_edges: 0,
            undo: Vec::new(),
        }
    }

    fn find(&self, mut v: usize) -> usize {
        while self.parent[v] != v {
            v = self.parent[v];
        }
        v
    }

    /// Record one common edge between the components of `a` and `b`.
    fn link(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        let prev_max = self.max_edges;
        if ra == rb {
            self.edges[ra] += 1;
            self.max_edges = self.max_edges.max(self.edges[ra]);
            self.undo.push(CcUndo::Edge { root: ra, prev_max });
            return;
        }
        // Attach the lower-rank root under the higher-rank one.
        let (child, parent) = if self.rank[ra] < self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let rank_bumped = self.rank[child] == self.rank[parent];
        if rank_bumped {
            self.rank[parent] += 1;
        }
        self.parent[child] = parent;
        self.edges[parent] += self.edges[child] + 1;
        self.max_edges = self.max_edges.max(self.edges[parent]);
        self.undo.push(CcUndo::Link {
            child,
            parent,
            rank_bumped,
            prev_max,
        });
    }

    fn mark(&self) -> usize {
        self.undo.len()
    }

    /// Undo every `link` past `mark`, most recent first. LIFO order keeps
    /// the stale `edges[child]` values (untouched while non-root) valid.
    fn rollback(&mut self, mark: usize) {
        while self.undo.len() > mark {
            match self.undo.pop() {
                Some(CcUndo::Edge { root, prev_max }) => {
                    self.edges[root] -= 1;
                    self.max_edges = prev_max;
                }
                Some(CcUndo::Link {
                    child,
                    parent,
                    rank_bumped,
                    prev_max,
                }) => {
                    self.edges[parent] -= self.edges[child] + 1;
                    if rank_bumped {
                        self.rank[parent] -= 1;
                    }
                    self.parent[child] = child;
                    self.max_edges = prev_max;
                }
                None => return,
            }
        }
    }
}

struct Search<'a> {
    a: &'a Graph, // decided graph (fewer vertices)
    order: Vec<VertexId>,
    cfg: McsConfig,
    map: Vec<u32>,   // a-vertex -> b-vertex or MAX
    used: Vec<bool>, // b-vertex used
    score: usize,    // common edges among mapped pairs
    lost: usize,     // a-edges that can no longer become common
    best_edges: usize,
    best_pairs: Vec<(VertexId, VertexId)>,
    meter: BudgetMeter,
    swapped: bool,
    /// Whether each a-vertex has been decided (mapped or skipped) yet.
    decided: Vec<bool>,
    /// Bitset adjacency of `a`/`b`: O(1) `has_edge` in the hot loops.
    abits: BitAdjacency,
    bbits: BitAdjacency,
    /// b-vertices grouped by label (in vertex order), so candidate
    /// generation touches only label-compatible targets.
    buckets: Vec<(Label, Vec<VertexId>)>,
    /// Global upper bound on the common-edge count (edge-label multiset
    /// intersection capped by both edge counts). Once `best_edges` reaches
    /// it, the result is provably optimal and the search stops *Exact*.
    ub: usize,
    /// Set when `best_edges == ub`: unwind without exploring further.
    proven: bool,
    /// Per-depth candidate buffers, reused across branches to keep the
    /// backtracking loop allocation-free after warmup.
    scratch: Vec<Vec<(usize, usize, VertexId)>>,
    /// Largest-common-component tracker (MCCS only; empty for plain MCS).
    cc: CcForest,
}

const UNMAPPED: u32 = u32::MAX;

impl<'a> Search<'a> {
    /// Edges of `a` incident to `v` whose other endpoint is already decided
    /// (mapped or skipped), partitioned into (commonable-if-mapped-to,
    /// lost). For a candidate target `t`: common += matched neighbors whose
    /// image is adjacent to `t`.
    fn gain_and_loss(&self, v: VertexId, t: VertexId, decided: &[bool]) -> (usize, usize) {
        let mut gain = 0;
        let mut loss = 0;
        for &(w, _) in self.a.neighbors(v) {
            if !decided[w.index()] {
                continue;
            }
            let m = self.map[w.index()];
            if m == UNMAPPED {
                // Neighbor was skipped: the edge (v,w) was already counted
                // as lost at skip time (see `loss_on_skip`).
                continue;
            } else if self.bbits.has_edge(VertexId(m), t) {
                gain += 1;
            } else {
                loss += 1;
            }
        }
        (gain, loss)
    }

    fn loss_on_skip(&self, v: VertexId) -> usize {
        // Skipping v loses every a-edge incident to v that hasn't already
        // been scored or lost: i.e. edges to undecided vertices plus edges
        // to decided-mapped vertices (their commonality was accounted when v
        // would map; since v skips, they are lost now) — but edges to
        // decided-*skipped* neighbors were already counted as lost when that
        // neighbor skipped. We avoid double counting by only counting edges
        // whose other endpoint is undecided or mapped.
        self.a.degree(v)
            - self
                .a
                .neighbors(v)
                .iter()
                .filter(|&&(w, _)| self.decided_skipped(w))
                .count()
    }

    fn decided_skipped(&self, w: VertexId) -> bool {
        self.decided[w.index()] && self.map[w.index()] == UNMAPPED
    }

    fn record_leaf(&mut self) {
        if self.score <= self.best_edges {
            return;
        }
        if !self.cfg.connected {
            self.best_edges = self.score;
            self.best_pairs = self.current_pairs();
            self.meter.note_improvement();
        } else {
            // MCCS: take the largest connected component of the common-edge
            // subgraph induced by the current mapping. The incremental
            // tracker answers "can this leaf improve?" in O(1); only actual
            // improvements (rare) pay for the full component extraction,
            // which remains the ground truth for the recorded pairs.
            if self.cc.max_edges > self.best_edges {
                let pairs = self.current_pairs();
                let (cc_edges, cc_pairs) =
                    largest_common_component(&self.abits, &self.bbits, &pairs);
                debug_assert_eq!(
                    cc_edges, self.cc.max_edges,
                    "incremental component tracker drifted from ground truth"
                );
                if cc_edges > self.best_edges {
                    self.best_edges = cc_edges;
                    self.best_pairs = cc_pairs;
                    self.meter.note_improvement();
                }
            }
        }
        // Meeting the global bound proves optimality: no mapping can have
        // more common edges than the edge-label multiset intersection, so
        // the rest of the tree cannot improve and the search ends Exact.
        if self.best_edges >= self.ub {
            self.proven = true;
        }
    }

    fn current_pairs(&self) -> Vec<(VertexId, VertexId)> {
        self.a
            .vertices()
            .zip(self.map.iter())
            .filter(|&(_, &m)| m != UNMAPPED)
            .map(|(v, &m)| (v, VertexId(m)))
            .collect()
    }

    fn descend(&mut self, depth: usize) {
        if self.proven {
            return;
        }
        if self.meter.tick() {
            // Keep the best-so-far invariant: the partial mapping on the
            // stack at the moment the budget trips is itself a valid common
            // subgraph — record it before unwinding so even very small
            // budgets return a non-empty result when one was reachable.
            self.record_leaf();
            return;
        }
        // Bound: total a-edges minus those already lost can still become
        // common in the best case, never exceeding the global label bound.
        let potential = (self.a.edge_count() - self.lost).min(self.ub);
        if potential <= self.best_edges {
            self.record_leaf();
            return;
        }
        if depth == self.order.len() {
            self.record_leaf();
            return;
        }
        let v = self.order[depth];
        // Try candidate targets ordered by immediate gain (desc) so good
        // solutions are found early and the bound tightens. Only the label
        // bucket of `v` is scanned; a reused per-depth buffer keeps the
        // loop allocation-free.
        let mut candidates = std::mem::take(&mut self.scratch[depth]);
        candidates.clear();
        let want = self.a.label(v);
        if let Ok(i) = self.buckets.binary_search_by_key(&want, |e| e.0) {
            for idx in 0..self.buckets[i].1.len() {
                let t = self.buckets[i].1[idx];
                if self.used[t.index()] {
                    continue;
                }
                let (gain, loss) = self.gain_and_loss(v, t, &self.decided);
                candidates.push((gain, loss, t));
            }
        }
        candidates.sort_unstable_by(|x, y| {
            y.0.cmp(&x.0)
                .then(x.1.cmp(&y.1))
                .then((x.2).0.cmp(&(y.2).0))
        });
        self.decided[v.index()] = true;
        for ci in 0..candidates.len() {
            let (gain, loss, t) = candidates[ci];
            self.map[v.index()] = t.0;
            self.used[t.index()] = true;
            self.score += gain;
            self.lost += loss;
            let cc_mark = self.cc.mark();
            if self.cfg.connected && gain > 0 {
                // Mirror `gain_and_loss`: each commonable neighbor edge
                // joins (v, t)'s pair to the neighbor's component.
                let a = self.a;
                for &(w, _) in a.neighbors(v) {
                    let m = self.map[w.index()];
                    if w != v && m != UNMAPPED && self.bbits.has_edge(VertexId(m), t) {
                        self.cc.link(v.index(), w.index());
                    }
                }
            }
            self.descend(depth + 1);
            self.cc.rollback(cc_mark);
            self.score -= gain;
            self.lost -= loss;
            self.map[v.index()] = UNMAPPED;
            self.used[t.index()] = false;
            if self.meter.tripped() || self.proven {
                self.decided[v.index()] = false;
                self.scratch[depth] = candidates;
                return;
            }
        }
        // Skip branch.
        let loss = self.loss_on_skip(v);
        self.lost += loss;
        self.descend(depth + 1);
        self.lost -= loss;
        self.decided[v.index()] = false;
        self.scratch[depth] = candidates;
    }
}

// `decided` lives outside the struct init for borrow simplicity.
impl<'a> Search<'a> {
    fn run(a: &'a Graph, b: &'a Graph, cfg: McsConfig, swapped: bool, ub: usize) -> McsResult {
        let mut order: Vec<VertexId> = a.vertices().collect();
        // Decide high-degree vertices first: they constrain the most edges.
        order.sort_by_key(|&v| std::cmp::Reverse(a.degree(v)));
        let mut buckets: Vec<(Label, Vec<VertexId>)> = Vec::new();
        for t in b.vertices() {
            let l = b.label(t);
            match buckets.binary_search_by_key(&l, |e| e.0) {
                Ok(i) => buckets[i].1.push(t),
                Err(i) => buckets.insert(i, (l, vec![t])),
            }
        }
        let meter = BudgetMeter::new(&cfg.budget, Kernel::Mcs);
        let depth_count = a.vertex_count() + 1;
        let cc = CcForest::new(if cfg.connected { a.vertex_count() } else { 0 });
        let mut s = Search {
            a,
            order,
            cfg,
            map: vec![UNMAPPED; a.vertex_count()],
            used: vec![false; b.vertex_count()],
            score: 0,
            lost: 0,
            best_edges: 0,
            best_pairs: Vec::new(),
            meter,
            swapped,
            decided: vec![false; a.vertex_count()],
            abits: BitAdjacency::new(a),
            bbits: BitAdjacency::new(b),
            buckets,
            ub,
            proven: false,
            scratch: vec![Vec::new(); depth_count],
            cc,
        };
        s.descend(0);
        let mut pairs = s.best_pairs;
        if s.swapped {
            for p in &mut pairs {
                *p = (p.1, p.0);
            }
        }
        // A search stopped because `best_edges` met the global upper bound
        // holds a provably maximum common subgraph: the tag is Exact even
        // if a budget limit also tripped along the way.
        if s.best_edges >= s.ub {
            s.meter.note_proven_exact();
        }
        let completeness = s.meter.status();
        McsResult {
            pairs,
            edges: s.best_edges,
            completeness,
        }
    }
}

/// Largest connected component (by edge count) of the common-edge subgraph
/// induced by `pairs`. Returns `(edge_count, pairs in that component)`.
fn largest_common_component(
    a: &BitAdjacency,
    b: &BitAdjacency,
    pairs: &[(VertexId, VertexId)],
) -> (usize, Vec<(VertexId, VertexId)>) {
    let k = pairs.len();
    if k == 0 {
        return (0, Vec::new());
    }
    // Adjacency among pair indices: common edge exists.
    let mut adj = vec![Vec::new(); k];
    for i in 0..k {
        for j in (i + 1)..k {
            let (va, ta) = pairs[i];
            let (vb, tb) = pairs[j];
            if a.has_edge(va, vb) && b.has_edge(ta, tb) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let mut seen = vec![false; k];
    let mut best = (0usize, Vec::new());
    for start in 0..k {
        if seen[start] {
            continue;
        }
        let mut comp = vec![start];
        seen[start] = true;
        let mut qi = 0;
        while qi < comp.len() {
            let x = comp[qi];
            qi += 1;
            for &y in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    comp.push(y);
                }
            }
        }
        // Every neighbor of a component member is in the same component,
        // so the internal edge count is just half the degree sum.
        let edges = comp.iter().map(|&x| adj[x].len()).sum::<usize>() / 2;
        if edges > best.0 {
            best = (edges, comp.iter().map(|&i| pairs[i]).collect());
        }
    }
    best
}

/// Upper bound on the common-edge count of any common subgraph of `g1` and
/// `g2`: the size of the multiset intersection of their sorted edge labels
/// (each common edge consumes one matching edge label on both sides),
/// capped by both edge counts.
pub fn common_edge_upper_bound(g1: &Graph, g2: &Graph) -> usize {
    let la = g1.sorted_edge_labels();
    let lb = g2.sorted_edge_labels();
    let (mut i, mut j, mut common) = (0usize, 0usize, 0usize);
    while i < la.len() && j < lb.len() {
        match la[i].cmp(&lb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common
}

/// Compute the MCS (or MCCS, per `cfg.connected`) of `g1` and `g2`.
pub fn mcs(g1: &Graph, g2: &Graph, cfg: McsConfig) -> McsResult {
    if g1.vertex_count() == 0 || g2.vertex_count() == 0 {
        return McsResult {
            pairs: Vec::new(),
            edges: 0,
            completeness: Completeness::Exact,
        };
    }
    // Pre-filter: with no shared edge label no common edge exists, and a
    // zero-edge MCS never records pairs — skip the search outright. This
    // is exact (the bound is sound), so no meter is spun up. An
    // effectively infinite bound disables both the short-circuit and the
    // tightened potential below, restoring the reference search.
    let ub = if cfg.pruning {
        let ub = common_edge_upper_bound(g1, g2);
        if ub == 0 {
            return McsResult {
                pairs: Vec::new(),
                edges: 0,
                completeness: Completeness::Exact,
            };
        }
        ub
    } else {
        usize::MAX
    };
    if g1.vertex_count() <= g2.vertex_count() {
        Search::run(g1, g2, cfg, false, ub)
    } else {
        Search::run(g2, g1, cfg, true, ub)
    }
}

/// `ω_mcs(G1, G2) = |G_mcs| / min(|G1|, |G2|)` with `|G| = |E|` (§2).
///
/// Swallows the completeness tag (a truncated MCS understates similarity);
/// call sites that must react to degradation use [`mcs_similarity_tagged`].
pub fn mcs_similarity(g1: &Graph, g2: &Graph, budget: impl Into<SearchBudget>) -> f64 {
    mcs_similarity_tagged(g1, g2, budget).0
}

/// Budgeted `ω_mcs` plus why the underlying search stopped. A non-exact
/// similarity is a lower bound on the true value.
pub fn mcs_similarity_tagged(
    g1: &Graph,
    g2: &Graph,
    budget: impl Into<SearchBudget>,
) -> (f64, Completeness) {
    similarity(
        g1,
        g2,
        McsConfig {
            connected: false,
            budget: budget.into(),
            ..McsConfig::default()
        },
    )
}

/// `ω_mccs(G1, G2) = |G_mccs| / min(|G1|, |G2|)` with `|G| = |E|` (§2).
///
/// Swallows the completeness tag; use [`mccs_similarity_tagged`] where
/// degradation must be observable.
pub fn mccs_similarity(g1: &Graph, g2: &Graph, budget: impl Into<SearchBudget>) -> f64 {
    mccs_similarity_tagged(g1, g2, budget).0
}

/// Budgeted `ω_mccs` plus why the underlying search stopped. A non-exact
/// similarity is a lower bound on the true value.
pub fn mccs_similarity_tagged(
    g1: &Graph,
    g2: &Graph,
    budget: impl Into<SearchBudget>,
) -> (f64, Completeness) {
    similarity(
        g1,
        g2,
        McsConfig {
            connected: true,
            budget: budget.into(),
            ..McsConfig::default()
        },
    )
}

fn similarity(g1: &Graph, g2: &Graph, cfg: McsConfig) -> (f64, Completeness) {
    let denom = g1.edge_count().min(g2.edge_count());
    if denom == 0 {
        return (0.0, Completeness::Exact);
    }
    let r = mcs(g1, g2, cfg);
    (r.edges as f64 / denom as f64, r.completeness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn path(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &edges)
    }

    fn cycle(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn identical_graphs() {
        let g = cycle(5);
        let r = mcs(&g, &g, McsConfig::default());
        assert!(r.is_exact());
        assert_eq!(r.edges, 5);
        assert!((mccs_similarity(&g, &g, 500_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_in_cycle() {
        let p = path(4);
        let c = cycle(6);
        let r = mcs(&p, &c, McsConfig::connected());
        assert!(r.is_exact());
        assert_eq!(r.edges, 3); // the whole path embeds
    }

    #[test]
    fn mccs_leq_mcs() {
        // Two triangles joined by nothing vs a graph containing one triangle
        // and a far edge: MCS can use both pieces, MCCS only one.
        let g1 = Graph::from_parts(
            &[l(0); 5],
            &[(0, 1), (1, 2), (0, 2), (3, 4)], // triangle + edge
        );
        let g2 = Graph::from_parts(
            &[l(0); 6],
            &[(0, 1), (1, 2), (0, 2), (4, 5)], // triangle + separated edge
        );
        let m = mcs(&g1, &g2, McsConfig::default());
        let c = mcs(&g1, &g2, McsConfig::connected());
        assert_eq!(m.edges, 4);
        assert_eq!(c.edges, 3);
        assert!(c.edges <= m.edges);
    }

    #[test]
    fn labels_restrict_common() {
        let a = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2)]);
        let b = Graph::from_parts(&[l(0), l(1), l(3)], &[(0, 1), (1, 2)]);
        let r = mcs(&a, &b, McsConfig::default());
        assert_eq!(r.edges, 1); // only the (0)-(1) edge is common
    }

    #[test]
    fn result_is_common_subgraph() {
        let a = cycle(5);
        let b = path(5);
        let r = mcs(&a, &b, McsConfig::connected());
        assert!(r.is_exact());
        assert_eq!(r.edges, 4); // the path of 5 is the MCCS
                                // Verify every claimed common edge is real.
        let mut count = 0;
        for i in 0..r.pairs.len() {
            for j in (i + 1)..r.pairs.len() {
                let (va, ta) = r.pairs[i];
                let (vb, tb) = r.pairs[j];
                if a.has_edge(va, vb) && b.has_edge(ta, tb) {
                    count += 1;
                }
            }
        }
        assert_eq!(count, r.edges);
    }

    #[test]
    fn empty_graph_similarity() {
        let mut g = Graph::new();
        g.add_vertex(l(0));
        let h = path(3);
        assert_eq!(mcs_similarity(&g, &h, 1000), 0.0);
    }

    #[test]
    fn tiny_budget_reports_exhaustion_with_best_so_far() {
        let g = cycle(6);
        let r = mcs(
            &g,
            &g,
            McsConfig {
                connected: false,
                budget: SearchBudget::nodes(5),
                ..McsConfig::default()
            },
        );
        assert_eq!(r.completeness, Completeness::BudgetExhausted);
        // The partial mapping live at the budget trip is recorded, so even
        // a 5-node search returns a non-empty common subgraph...
        assert!(!r.pairs.is_empty(), "best-so-far pairs must survive");
        assert!(r.edges > 0);
        // ... which is a valid lower bound, not the true MCS.
        assert!(r.edges < 6);
    }

    #[test]
    fn generous_budget_matches_unbudgeted_answer() {
        let a = cycle(5);
        let b = path(5);
        let default = mcs(&a, &b, McsConfig::default());
        let generous = mcs(
            &a,
            &b,
            McsConfig {
                connected: false,
                budget: SearchBudget::nodes(100_000_000),
                ..McsConfig::default()
            },
        );
        assert!(default.is_exact() && generous.is_exact());
        assert_eq!(default.edges, generous.edges);
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        use crate::budget::Deadline;
        let g = cycle(5);
        let r = mcs(
            &g,
            &g,
            McsConfig {
                connected: false,
                budget: SearchBudget::unbounded()
                    .with_deadline(Deadline::at(std::time::Instant::now())),
                ..McsConfig::default()
            },
        );
        assert_eq!(r.completeness, Completeness::DeadlineExceeded);
    }

    #[test]
    fn tagged_similarity_exposes_degradation() {
        let g = cycle(6);
        let (exact_sim, c) = mcs_similarity_tagged(&g, &g, 500_000u64);
        assert!(c.is_exact());
        assert!((exact_sim - 1.0).abs() < 1e-12);
        let (truncated_sim, c) = mcs_similarity_tagged(&g, &g, 5u64);
        assert_eq!(c, Completeness::BudgetExhausted);
        assert!(truncated_sim <= exact_sim);
    }

    #[test]
    fn disjoint_edge_labels_are_exact_even_under_zero_budget() {
        // a has only (0,0) edges, b only (1,1): the edge-label bound is 0,
        // so no search is needed — exact, empty, regardless of budget.
        let a = Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2)]);
        let b = Graph::from_parts(&[l(1); 3], &[(0, 1), (1, 2)]);
        assert_eq!(common_edge_upper_bound(&a, &b), 0);
        let r = mcs(
            &a,
            &b,
            McsConfig {
                connected: false,
                budget: SearchBudget::nodes(0),
                ..McsConfig::default()
            },
        );
        assert!(r.is_exact());
        assert_eq!(r.edges, 0);
        assert!(r.pairs.is_empty());
    }

    #[test]
    fn upper_bound_counts_label_multiset_intersection() {
        // a: two (0,0) edges + one (0,1); b: one (0,0) + one (0,1) + one (1,1).
        let a = Graph::from_parts(&[l(0), l(0), l(0), l(1)], &[(0, 1), (1, 2), (2, 3)]);
        let b = Graph::from_parts(&[l(0), l(0), l(1), l(1)], &[(0, 1), (1, 2), (2, 3)]);
        // Intersection: one (0,0) + one (0,1) = 2.
        assert_eq!(common_edge_upper_bound(&a, &b), 2);
        let r = mcs(&a, &b, McsConfig::default());
        assert!(r.is_exact());
        assert_eq!(r.edges, 2);
    }

    #[test]
    fn meeting_the_bound_short_circuits_to_exact() {
        // Self-MCS of a large cycle: the greedy first descent reconstructs
        // the identity mapping and meets the bound after ~n+1 probes. A
        // budget far too small for the full tree still returns Exact,
        // because best == upper bound proves optimality.
        let g = cycle(12);
        let r = mcs(
            &g,
            &g,
            McsConfig {
                connected: false,
                budget: SearchBudget::nodes(40),
                ..McsConfig::default()
            },
        );
        assert!(r.is_exact(), "bound-met search must report Exact");
        assert_eq!(r.edges, 12);
        assert_eq!(r.pairs.len(), 12);
    }

    #[test]
    fn similarity_symmetry() {
        let a = cycle(4);
        let b = path(6);
        let s1 = mccs_similarity(&a, &b, 500_000);
        let s2 = mccs_similarity(&b, &a, 500_000);
        assert!((s1 - s2).abs() < 1e-12);
        assert!(s1 > 0.0 && s1 <= 1.0);
    }
}
