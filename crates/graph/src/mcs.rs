//! Maximum common subgraph (MCS) and maximum *connected* common subgraph
//! (MCCS), per §2 of the paper.
//!
//! Implemented as McGregor-style backtracking [27]: vertices of the smaller
//! graph are decided in a fixed order — mapped to a label-compatible unused
//! vertex of the other graph, or skipped — while an upper bound on the
//! number of still-achievable common edges prunes the search. For MCCS, the
//! largest connected component of each improving common-edge subgraph is
//! taken (every connected common subgraph appears as a sub-solution of some
//! branch, so the enumeration is exhaustive).
//!
//! Both problems are NP-complete [36]; a configurable [`SearchBudget`]
//! bounds the pathological worst case, falling back to the best solution
//! found so far and tagging the result with why the search stopped
//! ([`McsResult::completeness`]), mirroring the budgeted McGregor
//! implementations benchmarked in [13]. A degraded result is a *lower
//! bound* on the true common-subgraph size.

use crate::budget::{BudgetMeter, Completeness, Kernel, SearchBudget};
use crate::graph::{Graph, VertexId};

/// Default backtracking-node cap for MCS/MCCS searches.
pub const DEFAULT_NODE_CAP: u64 = 500_000;

/// Configuration for an MCS/MCCS computation.
#[derive(Clone, Debug)]
pub struct McsConfig {
    /// Require the common subgraph to be connected (MCCS, [36]).
    pub connected: bool,
    /// Execution budget; on a tripped limit the search stops with the best
    /// common subgraph found so far (a lower bound on the true MCS).
    pub budget: SearchBudget,
}

impl Default for McsConfig {
    fn default() -> Self {
        McsConfig {
            connected: false,
            budget: SearchBudget::nodes(DEFAULT_NODE_CAP),
        }
    }
}

impl McsConfig {
    /// Config for a maximum connected common subgraph computation.
    pub fn connected() -> Self {
        McsConfig {
            connected: true,
            ..Self::default()
        }
    }
}

/// Result of an MCS/MCCS computation.
#[derive(Clone, Debug)]
pub struct McsResult {
    /// Matched vertex pairs `(v in g1, v in g2)`.
    pub pairs: Vec<(VertexId, VertexId)>,
    /// Size of the common subgraph in edges (the paper's `|G|`).
    pub edges: usize,
    /// Why the search stopped. Non-exact results are the best common
    /// subgraph found before the budget tripped — a valid common subgraph
    /// and a lower bound on the true MCS size.
    pub completeness: Completeness,
}

impl McsResult {
    /// Whether the search space was exhausted (the result is the true MCS).
    pub fn is_exact(&self) -> bool {
        self.completeness.is_exact()
    }
}

struct Search<'a> {
    a: &'a Graph, // decided graph (fewer vertices)
    b: &'a Graph,
    order: Vec<VertexId>,
    cfg: McsConfig,
    map: Vec<u32>,   // a-vertex -> b-vertex or MAX
    used: Vec<bool>, // b-vertex used
    score: usize,    // common edges among mapped pairs
    lost: usize,     // a-edges that can no longer become common
    best_edges: usize,
    best_pairs: Vec<(VertexId, VertexId)>,
    meter: BudgetMeter,
    swapped: bool,
    /// Whether each a-vertex has been decided (mapped or skipped) yet.
    decided: Vec<bool>,
}

const UNMAPPED: u32 = u32::MAX;

impl<'a> Search<'a> {
    /// Edges of `a` incident to `v` whose other endpoint is already decided
    /// (mapped or skipped), partitioned into (commonable-if-mapped-to,
    /// lost). For a candidate target `t`: common += matched neighbors whose
    /// image is adjacent to `t`.
    fn gain_and_loss(&self, v: VertexId, t: VertexId, decided: &[bool]) -> (usize, usize) {
        let mut gain = 0;
        let mut loss = 0;
        for &(w, _) in self.a.neighbors(v) {
            if !decided[w.index()] {
                continue;
            }
            let m = self.map[w.index()];
            if m == UNMAPPED {
                // Neighbor was skipped: the edge (v,w) was already counted
                // as lost at skip time (see `loss_on_skip`).
                continue;
            } else if self.b.has_edge(VertexId(m), t) {
                gain += 1;
            } else {
                loss += 1;
            }
        }
        (gain, loss)
    }

    fn loss_on_skip(&self, v: VertexId) -> usize {
        // Skipping v loses every a-edge incident to v that hasn't already
        // been scored or lost: i.e. edges to undecided vertices plus edges
        // to decided-mapped vertices (their commonality was accounted when v
        // would map; since v skips, they are lost now) — but edges to
        // decided-*skipped* neighbors were already counted as lost when that
        // neighbor skipped. We avoid double counting by only counting edges
        // whose other endpoint is undecided or mapped.
        self.a.degree(v)
            - self
                .a
                .neighbors(v)
                .iter()
                .filter(|&&(w, _)| self.decided_skipped(w))
                .count()
    }

    fn decided_skipped(&self, w: VertexId) -> bool {
        self.decided[w.index()] && self.map[w.index()] == UNMAPPED
    }

    fn record_leaf(&mut self) {
        if self.score <= self.best_edges {
            return;
        }
        if !self.cfg.connected {
            self.best_edges = self.score;
            self.best_pairs = self.current_pairs();
            self.meter.note_improvement();
            return;
        }
        // MCCS: take the largest connected component of the common-edge
        // subgraph induced by the current mapping.
        let pairs = self.current_pairs();
        let (cc_edges, cc_pairs) = largest_common_component(self.a, self.b, &pairs);
        if cc_edges > self.best_edges {
            self.best_edges = cc_edges;
            self.best_pairs = cc_pairs;
            self.meter.note_improvement();
        }
    }

    fn current_pairs(&self) -> Vec<(VertexId, VertexId)> {
        self.a
            .vertices()
            .zip(self.map.iter())
            .filter(|&(_, &m)| m != UNMAPPED)
            .map(|(v, &m)| (v, VertexId(m)))
            .collect()
    }

    fn descend(&mut self, depth: usize) {
        if self.meter.tick() {
            // Keep the best-so-far invariant: the partial mapping on the
            // stack at the moment the budget trips is itself a valid common
            // subgraph — record it before unwinding so even very small
            // budgets return a non-empty result when one was reachable.
            self.record_leaf();
            return;
        }
        // Bound: total a-edges minus those already lost can still become
        // common in the best case.
        let potential = self.a.edge_count() - self.lost;
        if potential <= self.best_edges {
            self.record_leaf();
            return;
        }
        if depth == self.order.len() {
            self.record_leaf();
            return;
        }
        let v = self.order[depth];
        // Try candidate targets ordered by immediate gain (desc) so good
        // solutions are found early and the bound tightens.
        let mut candidates: Vec<(usize, usize, VertexId)> = Vec::new();
        for t in self.b.vertices() {
            if self.used[t.index()] || self.b.label(t) != self.a.label(v) {
                continue;
            }
            let (gain, loss) = self.gain_and_loss(v, t, &self.decided);
            candidates.push((gain, loss, t));
        }
        candidates.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        self.decided[v.index()] = true;
        for (gain, loss, t) in candidates {
            self.map[v.index()] = t.0;
            self.used[t.index()] = true;
            self.score += gain;
            self.lost += loss;
            self.descend(depth + 1);
            self.score -= gain;
            self.lost -= loss;
            self.map[v.index()] = UNMAPPED;
            self.used[t.index()] = false;
            if self.meter.tripped() {
                self.decided[v.index()] = false;
                return;
            }
        }
        // Skip branch.
        let loss = self.loss_on_skip(v);
        self.lost += loss;
        self.descend(depth + 1);
        self.lost -= loss;
        self.decided[v.index()] = false;
    }
}

// `decided` lives outside the struct init for borrow simplicity.
impl<'a> Search<'a> {
    fn run(a: &'a Graph, b: &'a Graph, cfg: McsConfig, swapped: bool) -> McsResult {
        let mut order: Vec<VertexId> = a.vertices().collect();
        // Decide high-degree vertices first: they constrain the most edges.
        order.sort_by_key(|&v| std::cmp::Reverse(a.degree(v)));
        let meter = BudgetMeter::new(&cfg.budget, Kernel::Mcs);
        let mut s = Search {
            a,
            b,
            order,
            cfg,
            map: vec![UNMAPPED; a.vertex_count()],
            used: vec![false; b.vertex_count()],
            score: 0,
            lost: 0,
            best_edges: 0,
            best_pairs: Vec::new(),
            meter,
            swapped,
            decided: vec![false; a.vertex_count()],
        };
        s.descend(0);
        let mut pairs = s.best_pairs;
        if s.swapped {
            for p in &mut pairs {
                *p = (p.1, p.0);
            }
        }
        McsResult {
            pairs,
            edges: s.best_edges,
            completeness: s.meter.status(),
        }
    }
}

/// Largest connected component (by edge count) of the common-edge subgraph
/// induced by `pairs`. Returns `(edge_count, pairs in that component)`.
fn largest_common_component(
    a: &Graph,
    b: &Graph,
    pairs: &[(VertexId, VertexId)],
) -> (usize, Vec<(VertexId, VertexId)>) {
    let k = pairs.len();
    if k == 0 {
        return (0, Vec::new());
    }
    // Adjacency among pair indices: common edge exists.
    let mut adj = vec![Vec::new(); k];
    for i in 0..k {
        for j in (i + 1)..k {
            let (va, ta) = pairs[i];
            let (vb, tb) = pairs[j];
            if a.has_edge(va, vb) && b.has_edge(ta, tb) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let mut seen = vec![false; k];
    let mut best = (0usize, Vec::new());
    for start in 0..k {
        if seen[start] {
            continue;
        }
        let mut comp = vec![start];
        seen[start] = true;
        let mut qi = 0;
        while qi < comp.len() {
            let x = comp[qi];
            qi += 1;
            for &y in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    comp.push(y);
                }
            }
        }
        // Count edges inside the component.
        let mut edges = 0;
        for &x in &comp {
            edges += adj[x].iter().filter(|y| comp.contains(y)).count();
        }
        edges /= 2;
        if edges > best.0 {
            best = (edges, comp.iter().map(|&i| pairs[i]).collect());
        }
    }
    best
}

/// Compute the MCS (or MCCS, per `cfg.connected`) of `g1` and `g2`.
pub fn mcs(g1: &Graph, g2: &Graph, cfg: McsConfig) -> McsResult {
    if g1.vertex_count() == 0 || g2.vertex_count() == 0 {
        return McsResult {
            pairs: Vec::new(),
            edges: 0,
            completeness: Completeness::Exact,
        };
    }
    if g1.vertex_count() <= g2.vertex_count() {
        Search::run(g1, g2, cfg, false)
    } else {
        Search::run(g2, g1, cfg, true)
    }
}

/// `ω_mcs(G1, G2) = |G_mcs| / min(|G1|, |G2|)` with `|G| = |E|` (§2).
///
/// Swallows the completeness tag (a truncated MCS understates similarity);
/// call sites that must react to degradation use [`mcs_similarity_tagged`].
pub fn mcs_similarity(g1: &Graph, g2: &Graph, budget: impl Into<SearchBudget>) -> f64 {
    mcs_similarity_tagged(g1, g2, budget).0
}

/// Budgeted `ω_mcs` plus why the underlying search stopped. A non-exact
/// similarity is a lower bound on the true value.
pub fn mcs_similarity_tagged(
    g1: &Graph,
    g2: &Graph,
    budget: impl Into<SearchBudget>,
) -> (f64, Completeness) {
    similarity(
        g1,
        g2,
        McsConfig {
            connected: false,
            budget: budget.into(),
        },
    )
}

/// `ω_mccs(G1, G2) = |G_mccs| / min(|G1|, |G2|)` with `|G| = |E|` (§2).
///
/// Swallows the completeness tag; use [`mccs_similarity_tagged`] where
/// degradation must be observable.
pub fn mccs_similarity(g1: &Graph, g2: &Graph, budget: impl Into<SearchBudget>) -> f64 {
    mccs_similarity_tagged(g1, g2, budget).0
}

/// Budgeted `ω_mccs` plus why the underlying search stopped. A non-exact
/// similarity is a lower bound on the true value.
pub fn mccs_similarity_tagged(
    g1: &Graph,
    g2: &Graph,
    budget: impl Into<SearchBudget>,
) -> (f64, Completeness) {
    similarity(
        g1,
        g2,
        McsConfig {
            connected: true,
            budget: budget.into(),
        },
    )
}

fn similarity(g1: &Graph, g2: &Graph, cfg: McsConfig) -> (f64, Completeness) {
    let denom = g1.edge_count().min(g2.edge_count());
    if denom == 0 {
        return (0.0, Completeness::Exact);
    }
    let r = mcs(g1, g2, cfg);
    (r.edges as f64 / denom as f64, r.completeness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn path(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &edges)
    }

    fn cycle(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn identical_graphs() {
        let g = cycle(5);
        let r = mcs(&g, &g, McsConfig::default());
        assert!(r.is_exact());
        assert_eq!(r.edges, 5);
        assert!((mccs_similarity(&g, &g, 500_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_in_cycle() {
        let p = path(4);
        let c = cycle(6);
        let r = mcs(&p, &c, McsConfig::connected());
        assert!(r.is_exact());
        assert_eq!(r.edges, 3); // the whole path embeds
    }

    #[test]
    fn mccs_leq_mcs() {
        // Two triangles joined by nothing vs a graph containing one triangle
        // and a far edge: MCS can use both pieces, MCCS only one.
        let g1 = Graph::from_parts(
            &[l(0); 5],
            &[(0, 1), (1, 2), (0, 2), (3, 4)], // triangle + edge
        );
        let g2 = Graph::from_parts(
            &[l(0); 6],
            &[(0, 1), (1, 2), (0, 2), (4, 5)], // triangle + separated edge
        );
        let m = mcs(&g1, &g2, McsConfig::default());
        let c = mcs(&g1, &g2, McsConfig::connected());
        assert_eq!(m.edges, 4);
        assert_eq!(c.edges, 3);
        assert!(c.edges <= m.edges);
    }

    #[test]
    fn labels_restrict_common() {
        let a = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2)]);
        let b = Graph::from_parts(&[l(0), l(1), l(3)], &[(0, 1), (1, 2)]);
        let r = mcs(&a, &b, McsConfig::default());
        assert_eq!(r.edges, 1); // only the (0)-(1) edge is common
    }

    #[test]
    fn result_is_common_subgraph() {
        let a = cycle(5);
        let b = path(5);
        let r = mcs(&a, &b, McsConfig::connected());
        assert!(r.is_exact());
        assert_eq!(r.edges, 4); // the path of 5 is the MCCS
                                // Verify every claimed common edge is real.
        let mut count = 0;
        for i in 0..r.pairs.len() {
            for j in (i + 1)..r.pairs.len() {
                let (va, ta) = r.pairs[i];
                let (vb, tb) = r.pairs[j];
                if a.has_edge(va, vb) && b.has_edge(ta, tb) {
                    count += 1;
                }
            }
        }
        assert_eq!(count, r.edges);
    }

    #[test]
    fn empty_graph_similarity() {
        let mut g = Graph::new();
        g.add_vertex(l(0));
        let h = path(3);
        assert_eq!(mcs_similarity(&g, &h, 1000), 0.0);
    }

    #[test]
    fn tiny_budget_reports_exhaustion_with_best_so_far() {
        let g = cycle(6);
        let r = mcs(
            &g,
            &g,
            McsConfig {
                connected: false,
                budget: SearchBudget::nodes(5),
            },
        );
        assert_eq!(r.completeness, Completeness::BudgetExhausted);
        // The partial mapping live at the budget trip is recorded, so even
        // a 5-node search returns a non-empty common subgraph...
        assert!(!r.pairs.is_empty(), "best-so-far pairs must survive");
        assert!(r.edges > 0);
        // ... which is a valid lower bound, not the true MCS.
        assert!(r.edges < 6);
    }

    #[test]
    fn generous_budget_matches_unbudgeted_answer() {
        let a = cycle(5);
        let b = path(5);
        let default = mcs(&a, &b, McsConfig::default());
        let generous = mcs(
            &a,
            &b,
            McsConfig {
                connected: false,
                budget: SearchBudget::nodes(100_000_000),
            },
        );
        assert!(default.is_exact() && generous.is_exact());
        assert_eq!(default.edges, generous.edges);
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        use crate::budget::Deadline;
        let g = cycle(5);
        let r = mcs(
            &g,
            &g,
            McsConfig {
                connected: false,
                budget: SearchBudget::unbounded()
                    .with_deadline(Deadline::at(std::time::Instant::now())),
            },
        );
        assert_eq!(r.completeness, Completeness::DeadlineExceeded);
    }

    #[test]
    fn tagged_similarity_exposes_degradation() {
        let g = cycle(6);
        let (exact_sim, c) = mcs_similarity_tagged(&g, &g, 500_000u64);
        assert!(c.is_exact());
        assert!((exact_sim - 1.0).abs() < 1e-12);
        let (truncated_sim, c) = mcs_similarity_tagged(&g, &g, 5u64);
        assert_eq!(c, Completeness::BudgetExhausted);
        assert!(truncated_sim <= exact_sim);
    }

    #[test]
    fn similarity_symmetry() {
        let a = cycle(4);
        let b = path(6);
        let s1 = mccs_similarity(&a, &b, 500_000);
        let s2 = mccs_similarity(&b, &a, 500_000);
        assert!((s1 - s2).abs() < 1e-12);
        assert!(s1 > 0.0 && s1 <= 1.0);
    }
}
