//! Cognitive-load measures and related pattern metrics (§3.2, Exp 10).
//!
//! The paper defines the cognitive load of a pattern `p = (V_p, E_p)` as
//! `cog(p) = |E_p| × ρ_p` with density `ρ_p = 2|E_p| / (|V_p|(|V_p|-1))`
//! (measure F1), and evaluates two alternative measures in Exp 10:
//! a degree-based measure `F2 = Σ deg(v) = 2|E_p|` and the average degree
//! `F3 = 2|E_p| / |V_p|`. Exp 10 finds F1 most consistent with human
//! response-time rankings.

use crate::graph::Graph;

/// F1: the paper's cognitive-load measure, `cog(p) = |E| × ρ` (§3.2).
pub fn cognitive_load(g: &Graph) -> f64 {
    g.edge_count() as f64 * g.density()
}

/// F2: degree-based measure `Σ_v deg(v) = 2|E|` (Exp 10).
pub fn cognitive_load_f2(g: &Graph) -> f64 {
    2.0 * g.edge_count() as f64
}

/// F3: average degree `2|E| / |V|` (Exp 10).
pub fn cognitive_load_f3(g: &Graph) -> f64 {
    if g.vertex_count() == 0 {
        return 0.0;
    }
    2.0 * g.edge_count() as f64 / g.vertex_count() as f64
}

/// Mean cognitive load (F1) over a pattern set; `0` for an empty set.
pub fn mean_cognitive_load(patterns: &[Graph]) -> f64 {
    if patterns.is_empty() {
        return 0.0;
    }
    patterns.iter().map(cognitive_load).sum::<f64>() / patterns.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexId;
    use crate::labels::Label;

    fn l() -> Label {
        Label(0)
    }

    fn clique(n: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(l());
        }
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(VertexId(i), VertexId(j)).unwrap();
            }
        }
        g
    }

    fn path(n: usize) -> Graph {
        let labels = vec![l(); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn clique_has_highest_f1_among_same_order() {
        let k4 = clique(4);
        let p4 = path(4);
        assert!(cognitive_load(&k4) > cognitive_load(&p4));
        // K4: |E|=6, density=1 → F1 = 6.
        assert!((cognitive_load(&k4) - 6.0).abs() < 1e-12);
        // P4: |E|=3, density=0.5 → F1 = 1.5.
        assert!((cognitive_load(&p4) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn f2_is_twice_edges() {
        assert_eq!(cognitive_load_f2(&path(5)), 8.0);
    }

    #[test]
    fn f3_is_average_degree() {
        let c = clique(4);
        assert!((cognitive_load_f3(&c) - 3.0).abs() < 1e-12);
        assert_eq!(cognitive_load_f3(&Graph::new()), 0.0);
    }

    #[test]
    fn mean_over_set() {
        let set = vec![path(4), clique(4)];
        assert!((mean_cognitive_load(&set) - (1.5 + 6.0) / 2.0).abs() < 1e-12);
        assert_eq!(mean_cognitive_load(&[]), 0.0);
    }

    #[test]
    fn paper_range_sanity() {
        // The paper reports avg cog in [1.59, 2.36] for its selected
        // patterns — small sparse patterns land in that band.
        let hexagon = {
            let labels = vec![l(); 6];
            let mut edges: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 1)).collect();
            edges.push((5, 0));
            Graph::from_parts(&labels, &edges)
        };
        let f1 = cognitive_load(&hexagon);
        assert!(f1 > 1.0 && f1 < 3.0, "hexagon cog {f1}");
    }
}
