//! Plain-text graph serialization in the gSpan-style transaction format.
//!
//! ```text
//! t # 0
//! v 0 C
//! v 1 O
//! e 0 1
//! t # 1
//! ...
//! ```
//!
//! Vertex labels are written through a [`LabelInterner`]; parsing interns
//! unseen labels on the fly. Used by examples and the dataset crate to
//! persist synthetic repositories.

use crate::graph::{Graph, VertexId};
use crate::labels::LabelInterner;
use std::fmt::Write as _;

/// Error from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialize `graphs` to the transaction text format.
pub fn write_graphs(graphs: &[Graph], interner: &LabelInterner) -> String {
    let mut out = String::new();
    for (i, g) in graphs.iter().enumerate() {
        let _ = writeln!(out, "t # {i}");
        for v in g.vertices() {
            let _ = writeln!(out, "v {} {}", v.0, interner.display(g.label(v)));
        }
        for (_, e) in g.edges() {
            let _ = writeln!(out, "e {} {}", e.u.0, e.v.0);
        }
    }
    out
}

/// Parse graphs from the transaction text format, interning labels.
pub fn parse_graphs(text: &str, interner: &mut LabelInterner) -> Result<Vec<Graph>, ParseError> {
    let mut graphs: Vec<Graph> = Vec::new();
    let mut current: Option<Graph> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        // The line is trimmed and non-empty, so it has a first token; the
        // `else` arm is unreachable but keeps this parse loop panic-free.
        let Some(kind) = parts.next() else { continue };
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };
        match kind {
            "t" => {
                if let Some(g) = current.take() {
                    graphs.push(g);
                }
                current = Some(Graph::new());
            }
            "v" => {
                let g = current
                    .as_mut()
                    .ok_or_else(|| err("vertex before 't' header".into()))?;
                let idx: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad vertex index".into()))?;
                let label = parts
                    .next()
                    .ok_or_else(|| err("missing vertex label".into()))?;
                if idx as usize != g.vertex_count() {
                    return Err(err(format!(
                        "vertex ids must be dense and in order (expected {}, got {idx})",
                        g.vertex_count()
                    )));
                }
                g.add_vertex(interner.intern(label));
            }
            "e" => {
                let g = current
                    .as_mut()
                    .ok_or_else(|| err("edge before 't' header".into()))?;
                let a: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad edge endpoint".into()))?;
                let b: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad edge endpoint".into()))?;
                g.add_edge(VertexId(a), VertexId(b))
                    .map_err(|e| err(format!("invalid edge {a}-{b}: {e}")))?;
            }
            other => return Err(err(format!("unknown record '{other}'"))),
        }
    }
    if let Some(g) = current.take() {
        graphs.push(g);
    }
    Ok(graphs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::are_isomorphic;
    use crate::labels::Label;

    #[test]
    fn round_trip() {
        let mut it = LabelInterner::new();
        let c = it.intern("C");
        let o = it.intern("O");
        let g1 = Graph::from_parts(&[c, o, c], &[(0, 1), (1, 2)]);
        let g2 = Graph::from_parts(&[c, c], &[(0, 1)]);
        let text = write_graphs(&[g1.clone(), g2.clone()], &it);
        let mut it2 = LabelInterner::new();
        let parsed = parse_graphs(&text, &mut it2).unwrap();
        assert_eq!(parsed.len(), 2);
        // Interners may assign different ids; isomorphism up to relabeling
        // holds when the label *names* agree. Here "C" and "O" intern in
        // the same order, so direct isomorphism applies.
        assert!(are_isomorphic(&parsed[0], &g1));
        assert!(are_isomorphic(&parsed[1], &g2));
    }

    #[test]
    fn rejects_orphan_records() {
        let mut it = LabelInterner::new();
        assert!(parse_graphs("v 0 C", &mut it).is_err());
        assert!(parse_graphs("e 0 1", &mut it).is_err());
    }

    #[test]
    fn rejects_non_dense_vertices() {
        let mut it = LabelInterner::new();
        let r = parse_graphs("t # 0\nv 1 C", &mut it);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_bad_edges() {
        let mut it = LabelInterner::new();
        let r = parse_graphs("t # 0\nv 0 C\nv 1 C\ne 0 5", &mut it);
        assert!(r.is_err());
        let r2 = parse_graphs("t # 0\nv 0 C\ne 0 0", &mut it);
        assert!(r2.is_err());
    }

    #[test]
    fn skips_comments_and_blanks() {
        let mut it = LabelInterner::new();
        let g = parse_graphs("% header\n\nt # 0\nv 0 N\n", &mut it).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].vertex_count(), 1);
        assert_eq!(it.name(Label(0)), Some("N"));
    }

    #[test]
    fn unknown_record_errors_with_line() {
        let mut it = LabelInterner::new();
        let e = parse_graphs("t # 0\nx 1 2", &mut it).unwrap_err();
        assert_eq!(e.line, 2);
    }
}
