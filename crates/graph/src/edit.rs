//! Explicit graph edit scripts.
//!
//! GED (§3.2) is defined as the length of a cheapest edit path; this
//! module materializes such paths. [`edit_script`] converts a full vertex
//! mapping (the witness produced by the GED search or the bipartite upper
//! bound) into a concrete operation sequence whose length equals
//! [`crate::ged::induced_edit_cost`], and [`apply_edit_script`] replays it
//! — so tests can verify, end to end, that a claimed distance corresponds
//! to an executable transformation of one graph into the other.

use crate::ged::induced_edit_cost;
use crate::graph::{Graph, VertexId};
use crate::labels::Label;

/// One edit operation. Vertex ids refer to the *source* graph for
/// deletions/relabels; insertions introduce fresh handles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Delete a source edge.
    DeleteEdge(VertexId, VertexId),
    /// Delete a source vertex (must be isolated by prior edge deletions).
    DeleteVertex(VertexId),
    /// Change a source vertex's label.
    Relabel(VertexId, Label),
    /// Insert a fresh vertex; it is addressed afterwards as `Inserted(k)`
    /// where `k` counts insertions in script order.
    InsertVertex(Label),
    /// Insert an edge between two endpoints (source or inserted).
    InsertEdge(EditEndpoint, EditEndpoint),
}

/// An endpoint reference inside a script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EditEndpoint {
    /// A surviving source vertex.
    Source(VertexId),
    /// The `k`-th inserted vertex.
    Inserted(usize),
}

/// Errors from replaying a script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// Referenced vertex does not exist (or was deleted).
    MissingVertex,
    /// Deleting a vertex that still has incident edges.
    VertexNotIsolated,
    /// Edge operation invalid (absent on delete / duplicate on insert).
    BadEdge,
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::MissingVertex => write!(f, "vertex missing"),
            EditError::VertexNotIsolated => write!(f, "vertex not isolated"),
            EditError::BadEdge => write!(f, "invalid edge operation"),
        }
    }
}

impl std::error::Error for EditError {}

/// Derive an edit script realizing `mapping` (source vertex → target
/// vertex or `None` = delete; unmatched target vertices are inserted).
/// The script length equals [`induced_edit_cost`] for the same mapping.
pub fn edit_script(a: &Graph, b: &Graph, mapping: &[Option<VertexId>]) -> Vec<EditOp> {
    assert_eq!(mapping.len(), a.vertex_count());
    let mut script = Vec::new();
    // target vertex → source preimage.
    let mut preimage: Vec<Option<VertexId>> = vec![None; b.vertex_count()];
    for (i, m) in mapping.iter().enumerate() {
        if let Some(t) = m {
            preimage[t.index()] = Some(VertexId(i as u32));
        }
    }
    // 1. Delete source edges with no matched target edge.
    for (_, e) in a.edges() {
        let keep = matches!(
            (mapping[e.u.index()], mapping[e.v.index()]),
            (Some(x), Some(y)) if b.has_edge(x, y)
        );
        if !keep {
            script.push(EditOp::DeleteEdge(e.u, e.v));
        }
    }
    // 2. Delete unmapped source vertices (now isolated).
    for (i, m) in mapping.iter().enumerate() {
        if m.is_none() {
            script.push(EditOp::DeleteVertex(VertexId(i as u32)));
        }
    }
    // 3. Relabel mismatched survivors.
    for (i, m) in mapping.iter().enumerate() {
        if let Some(t) = m {
            if a.label(VertexId(i as u32)) != b.label(*t) {
                script.push(EditOp::Relabel(VertexId(i as u32), b.label(*t)));
            }
        }
    }
    // 4. Insert target-only vertices; remember their handles.
    let mut inserted_handle: Vec<Option<usize>> = vec![None; b.vertex_count()];
    let mut next_insert = 0usize;
    for t in b.vertices() {
        if preimage[t.index()].is_none() {
            script.push(EditOp::InsertVertex(b.label(t)));
            inserted_handle[t.index()] = Some(next_insert);
            next_insert += 1;
        }
    }
    // 5. Insert target edges with no matched source edge.
    // Step 4 assigned a handle to every unmatched target vertex, so the
    // `expect` below is unreachable for well-formed preimages.
    #[allow(clippy::expect_used)]
    let endpoint = |t: VertexId| -> EditEndpoint {
        match preimage[t.index()] {
            Some(src) => EditEndpoint::Source(src),
            None => EditEndpoint::Inserted(inserted_handle[t.index()].expect("inserted")),
        }
    };
    for (_, e) in b.edges() {
        let matched = matches!(
            (preimage[e.u.index()], preimage[e.v.index()]),
            (Some(x), Some(y)) if a.has_edge(x, y)
        );
        if !matched {
            script.push(EditOp::InsertEdge(endpoint(e.u), endpoint(e.v)));
        }
    }
    debug_assert_eq!(script.len(), induced_edit_cost(a, b, mapping));
    script
}

/// Replay a script on `a`, producing the edited graph.
pub fn apply_edit_script(a: &Graph, script: &[EditOp]) -> Result<Graph, EditError> {
    // Working state: survivors of `a` (with mutable labels and alive
    // flags), edge set as pairs, plus inserted vertices.
    let n = a.vertex_count();
    let mut alive = vec![true; n];
    let mut labels: Vec<Label> = a.labels().to_vec();
    let mut edges: Vec<(usize, usize)> =
        a.edges().map(|(_, e)| (e.u.index(), e.v.index())).collect();
    let mut inserted: Vec<Label> = Vec::new();

    // Node addressing: source i → slot i; inserted k → slot n + k.
    let resolve =
        |ep: &EditEndpoint, alive: &[bool], inserted_len: usize| -> Result<usize, EditError> {
            match ep {
                EditEndpoint::Source(v) => {
                    if v.index() >= alive.len() || !alive[v.index()] {
                        Err(EditError::MissingVertex)
                    } else {
                        Ok(v.index())
                    }
                }
                EditEndpoint::Inserted(k) => {
                    if *k >= inserted_len {
                        Err(EditError::MissingVertex)
                    } else {
                        Ok(alive.len() + *k)
                    }
                }
            }
        };

    for op in script {
        match op {
            EditOp::DeleteEdge(u, v) => {
                let (x, y) = (u.index(), v.index());
                if x >= n || y >= n || !alive[x] || !alive[y] {
                    return Err(EditError::MissingVertex);
                }
                let key = (x.min(y), x.max(y));
                let pos = edges
                    .iter()
                    .position(|&(p, q)| (p.min(q), p.max(q)) == key)
                    .ok_or(EditError::BadEdge)?;
                edges.swap_remove(pos);
            }
            EditOp::DeleteVertex(v) => {
                let x = v.index();
                if x >= n || !alive[x] {
                    return Err(EditError::MissingVertex);
                }
                if edges.iter().any(|&(p, q)| p == x || q == x) {
                    return Err(EditError::VertexNotIsolated);
                }
                alive[x] = false;
            }
            EditOp::Relabel(v, l) => {
                let x = v.index();
                if x >= n || !alive[x] {
                    return Err(EditError::MissingVertex);
                }
                labels[x] = *l;
            }
            EditOp::InsertVertex(l) => inserted.push(*l),
            EditOp::InsertEdge(pu, pv) => {
                let x = resolve(pu, &alive, inserted.len())?;
                let y = resolve(pv, &alive, inserted.len())?;
                if x == y {
                    return Err(EditError::BadEdge);
                }
                let key = (x.min(y), x.max(y));
                if edges.iter().any(|&(p, q)| (p.min(q), p.max(q)) == key) {
                    return Err(EditError::BadEdge);
                }
                edges.push(key);
            }
        }
    }

    // Materialize: compact surviving + inserted slots into a fresh graph.
    let mut slot_to_new: Vec<Option<VertexId>> = vec![None; n + inserted.len()];
    let mut out = Graph::new();
    for i in 0..n {
        if alive[i] {
            slot_to_new[i] = Some(out.add_vertex(labels[i]));
        }
    }
    for (k, &l) in inserted.iter().enumerate() {
        slot_to_new[n + k] = Some(out.add_vertex(l));
    }
    for &(p, q) in &edges {
        let (np, nq) = (
            slot_to_new[p].ok_or(EditError::MissingVertex)?,
            slot_to_new[q].ok_or(EditError::MissingVertex)?,
        );
        out.add_edge(np, nq).map_err(|_| EditError::BadEdge)?;
    }
    crate::debug_invariants!(out.validate());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ged::ged_upper_bound_mapping;
    use crate::iso::are_isomorphic;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn path(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &edges)
    }

    fn cycle(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn identity_mapping_yields_empty_script() {
        let g = cycle(4);
        let mapping: Vec<Option<VertexId>> = g.vertices().map(Some).collect();
        let script = edit_script(&g, &g, &mapping);
        assert!(script.is_empty());
        let out = apply_edit_script(&g, &script).unwrap();
        assert!(are_isomorphic(&out, &g));
    }

    #[test]
    fn script_transforms_path_into_cycle() {
        let a = path(5);
        let b = cycle(5);
        let (_, mapping) = ged_upper_bound_mapping(&a, &b);
        let script = edit_script(&a, &b, &mapping);
        let out = apply_edit_script(&a, &script).unwrap();
        assert!(are_isomorphic(&out, &b), "edit path must land on b");
    }

    #[test]
    fn script_length_equals_induced_cost() {
        let a = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2)]);
        let b = Graph::from_parts(&[l(0), l(9), l(2), l(3)], &[(0, 1), (1, 2), (2, 3)]);
        let (cost, mapping) = ged_upper_bound_mapping(&a, &b);
        let script = edit_script(&a, &b, &mapping);
        assert_eq!(script.len(), cost);
        let out = apply_edit_script(&a, &script).unwrap();
        assert!(are_isomorphic(&out, &b));
    }

    #[test]
    fn deleting_connected_vertex_fails() {
        let g = path(3);
        let script = vec![EditOp::DeleteVertex(VertexId(1))];
        assert_eq!(
            apply_edit_script(&g, &script).unwrap_err(),
            EditError::VertexNotIsolated
        );
    }

    #[test]
    fn invalid_ops_are_rejected() {
        let g = path(3);
        assert_eq!(
            apply_edit_script(&g, &[EditOp::DeleteEdge(VertexId(0), VertexId(2))]).unwrap_err(),
            EditError::BadEdge
        );
        assert_eq!(
            apply_edit_script(
                &g,
                &[EditOp::InsertEdge(
                    EditEndpoint::Source(VertexId(0)),
                    EditEndpoint::Source(VertexId(1))
                )]
            )
            .unwrap_err(),
            EditError::BadEdge // duplicate edge
        );
        assert_eq!(
            apply_edit_script(&g, &[EditOp::Relabel(VertexId(9), l(1))]).unwrap_err(),
            EditError::MissingVertex
        );
    }

    #[test]
    fn random_pairs_round_trip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let mk = |rng: &mut rand::rngs::StdRng| {
                let n = rng.gen_range(2..6);
                let mut g = Graph::new();
                for _ in 0..n {
                    g.add_vertex(l(rng.gen_range(0..2)));
                }
                for i in 1..n as u32 {
                    let j = rng.gen_range(0..i);
                    g.add_edge(VertexId(i), VertexId(j)).unwrap();
                }
                g
            };
            let a = mk(&mut rng);
            let b = mk(&mut rng);
            let (cost, mapping) = ged_upper_bound_mapping(&a, &b);
            let script = edit_script(&a, &b, &mapping);
            assert_eq!(script.len(), cost);
            let out = apply_edit_script(&a, &script).unwrap();
            assert!(are_isomorphic(&out, &b));
        }
    }
}
