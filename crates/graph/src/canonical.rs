//! Canonical forms for labeled free trees (§4.1, Fig. 5).
//!
//! Frequent subtrees are represented as canonical strings in two steps:
//! (1) canonical-tree generation via bottom-up normalization (the AHU tree
//! isomorphism ordering [1]), and (2) conversion to a breadth-first
//! canonical string where `$` partitions families of siblings and `#`
//! terminates the string — exactly the encoding of Fig. 5 (all edges carry
//! the implicit label `1`).
//!
//! Free (unrooted) trees are canonicalized by rooting at their center; for
//! even-diameter trees with two centers, both rootings are encoded and the
//! lexicographically smaller token sequence wins.
//!
//! **Injectivity note.** Fig. 5 renders a family only for nodes that have
//! children, which is ambiguous: `A(B(D), C)` and `A(B, C(D))` would both
//! print `A$1B1C$1D#`. The token stream here therefore emits one `$`
//! family per BFS node — empty for leaves — with redundant trailing empty
//! families trimmed; this makes the encoding decodable (hence injective on
//! isomorphism classes), which the frequent-subtree dedup relies on.
//! [`CanonicalTree::display_compact`] reproduces the paper's exact (lossy)
//! rendering for presentation.

use crate::components::{is_tree, tree_centers};
use crate::graph::{Graph, VertexId};
use crate::labels::LabelInterner;

/// Token stream of a canonical string.
///
/// Tokens are ordered integers so canonical forms compare and hash
/// cheaply: `SEP` < `END` < any label token.
pub type CanonTokens = Vec<u32>;

/// The `$` family separator token.
pub const TOK_SEP: u32 = 0;
/// The `#` terminator token.
pub const TOK_END: u32 = 1;
/// Encode a label id as a token.
#[inline]
pub fn label_token(label: crate::labels::Label) -> u32 {
    label.0 + 2
}

/// A canonicalized labeled tree.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalTree {
    /// The breadth-first canonical token stream (Fig. 5 format).
    pub tokens: CanonTokens,
}

impl CanonicalTree {
    /// Render the full (injective) token stream, e.g. `A$1B1C$$1D#`,
    /// resolving labels through `interner` when possible. Empty families
    /// appear as consecutive `$`.
    pub fn display(&self, interner: &LabelInterner) -> String {
        let mut out = String::new();
        let mut first = true;
        for &t in &self.tokens {
            match t {
                TOK_SEP => out.push('$'),
                TOK_END => out.push('#'),
                _ => {
                    if !first {
                        out.push('1'); // implicit edge label
                    }
                    let label = crate::labels::Label(t - 2);
                    out.push_str(&interner.display(label));
                }
            }
            first = false;
        }
        out
    }

    /// Render in the paper's exact Fig. 5 notation (empty families elided),
    /// e.g. `A$1B1B1B$1C1D$1D$1F1G$1E$1E#`. Lossy: for display only.
    pub fn display_compact(&self, interner: &LabelInterner) -> String {
        let mut out = String::new();
        let mut at_family_start = false;
        let mut first = true;
        for &t in &self.tokens {
            match t {
                TOK_SEP => at_family_start = true,
                TOK_END => out.push('#'),
                _ => {
                    if at_family_start {
                        out.push('$');
                        out.push('1');
                        at_family_start = false;
                    } else if !first {
                        out.push('1');
                    }
                    let label = crate::labels::Label(t - 2);
                    out.push_str(&interner.display(label));
                }
            }
            first = false;
        }
        out
    }
}

/// Recursive AHU-style subtree encoding used to order children.
/// Children are sorted by their own encoding, making the result invariant
/// under sibling permutation.
fn subtree_encoding(g: &Graph, v: VertexId, parent: Option<VertexId>) -> Vec<u32> {
    let mut kids: Vec<Vec<u32>> = g
        .neighbors(v)
        .iter()
        .filter(|&&(w, _)| Some(w) != parent)
        .map(|&(w, _)| subtree_encoding(g, w, Some(v)))
        .collect();
    kids.sort_unstable();
    let mut enc = vec![label_token(g.label(v)), u32::MAX]; // open marker
    for k in kids {
        enc.extend(k);
    }
    enc.push(u32::MAX - 1); // close marker
    enc
}

/// Emit the Fig. 5 breadth-first canonical string for the tree rooted at
/// `root`, with children visited in canonical (encoding) order.
fn bfs_tokens(g: &Graph, root: VertexId) -> CanonTokens {
    let mut tokens = vec![label_token(g.label(root))];
    // Queue holds (vertex, parent) in BFS order.
    let mut queue = std::collections::VecDeque::new();
    queue.push_back((root, None::<VertexId>));
    while let Some((v, parent)) = queue.pop_front() {
        let mut kids: Vec<(Vec<u32>, VertexId)> = g
            .neighbors(v)
            .iter()
            .filter(|&&(w, _)| Some(w) != parent)
            .map(|&(w, _)| (subtree_encoding(g, w, Some(v)), w))
            .collect();
        kids.sort_unstable();
        // One family per BFS node — empty for leaves — so the stream is
        // decodable (see the module-level injectivity note).
        tokens.push(TOK_SEP);
        for (_, w) in kids {
            tokens.push(label_token(g.label(w)));
            queue.push_back((w, Some(v)));
        }
    }
    // Trailing empty families belong to the deepest leaves and carry no
    // information; trim them for compactness.
    while tokens.last() == Some(&TOK_SEP) {
        tokens.pop();
    }
    tokens.push(TOK_END);
    tokens
}

/// Canonicalize a labeled free tree.
///
/// # Panics
/// Panics if `g` is not a tree (connected, `|E| = |V| - 1`, `|V| ≥ 1`).
pub fn canonical_tree(g: &Graph) -> CanonicalTree {
    assert!(is_tree(g), "canonical_tree requires a tree");
    // The `is_tree` assertion above guarantees a non-empty connected graph,
    // which always has one or two centers.
    #[allow(clippy::expect_used)]
    let tokens = tree_centers(g)
        .into_iter()
        .map(|c| bfs_tokens(g, c))
        .min()
        .expect("trees have at least one center");
    CanonicalTree { tokens }
}

/// Canonical token stream of a tree (convenience wrapper).
pub fn canonical_tokens(g: &Graph) -> CanonTokens {
    canonical_tree(g).tokens
}

/// Work cap for [`canonical_form`]: maximum color-refinement passes across
/// the whole individualization tree. Molecule-scale graphs finish in a
/// handful of passes; the cap only exists so pathologically symmetric
/// inputs (large cliques) degrade to the non-canonical fallback encoding
/// instead of exploding factorially.
const CANON_WORK_CAP: usize = 10_000;

/// Marker token prefixing the fallback (identity-order) encoding emitted
/// when [`CANON_WORK_CAP`] trips. Canonical encodings start with the
/// vertex count, which is always < `u32::MAX`, so the two families of
/// encodings can never collide.
const TOK_FALLBACK: u32 = u32::MAX;

/// Canonical form of an arbitrary labeled graph.
///
/// Unlike [`canonical_tree`] this accepts any simple labeled graph
/// (cyclic, disconnected, empty). Two graphs receive equal token streams
/// **iff** they are isomorphic — the memoized similarity cache in fine
/// clustering keys on this, so both directions matter:
///
/// * *soundness* (equal form ⇒ isomorphic): the stream encodes the full
///   vertex-label sequence and edge list under some vertex ordering, so
///   equal streams exhibit an explicit isomorphism;
/// * *completeness* (isomorphic ⇒ equal form): the ordering is chosen by
///   1-WL color refinement plus individualization-refinement branching
///   over every member of the first non-singleton color class, taking the
///   lexicographically least leaf encoding — an isomorphism-invariant
///   choice.
///
/// If the refinement work cap trips (only on inputs far more symmetric
/// than molecule graphs), the graph falls back to a marker-prefixed
/// identity-order encoding: still deterministic and still sound (equal
/// fallback encodings are structurally identical graphs), merely no longer
/// complete. Cache keying stays correct either way.
pub fn canonical_form(g: &Graph) -> CanonTokens {
    let n = g.vertex_count();
    if n == 0 {
        return vec![0, 0];
    }
    // Initial colors: rank of each vertex label among the distinct labels.
    let mut distinct = g.sorted_labels();
    distinct.dedup();
    let colors: Vec<u32> = g
        .vertices()
        .map(|v| {
            // `distinct` contains every label of `g`, so the search
            // always succeeds; 0 keeps the kernel panic-free regardless.
            distinct.binary_search(&g.label(v)).map_or(0, |i| i as u32)
        })
        .collect();
    let mut c = Canonizer {
        g,
        work: CANON_WORK_CAP,
        best: None,
        exhausted: false,
    };
    c.search(colors);
    match (c.exhausted, c.best) {
        (false, Some(best)) => best,
        _ => {
            // Fallback: identity-order encoding behind a marker token.
            let identity: Vec<u32> = (0..n as u32).collect();
            let mut enc = vec![TOK_FALLBACK];
            enc.extend(encode_under(g, &identity));
            enc
        }
    }
}

struct Canonizer<'a> {
    g: &'a Graph,
    work: usize,
    best: Option<CanonTokens>,
    exhausted: bool,
}

impl<'a> Canonizer<'a> {
    /// Refine `colors` to the stable 1-WL partition: each pass re-ranks
    /// vertices by `(color, sorted neighbor colors)` until the class count
    /// stops growing.
    fn refine(&mut self, colors: &mut [u32]) {
        let n = colors.len();
        loop {
            if self.work == 0 {
                self.exhausted = true;
                return;
            }
            self.work -= 1;
            let mut old = colors.to_vec();
            old.sort_unstable();
            old.dedup();
            let old_classes = old.len();
            let sigs: Vec<(u32, Vec<u32>)> = self
                .g
                .vertices()
                .map(|v| {
                    let mut nb: Vec<u32> = self
                        .g
                        .neighbors(v)
                        .iter()
                        .map(|&(w, _)| colors[w.index()])
                        .collect();
                    nb.sort_unstable();
                    (colors[v.index()], nb)
                })
                .collect();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&x, &y| sigs[x].cmp(&sigs[y]));
            let mut rank = 0u32;
            for i in 0..n {
                if i > 0 && sigs[order[i]] != sigs[order[i - 1]] {
                    rank += 1;
                }
                colors[order[i]] = rank;
            }
            if rank as usize + 1 == old_classes {
                return;
            }
        }
    }

    /// Individualization-refinement: refine, then branch on every member
    /// of the first non-singleton class, keeping the least leaf encoding.
    fn search(&mut self, mut colors: Vec<u32>) {
        self.refine(&mut colors);
        if self.exhausted {
            return;
        }
        // Find the smallest color value held by more than one vertex.
        let mut count_of = vec![0u32; colors.len()];
        for &c in &colors {
            count_of[c as usize] += 1;
        }
        match count_of.iter().position(|&k| k > 1) {
            None => {
                // Discrete coloring: `colors[v]` is v's canonical position.
                let enc = encode_under(self.g, &colors);
                if self.best.as_ref().is_none_or(|b| enc < *b) {
                    self.best = Some(enc);
                }
            }
            Some(target) => {
                for v in 0..colors.len() {
                    if colors[v] != target as u32 {
                        continue;
                    }
                    let mut child = colors.clone();
                    // A color above every rank individualizes v; the next
                    // refine pass re-ranks the palette to 0..k.
                    child[v] = u32::MAX - 1;
                    self.search(child);
                    if self.exhausted {
                        return;
                    }
                }
            }
        }
    }
}

/// Encode `g` under the vertex ordering given by `positions` (vertex `v`
/// goes to canonical position `positions[v]`, a permutation of `0..n`):
/// `[n, m, labels in position order…, sorted (lo, hi) edge positions…]`.
/// The fixed-width sections make the stream decodable, hence injective on
/// labeled adjacency structure.
fn encode_under(g: &Graph, positions: &[u32]) -> CanonTokens {
    let n = g.vertex_count();
    let mut perm: Vec<u32> = vec![0; n];
    for (v, &p) in positions.iter().enumerate() {
        if let Some(slot) = perm.get_mut(p as usize) {
            *slot = v as u32;
        }
    }
    let mut tokens = Vec::with_capacity(2 + n + 2 * g.edge_count());
    tokens.push(n as u32);
    tokens.push(g.edge_count() as u32);
    for &v in &perm {
        tokens.push(label_token(g.label(VertexId(v))));
    }
    let mut edges: Vec<(u32, u32)> = g
        .edges()
        .map(|(_, e)| {
            let (pu, pv) = (positions[e.u.index()], positions[e.v.index()]);
            (pu.min(pv), pu.max(pv))
        })
        .collect();
    edges.sort_unstable();
    for (lo, hi) in edges {
        tokens.push(lo);
        tokens.push(hi);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    #[test]
    fn single_vertex() {
        let mut g = Graph::new();
        g.add_vertex(l(7));
        let c = canonical_tree(&g);
        assert_eq!(c.tokens, vec![label_token(l(7)), TOK_END]);
    }

    #[test]
    fn invariant_under_renumbering() {
        // Star with center label 0 and leaves 1,2,3 in two different orders.
        let a = Graph::from_parts(&[l(0), l(1), l(2), l(3)], &[(0, 1), (0, 2), (0, 3)]);
        let b = Graph::from_parts(&[l(3), l(0), l(1), l(2)], &[(1, 0), (1, 3), (1, 2)]);
        assert_eq!(canonical_tree(&a), canonical_tree(&b));
    }

    #[test]
    fn distinguishes_structures() {
        // Path of 4 vs star of 4, same labels.
        let p = Graph::from_parts(&[l(0); 4], &[(0, 1), (1, 2), (2, 3)]);
        let s = Graph::from_parts(&[l(0); 4], &[(0, 1), (0, 2), (0, 3)]);
        assert_ne!(canonical_tree(&p), canonical_tree(&s));
    }

    #[test]
    fn distinguishes_labels() {
        let a = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        let b = Graph::from_parts(&[l(0), l(2)], &[(0, 1)]);
        assert_ne!(canonical_tree(&a), canonical_tree(&b));
    }

    #[test]
    fn two_center_path_is_stable() {
        // Even path: two centers; both orders must give the same result.
        let a = Graph::from_parts(&[l(0), l(1), l(2), l(3)], &[(0, 1), (1, 2), (2, 3)]);
        let b = Graph::from_parts(&[l(3), l(2), l(1), l(0)], &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(canonical_tree(&a), canonical_tree(&b));
    }

    #[test]
    fn display_matches_paper_notation() {
        let mut it = LabelInterner::new();
        let a = it.intern("A");
        let b = it.intern("B");
        // A with two B children.
        let g = Graph::from_parts(&[a, b, b], &[(0, 1), (0, 2)]);
        let c = canonical_tree(&g);
        assert_eq!(c.display(&it), "A$1B1B#");
    }

    #[test]
    fn paper_figure5_shape() {
        // Reconstruct the Fig. 5 tree: root A; children B,B,B;
        // B1 -> {C, D(->E)}, B2 -> {D(->E)}, B3 -> {F, G}.
        let mut it = LabelInterner::new();
        let (a, b, c, d, e, f, g_) = (
            it.intern("A"),
            it.intern("B"),
            it.intern("C"),
            it.intern("D"),
            it.intern("E"),
            it.intern("F"),
            it.intern("G"),
        );
        let labels = [a, b, b, b, c, d, d, e, e, f, g_];
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 4),  // B1-C
            (1, 5),  // B1-D
            (5, 7),  // D-E
            (2, 6),  // B2-D
            (6, 8),  // D-E
            (3, 9),  // B3-F
            (3, 10), // B3-G
        ];
        let t = Graph::from_parts(&labels, &edges);
        let canon = canonical_tree(&t);
        // The paper's (lossy) Fig. 5 rendering:
        assert_eq!(canon.display_compact(&it), "A$1B1B1B$1C1D$1D$1F1G$1E$1E#");
        // The injective stream additionally shows C's empty family:
        assert_eq!(canon.display(&it), "A$1B1B1B$1C1D$1D$1F1G$$1E$1E#");
    }

    #[test]
    #[should_panic(expected = "requires a tree")]
    fn rejects_cycles() {
        let g = Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2), (0, 2)]);
        canonical_tree(&g);
    }

    /// Apply the vertex permutation `perm` (old id -> new id) to `g`.
    fn permuted(g: &Graph, perm: &[u32]) -> Graph {
        let mut labels = vec![l(0); g.vertex_count()];
        for v in g.vertices() {
            labels[perm[v.index()] as usize] = g.label(v);
        }
        let edges: Vec<(u32, u32)> = g
            .edges()
            .map(|(_, e)| (perm[e.u.index()], perm[e.v.index()]))
            .collect();
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn canonical_form_handles_cycles_and_empty() {
        assert_eq!(canonical_form(&Graph::new()), vec![0, 0]);
        let c3 = Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2), (0, 2)]);
        let c3b = Graph::from_parts(&[l(0); 3], &[(2, 1), (0, 2), (1, 0)]);
        assert_eq!(canonical_form(&c3), canonical_form(&c3b));
    }

    #[test]
    fn canonical_form_invariant_under_permutation() {
        // A labeled fused-ring molecule-like graph, renumbered many ways.
        let g = Graph::from_parts(
            &[l(0), l(0), l(1), l(0), l(2), l(0), l(1)],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 3),
            ],
        );
        let base = canonical_form(&g);
        let perms: [[u32; 7]; 4] = [
            [6, 5, 4, 3, 2, 1, 0],
            [2, 0, 6, 1, 5, 3, 4],
            [1, 2, 3, 4, 5, 6, 0],
            [3, 6, 0, 5, 1, 4, 2],
        ];
        for perm in perms {
            let h = permuted(&g, &perm);
            assert!(crate::iso::are_isomorphic(&g, &h));
            assert_eq!(canonical_form(&h), base, "perm {perm:?} changed the form");
        }
    }

    #[test]
    fn canonical_form_separates_non_isomorphic() {
        // Same degree sequence and label multiset, different structure:
        // C6 vs two triangles.
        let c6 = Graph::from_parts(
            &[l(0); 6],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        let tt = Graph::from_parts(
            &[l(0); 6],
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
        );
        assert_ne!(canonical_form(&c6), canonical_form(&tt));
        // Label placement matters: N at distance 1 vs 2 from the O.
        let a = Graph::from_parts(&[l(1), l(2), l(0), l(0)], &[(0, 1), (1, 2), (2, 3)]);
        let b = Graph::from_parts(&[l(1), l(0), l(2), l(0)], &[(0, 1), (1, 2), (2, 3)]);
        assert_ne!(canonical_form(&a), canonical_form(&b));
    }

    #[test]
    fn canonical_form_agrees_with_isomorphism_on_random_molecules() {
        // Cross-check the iff contract against the VF2 matcher over a
        // repository with many isomorphic duplicates (small generator).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let mut graphs = Vec::new();
        for _ in 0..24 {
            let n = rng.gen_range(3..8);
            let mut gg = Graph::new();
            for _ in 0..n {
                gg.add_vertex(l(rng.gen_range(0..3)));
            }
            // Random spanning path plus a few chords keeps it connected.
            for i in 1..n {
                let p = rng.gen_range(0..i);
                let _ = gg.add_edge(VertexId(p), VertexId(i));
            }
            for _ in 0..rng.gen_range(0..3u32) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    let _ = gg.ensure_edge(VertexId(u), VertexId(v));
                }
            }
            graphs.push(gg);
        }
        for i in 0..graphs.len() {
            for jj in (i + 1)..graphs.len() {
                let same_form = canonical_form(&graphs[i]) == canonical_form(&graphs[jj]);
                let iso = crate::iso::are_isomorphic(&graphs[i], &graphs[jj]);
                assert_eq!(same_form, iso, "form/iso disagree on pair ({i}, {jj})");
            }
        }
    }
}
