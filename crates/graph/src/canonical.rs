//! Canonical forms for labeled free trees (§4.1, Fig. 5).
//!
//! Frequent subtrees are represented as canonical strings in two steps:
//! (1) canonical-tree generation via bottom-up normalization (the AHU tree
//! isomorphism ordering [1]), and (2) conversion to a breadth-first
//! canonical string where `$` partitions families of siblings and `#`
//! terminates the string — exactly the encoding of Fig. 5 (all edges carry
//! the implicit label `1`).
//!
//! Free (unrooted) trees are canonicalized by rooting at their center; for
//! even-diameter trees with two centers, both rootings are encoded and the
//! lexicographically smaller token sequence wins.
//!
//! **Injectivity note.** Fig. 5 renders a family only for nodes that have
//! children, which is ambiguous: `A(B(D), C)` and `A(B, C(D))` would both
//! print `A$1B1C$1D#`. The token stream here therefore emits one `$`
//! family per BFS node — empty for leaves — with redundant trailing empty
//! families trimmed; this makes the encoding decodable (hence injective on
//! isomorphism classes), which the frequent-subtree dedup relies on.
//! [`CanonicalTree::display_compact`] reproduces the paper's exact (lossy)
//! rendering for presentation.

use crate::components::{is_tree, tree_centers};
use crate::graph::{Graph, VertexId};
use crate::labels::LabelInterner;

/// Token stream of a canonical string.
///
/// Tokens are ordered integers so canonical forms compare and hash
/// cheaply: `SEP` < `END` < any label token.
pub type CanonTokens = Vec<u32>;

/// The `$` family separator token.
pub const TOK_SEP: u32 = 0;
/// The `#` terminator token.
pub const TOK_END: u32 = 1;
/// Encode a label id as a token.
#[inline]
pub fn label_token(label: crate::labels::Label) -> u32 {
    label.0 + 2
}

/// A canonicalized labeled tree.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalTree {
    /// The breadth-first canonical token stream (Fig. 5 format).
    pub tokens: CanonTokens,
}

impl CanonicalTree {
    /// Render the full (injective) token stream, e.g. `A$1B1C$$1D#`,
    /// resolving labels through `interner` when possible. Empty families
    /// appear as consecutive `$`.
    pub fn display(&self, interner: &LabelInterner) -> String {
        let mut out = String::new();
        let mut first = true;
        for &t in &self.tokens {
            match t {
                TOK_SEP => out.push('$'),
                TOK_END => out.push('#'),
                _ => {
                    if !first {
                        out.push('1'); // implicit edge label
                    }
                    let label = crate::labels::Label(t - 2);
                    out.push_str(&interner.display(label));
                }
            }
            first = false;
        }
        out
    }

    /// Render in the paper's exact Fig. 5 notation (empty families elided),
    /// e.g. `A$1B1B1B$1C1D$1D$1F1G$1E$1E#`. Lossy: for display only.
    pub fn display_compact(&self, interner: &LabelInterner) -> String {
        let mut out = String::new();
        let mut at_family_start = false;
        let mut first = true;
        for &t in &self.tokens {
            match t {
                TOK_SEP => at_family_start = true,
                TOK_END => out.push('#'),
                _ => {
                    if at_family_start {
                        out.push('$');
                        out.push('1');
                        at_family_start = false;
                    } else if !first {
                        out.push('1');
                    }
                    let label = crate::labels::Label(t - 2);
                    out.push_str(&interner.display(label));
                }
            }
            first = false;
        }
        out
    }
}

/// Recursive AHU-style subtree encoding used to order children.
/// Children are sorted by their own encoding, making the result invariant
/// under sibling permutation.
fn subtree_encoding(g: &Graph, v: VertexId, parent: Option<VertexId>) -> Vec<u32> {
    let mut kids: Vec<Vec<u32>> = g
        .neighbors(v)
        .iter()
        .filter(|&&(w, _)| Some(w) != parent)
        .map(|&(w, _)| subtree_encoding(g, w, Some(v)))
        .collect();
    kids.sort_unstable();
    let mut enc = vec![label_token(g.label(v)), u32::MAX]; // open marker
    for k in kids {
        enc.extend(k);
    }
    enc.push(u32::MAX - 1); // close marker
    enc
}

/// Emit the Fig. 5 breadth-first canonical string for the tree rooted at
/// `root`, with children visited in canonical (encoding) order.
fn bfs_tokens(g: &Graph, root: VertexId) -> CanonTokens {
    let mut tokens = vec![label_token(g.label(root))];
    // Queue holds (vertex, parent) in BFS order.
    let mut queue = std::collections::VecDeque::new();
    queue.push_back((root, None::<VertexId>));
    while let Some((v, parent)) = queue.pop_front() {
        let mut kids: Vec<(Vec<u32>, VertexId)> = g
            .neighbors(v)
            .iter()
            .filter(|&&(w, _)| Some(w) != parent)
            .map(|&(w, _)| (subtree_encoding(g, w, Some(v)), w))
            .collect();
        kids.sort_unstable();
        // One family per BFS node — empty for leaves — so the stream is
        // decodable (see the module-level injectivity note).
        tokens.push(TOK_SEP);
        for (_, w) in kids {
            tokens.push(label_token(g.label(w)));
            queue.push_back((w, Some(v)));
        }
    }
    // Trailing empty families belong to the deepest leaves and carry no
    // information; trim them for compactness.
    while tokens.last() == Some(&TOK_SEP) {
        tokens.pop();
    }
    tokens.push(TOK_END);
    tokens
}

/// Canonicalize a labeled free tree.
///
/// # Panics
/// Panics if `g` is not a tree (connected, `|E| = |V| - 1`, `|V| ≥ 1`).
pub fn canonical_tree(g: &Graph) -> CanonicalTree {
    assert!(is_tree(g), "canonical_tree requires a tree");
    // The `is_tree` assertion above guarantees a non-empty connected graph,
    // which always has one or two centers.
    #[allow(clippy::expect_used)]
    let tokens = tree_centers(g)
        .into_iter()
        .map(|c| bfs_tokens(g, c))
        .min()
        .expect("trees have at least one center");
    CanonicalTree { tokens }
}

/// Canonical token stream of a tree (convenience wrapper).
pub fn canonical_tokens(g: &Graph) -> CanonTokens {
    canonical_tree(g).tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    #[test]
    fn single_vertex() {
        let mut g = Graph::new();
        g.add_vertex(l(7));
        let c = canonical_tree(&g);
        assert_eq!(c.tokens, vec![label_token(l(7)), TOK_END]);
    }

    #[test]
    fn invariant_under_renumbering() {
        // Star with center label 0 and leaves 1,2,3 in two different orders.
        let a = Graph::from_parts(&[l(0), l(1), l(2), l(3)], &[(0, 1), (0, 2), (0, 3)]);
        let b = Graph::from_parts(&[l(3), l(0), l(1), l(2)], &[(1, 0), (1, 3), (1, 2)]);
        assert_eq!(canonical_tree(&a), canonical_tree(&b));
    }

    #[test]
    fn distinguishes_structures() {
        // Path of 4 vs star of 4, same labels.
        let p = Graph::from_parts(&[l(0); 4], &[(0, 1), (1, 2), (2, 3)]);
        let s = Graph::from_parts(&[l(0); 4], &[(0, 1), (0, 2), (0, 3)]);
        assert_ne!(canonical_tree(&p), canonical_tree(&s));
    }

    #[test]
    fn distinguishes_labels() {
        let a = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        let b = Graph::from_parts(&[l(0), l(2)], &[(0, 1)]);
        assert_ne!(canonical_tree(&a), canonical_tree(&b));
    }

    #[test]
    fn two_center_path_is_stable() {
        // Even path: two centers; both orders must give the same result.
        let a = Graph::from_parts(&[l(0), l(1), l(2), l(3)], &[(0, 1), (1, 2), (2, 3)]);
        let b = Graph::from_parts(&[l(3), l(2), l(1), l(0)], &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(canonical_tree(&a), canonical_tree(&b));
    }

    #[test]
    fn display_matches_paper_notation() {
        let mut it = LabelInterner::new();
        let a = it.intern("A");
        let b = it.intern("B");
        // A with two B children.
        let g = Graph::from_parts(&[a, b, b], &[(0, 1), (0, 2)]);
        let c = canonical_tree(&g);
        assert_eq!(c.display(&it), "A$1B1B#");
    }

    #[test]
    fn paper_figure5_shape() {
        // Reconstruct the Fig. 5 tree: root A; children B,B,B;
        // B1 -> {C, D(->E)}, B2 -> {D(->E)}, B3 -> {F, G}.
        let mut it = LabelInterner::new();
        let (a, b, c, d, e, f, g_) = (
            it.intern("A"),
            it.intern("B"),
            it.intern("C"),
            it.intern("D"),
            it.intern("E"),
            it.intern("F"),
            it.intern("G"),
        );
        let labels = [a, b, b, b, c, d, d, e, e, f, g_];
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 4),  // B1-C
            (1, 5),  // B1-D
            (5, 7),  // D-E
            (2, 6),  // B2-D
            (6, 8),  // D-E
            (3, 9),  // B3-F
            (3, 10), // B3-G
        ];
        let t = Graph::from_parts(&labels, &edges);
        let canon = canonical_tree(&t);
        // The paper's (lossy) Fig. 5 rendering:
        assert_eq!(canon.display_compact(&it), "A$1B1B1B$1C1D$1D$1F1G$1E$1E#");
        // The injective stream additionally shows C's empty family:
        assert_eq!(canon.display(&it), "A$1B1B1B$1C1D$1D$1F1G$$1E$1E#");
    }

    #[test]
    #[should_panic(expected = "requires a tree")]
    fn rejects_cycles() {
        let g = Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2), (0, 2)]);
        canonical_tree(&g);
    }
}
