//! Subgraph isomorphism and graph isomorphism.
//!
//! CATAPULT needs subgraph-isomorphism tests in several places: cluster
//! coverage of candidate patterns against CSGs (§5, using VF2 [14]),
//! coverage measures `scov`, and the step model of §6.1 (enumerating
//! non-overlapping pattern embeddings in a query).
//!
//! We implement a VF2-style backtracking matcher with label/degree pruning
//! and a connectivity-aware matching order. The default semantics is
//! *non-induced* subgraph isomorphism (monomorphism): every pattern edge
//! must map to a target edge, extra target edges are allowed — the standard
//! semantics of subgraph search in graph databases [36]. Induced matching
//! is available via [`MatchOptions::induced`].

use crate::bitadj::BitAdjacency;
use crate::budget::{BudgetMeter, Completeness, Kernel, SearchBudget};
use crate::graph::{Graph, VertexId};
use std::ops::ControlFlow;

/// Default backtracking-node cap for isomorphism searches; guards
/// pathological inputs when the caller's [`SearchBudget`] sets no cap.
pub const DEFAULT_NODE_CAP: u64 = 10_000_000;

/// Options controlling a subgraph isomorphism search.
#[derive(Clone, Debug)]
pub struct MatchOptions {
    /// Require induced embeddings (pattern non-edges map to target non-edges).
    pub induced: bool,
    /// Stop after this many embeddings have been reported. Stopping here is
    /// the caller's choice and still counts as an *exact* outcome.
    pub max_embeddings: usize,
    /// Execution budget. When a limit trips, the search stops early and
    /// [`MatchOutcome::completeness`] reports why; embeddings found up to
    /// that point have been reported normally.
    pub budget: SearchBudget,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            induced: false,
            max_embeddings: usize::MAX,
            budget: SearchBudget::nodes(DEFAULT_NODE_CAP),
        }
    }
}

/// Result metadata of an embedding enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchOutcome {
    /// Number of embeddings reported to the callback.
    pub embeddings: usize,
    /// Why the search stopped. [`Completeness::Exact`] means the search
    /// space was exhausted *or* the caller stopped it on purpose (callback
    /// `Break`, `max_embeddings` reached); degraded variants mean a budget
    /// limit cut enumeration short and further embeddings may exist.
    pub completeness: Completeness,
}

impl MatchOutcome {
    /// Whether enumeration was not cut short by a budget limit.
    pub fn is_exact(&self) -> bool {
        self.completeness.is_exact()
    }
}

struct Matcher<'a, F>
where
    F: FnMut(&[VertexId]) -> ControlFlow<()>,
{
    pattern: &'a Graph,
    target: &'a Graph,
    opts: MatchOptions,
    /// Pattern vertices in matching order.
    order: Vec<VertexId>,
    /// For order position i: pattern neighbors of order[i] that appear
    /// earlier in the order.
    back_neighbors: Vec<Vec<VertexId>>,
    /// For induced mode: earlier-ordered pattern vertices NOT adjacent to order[i].
    back_non_neighbors: Vec<Vec<VertexId>>,
    /// pattern vertex -> target vertex (or MAX)
    map: Vec<u32>,
    /// target vertex used?
    used: Vec<bool>,
    /// Bitset adjacency of the target: O(1) edge probes in `feasible`.
    tbits: BitAdjacency,
    /// Per-depth candidate buffers, reused across branches so the
    /// backtracking loop is allocation-free after warmup.
    scratch: Vec<Vec<VertexId>>,
    meter: BudgetMeter,
    found: usize,
    callback: F,
}

const UNMAPPED: u32 = u32::MAX;

/// Compute a connectivity-first matching order: start at the vertex whose
/// (label rarity in target, degree) makes it most selective, then repeatedly
/// append the unordered vertex with the most already-ordered neighbors
/// (ties broken by degree). Disconnected patterns are handled by restarting
/// at the most selective remaining vertex.
fn matching_order(pattern: &Graph, target: &Graph) -> Vec<VertexId> {
    let np = pattern.vertex_count();
    // Label frequency in target for selectivity.
    let mut freq = std::collections::HashMap::new();
    for v in target.vertices() {
        *freq.entry(target.label(v)).or_insert(0usize) += 1;
    }
    let selectivity = |v: VertexId| -> (usize, std::cmp::Reverse<usize>) {
        (
            *freq.get(&pattern.label(v)).unwrap_or(&0),
            std::cmp::Reverse(pattern.degree(v)),
        )
    };
    let mut in_order = vec![false; np];
    let mut order = Vec::with_capacity(np);
    while order.len() < np {
        // The while-guard (`order.len() < np`) implies an unordered vertex
        // remains, so the `else` arm is unreachable; breaking keeps this
        // kernel free of panicking paths.
        let Some(start) = pattern
            .vertices()
            .filter(|v| !in_order[v.index()])
            .min_by_key(|&v| selectivity(v))
        else {
            break;
        };
        in_order[start.index()] = true;
        order.push(start);
        loop {
            // Most-constrained next: max count of ordered neighbors.
            let next = pattern
                .vertices()
                .filter(|v| !in_order[v.index()])
                .map(|v| {
                    let c = pattern
                        .neighbors(v)
                        .iter()
                        .filter(|(w, _)| in_order[w.index()])
                        .count();
                    (c, pattern.degree(v), v)
                })
                .filter(|&(c, _, _)| c > 0)
                .max_by_key(|&(c, d, _)| (c, d));
            match next {
                Some((_, _, v)) => {
                    in_order[v.index()] = true;
                    order.push(v);
                }
                None => break, // component exhausted; outer loop restarts
            }
        }
    }
    order
}

impl<'a, F> Matcher<'a, F>
where
    F: FnMut(&[VertexId]) -> ControlFlow<()>,
{
    fn new(pattern: &'a Graph, target: &'a Graph, opts: MatchOptions, callback: F) -> Self {
        let order = matching_order(pattern, target);
        let np = pattern.vertex_count();
        let mut pos = vec![usize::MAX; np];
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        let mut back_neighbors = vec![Vec::new(); np];
        let mut back_non_neighbors = vec![Vec::new(); np];
        for (i, &v) in order.iter().enumerate() {
            for &(w, _) in pattern.neighbors(v) {
                if pos[w.index()] < i {
                    back_neighbors[i].push(w);
                }
            }
            if opts.induced {
                for (j, &w) in order.iter().enumerate().take(i) {
                    let _ = j;
                    if !pattern.has_edge(v, w) {
                        back_non_neighbors[i].push(w);
                    }
                }
            }
        }
        let meter = BudgetMeter::new(&opts.budget, Kernel::Iso);
        Matcher {
            pattern,
            target,
            opts,
            order,
            back_neighbors,
            back_non_neighbors,
            map: vec![UNMAPPED; np],
            used: vec![false; target.vertex_count()],
            tbits: BitAdjacency::new(target),
            scratch: vec![Vec::new(); np + 1],
            meter,
            found: 0,
            callback,
        }
    }

    fn feasible(&self, depth: usize, pv: VertexId, tv: VertexId) -> bool {
        if self.used[tv.index()] {
            return false;
        }
        if self.pattern.label(pv) != self.target.label(tv) {
            return false;
        }
        if self.pattern.degree(pv) > self.target.degree(tv) {
            return false;
        }
        for &bn in &self.back_neighbors[depth] {
            let mapped = VertexId(self.map[bn.index()]);
            if !self.tbits.has_edge(mapped, tv) {
                return false;
            }
        }
        if self.opts.induced {
            for &nn in &self.back_non_neighbors[depth] {
                let mapped = VertexId(self.map[nn.index()]);
                if self.tbits.has_edge(mapped, tv) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `Break` to stop the whole search.
    fn descend(&mut self, depth: usize) -> ControlFlow<()> {
        if depth == self.order.len() {
            self.found += 1;
            self.meter.note_improvement();
            let embedding: Vec<VertexId> = self.map.iter().map(|&t| VertexId(t)).collect();
            (self.callback)(&embedding)?;
            if self.found >= self.opts.max_embeddings {
                return ControlFlow::Break(());
            }
            return ControlFlow::Continue(());
        }
        if self.meter.tick() {
            return ControlFlow::Break(());
        }
        let pv = self.order[depth];
        let mut candidates = std::mem::take(&mut self.scratch[depth]);
        candidates.clear();
        if let Some(&anchor) = self.back_neighbors[depth].first() {
            // Candidates restricted to target-neighbors of the mapped anchor.
            let mapped = VertexId(self.map[anchor.index()]);
            candidates.extend(self.target.neighbors(mapped).iter().map(|&(w, _)| w));
        } else {
            candidates.extend(self.target.vertices());
        }
        for ci in 0..candidates.len() {
            let tv = candidates[ci];
            if self.feasible(depth, pv, tv) {
                self.assign(pv, tv);
                let flow = self.descend(depth + 1);
                self.unassign(pv, tv);
                if flow.is_break() {
                    self.scratch[depth] = candidates;
                    return flow;
                }
            }
        }
        self.scratch[depth] = candidates;
        ControlFlow::Continue(())
    }

    #[inline]
    fn assign(&mut self, pv: VertexId, tv: VertexId) {
        self.map[pv.index()] = tv.0;
        self.used[tv.index()] = true;
    }

    #[inline]
    fn unassign(&mut self, pv: VertexId, tv: VertexId) {
        self.map[pv.index()] = UNMAPPED;
        self.used[tv.index()] = false;
    }
}

/// Quick necessary conditions for `pattern ⊆ target` (monomorphism):
/// size bounds, edge-label multiset containment (a vertex-injective map is
/// edge-injective, so every pattern edge label must be matched by a
/// distinct target edge with the same label), and per-label degree
/// dominance (the i-th largest pattern degree within each label class must
/// not exceed the i-th largest target degree in that class — if it did,
/// more pattern vertices would need high-degree images than exist).
fn quick_reject(pattern: &Graph, target: &Graph) -> bool {
    if pattern.vertex_count() > target.vertex_count() || pattern.edge_count() > target.edge_count()
    {
        return true;
    }
    // Edge-label multiset containment (sorted two-pointer sweep).
    let pe = pattern.sorted_edge_labels();
    let te = target.sorted_edge_labels();
    let mut j = 0usize;
    for l in &pe {
        while j < te.len() && te[j] < *l {
            j += 1;
        }
        if j == te.len() || te[j] != *l {
            return true;
        }
        j += 1;
    }
    // Per-label degree-sequence dominance (subsumes vertex-label multiset
    // containment: the length check is exactly the per-label count check).
    let mut pd: std::collections::BTreeMap<crate::labels::Label, Vec<usize>> = Default::default();
    for v in pattern.vertices() {
        pd.entry(pattern.label(v))
            .or_default()
            .push(pattern.degree(v));
    }
    let mut td: std::collections::BTreeMap<crate::labels::Label, Vec<usize>> = Default::default();
    for v in target.vertices() {
        td.entry(target.label(v))
            .or_default()
            .push(target.degree(v));
    }
    for (l, ps) in &mut pd {
        let Some(ts) = td.get_mut(l) else {
            return true;
        };
        if ps.len() > ts.len() {
            return true;
        }
        ps.sort_unstable_by(|a, b| b.cmp(a));
        ts.sort_unstable_by(|a, b| b.cmp(a));
        if ps.iter().zip(ts.iter()).any(|(p, t)| p > t) {
            return true;
        }
    }
    false
}

/// Enumerate embeddings of `pattern` in `target`, invoking `callback` with
/// each mapping (indexed by pattern vertex id, values are target vertex
/// ids). Return `ControlFlow::Break(())` from the callback to stop early.
pub fn for_each_embedding<F>(
    target: &Graph,
    pattern: &Graph,
    opts: MatchOptions,
    callback: F,
) -> MatchOutcome
where
    F: FnMut(&[VertexId]) -> ControlFlow<()>,
{
    if pattern.vertex_count() == 0 {
        // The empty pattern embeds trivially, once.
        let mut cb = callback;
        let _ = cb(&[]);
        return MatchOutcome {
            embeddings: 1,
            completeness: Completeness::Exact,
        };
    }
    if quick_reject(pattern, target) {
        return MatchOutcome {
            embeddings: 0,
            completeness: Completeness::Exact,
        };
    }
    let mut m = Matcher::new(pattern, target, opts, callback);
    let _ = m.descend(0);
    // A `Break` from the callback or the embedding cap leaves the meter
    // Exact: the caller got everything it asked for. Only a tripped budget
    // limit (exhaustion / deadline / cancellation) marks the result
    // degraded.
    MatchOutcome {
        embeddings: m.found,
        completeness: m.meter.status(),
    }
}

/// Whether `pattern` is subgraph-isomorphic to `target` (non-induced).
///
/// Runs under the default budget and swallows the completeness tag: a
/// budget-tripped search reports "not contained" even though an embedding
/// might exist past the cutoff. Call sites that must distinguish the two
/// use [`contains_tagged`] (`cargo xtask lint` enforces this outside
/// tests).
pub fn contains(target: &Graph, pattern: &Graph) -> bool {
    find_embedding(target, pattern).is_some()
}

/// Budgeted containment test: whether an embedding of `pattern` was found
/// in `target`, plus why the search stopped. `(false, Exact)` proves
/// non-containment; `(false, degraded)` only means no embedding was found
/// before the budget tripped.
pub fn contains_tagged(
    target: &Graph,
    pattern: &Graph,
    budget: &SearchBudget,
) -> (bool, Completeness) {
    let mut found = false;
    let out = for_each_embedding(
        target,
        pattern,
        MatchOptions {
            max_embeddings: 1,
            budget: budget.with_default_cap(DEFAULT_NODE_CAP),
            ..MatchOptions::default()
        },
        |_| {
            found = true;
            ControlFlow::Break(())
        },
    );
    (found, out.completeness)
}

/// Find one embedding of `pattern` in `target` (non-induced), as a mapping
/// pattern-vertex-id → target-vertex-id.
pub fn find_embedding(target: &Graph, pattern: &Graph) -> Option<Vec<VertexId>> {
    let mut result = None;
    for_each_embedding(
        target,
        pattern,
        MatchOptions {
            max_embeddings: 1,
            ..MatchOptions::default()
        },
        |emb| {
            result = Some(emb.to_vec());
            ControlFlow::Break(())
        },
    );
    result
}

/// Collect up to `cap` embeddings of `pattern` in `target` (non-induced).
pub fn embeddings(target: &Graph, pattern: &Graph, cap: usize) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    for_each_embedding(
        target,
        pattern,
        MatchOptions {
            max_embeddings: cap,
            ..MatchOptions::default()
        },
        |emb| {
            out.push(emb.to_vec());
            ControlFlow::Continue(())
        },
    );
    out
}

/// Exact graph isomorphism test.
///
/// Two simple graphs with equal `|V|` and `|E|` are isomorphic iff a
/// vertex-injective, edge-preserving map exists (the map is then a
/// bijection and edge counts force edge surjectivity).
///
/// Runs under the default budget and swallows the completeness tag; use
/// [`are_isomorphic_tagged`] where a budget-tripped "not isomorphic" must
/// be distinguishable from a proven one.
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    if a.invariant_signature() != b.invariant_signature() {
        return false;
    }
    contains(b, a)
}

/// Budgeted graph isomorphism test: the verdict plus why the underlying
/// search stopped. Invariant-based rejections are always `Exact`.
pub fn are_isomorphic_tagged(a: &Graph, b: &Graph, budget: &SearchBudget) -> (bool, Completeness) {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return (false, Completeness::Exact);
    }
    if a.invariant_signature() != b.invariant_signature() {
        return (false, Completeness::Exact);
    }
    contains_tagged(b, a, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn triangle() -> Graph {
        Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2), (0, 2)])
    }

    fn path(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn triangle_contains_path2_not_vice_versa() {
        let t = triangle();
        let p = path(3);
        assert!(contains(&t, &p));
        assert!(!contains(&p, &t));
    }

    #[test]
    fn self_containment() {
        let t = triangle();
        assert!(contains(&t, &t));
        assert!(are_isomorphic(&t, &t));
    }

    #[test]
    fn labels_block_matching() {
        let a = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        let b = Graph::from_parts(&[l(0), l(2)], &[(0, 1)]);
        assert!(!contains(&b, &a));
    }

    #[test]
    fn induced_vs_monomorphism() {
        // pattern: path of 3; target: triangle. Non-induced: yes. Induced: no
        // (the two path endpoints map to adjacent target vertices).
        let t = triangle();
        let p = path(3);
        let non_induced =
            for_each_embedding(&t, &p, MatchOptions::default(), |_| ControlFlow::Break(()));
        assert_eq!(non_induced.embeddings, 1);
        let induced = for_each_embedding(
            &t,
            &p,
            MatchOptions {
                induced: true,
                ..MatchOptions::default()
            },
            |_| ControlFlow::Break(()),
        );
        assert_eq!(induced.embeddings, 0);
    }

    #[test]
    fn counts_all_embeddings_of_edge_in_triangle() {
        // single labeled edge into unlabeled triangle: 3 edges × 2 directions.
        let e = path(2);
        let t = triangle();
        assert_eq!(embeddings(&t, &e, usize::MAX).len(), 6);
    }

    #[test]
    fn embedding_preserves_edges_and_labels() {
        let t = Graph::from_parts(&[l(0), l(1), l(0), l(2)], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let p = Graph::from_parts(&[l(1), l(0)], &[(0, 1)]);
        for emb in embeddings(&t, &p, usize::MAX) {
            assert_eq!(t.label(emb[0]), l(1));
            assert_eq!(t.label(emb[1]), l(0));
            assert!(t.has_edge(emb[0], emb[1]));
        }
    }

    #[test]
    fn quick_reject_on_labels() {
        let p = Graph::from_parts(&[l(9), l(9)], &[(0, 1)]);
        let t = triangle();
        assert!(!contains(&t, &p));
    }

    #[test]
    fn quick_reject_on_edge_labels() {
        // Vertex-label multisets are compatible ({0,0,1} ⊆ {0,0,1}), but
        // the pattern needs a (0,0) edge the target does not have.
        let p = Graph::from_parts(&[l(0), l(0), l(1)], &[(0, 1), (1, 2)]);
        let t = Graph::from_parts(&[l(0), l(1), l(0)], &[(0, 1), (1, 2)]);
        assert!(quick_reject(&p, &t));
        assert!(!contains(&t, &p));
        // Flip the middle label and containment holds again.
        let t2 = Graph::from_parts(&[l(0), l(0), l(1)], &[(0, 1), (1, 2)]);
        assert!(!quick_reject(&p, &t2));
        assert!(contains(&t2, &p));
    }

    #[test]
    fn quick_reject_on_degree_dominance() {
        // Star K1,3 into a path of 4: same labels, same counts, same edge
        // labels, but the star's center needs degree 3 and the path tops
        // out at 2 — rejected without any search.
        let star = Graph::from_parts(&[l(0); 4], &[(0, 1), (0, 2), (0, 3)]);
        let p4 = path(4);
        assert!(quick_reject(&star, &p4));
        assert!(!contains(&p4, &star));
        // The reverse is also rejected by dominance alone: the path needs
        // two degree-2 images and the star has only one such vertex.
        assert!(quick_reject(&p4, &star));
        assert!(!contains(&star, &p4));
        // A shape that survives all pre-filters still reaches the search.
        assert!(!quick_reject(&path(3), &p4));
        assert!(contains(&p4, &path(3)));
    }

    #[test]
    fn disconnected_pattern_matches() {
        // Two isolated labeled edges into a path of 5.
        let p = Graph::from_parts(&[l(0); 4], &[(0, 1), (2, 3)]);
        let t = path(5);
        assert!(contains(&t, &p));
        // ... but not into a path of 3 (needs 4 distinct vertices).
        assert!(!contains(&path(3), &p));
    }

    #[test]
    fn isomorphism_respects_structure() {
        let p4 = path(4);
        let star = Graph::from_parts(&[l(0); 4], &[(0, 1), (0, 2), (0, 3)]);
        assert!(!are_isomorphic(&p4, &star));
        let p4b = Graph::from_parts(&[l(0); 4], &[(2, 0), (0, 3), (3, 1)]);
        assert!(are_isomorphic(&p4, &p4b));
    }

    #[test]
    fn max_embeddings_cap() {
        let e = path(2);
        let t = triangle();
        let out = embeddings(&t, &e, 2);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_pattern_embeds_once() {
        let t = triangle();
        let out = for_each_embedding(&t, &Graph::new(), MatchOptions::default(), |_| {
            ControlFlow::Continue(())
        });
        assert_eq!(out.embeddings, 1);
        assert!(out.is_exact());
    }

    #[test]
    fn tiny_budget_reports_exhaustion_with_best_so_far() {
        // Edge into triangle: 6 embeddings total. A 2-node budget trips
        // mid-enumeration; whatever was found before the trip is reported.
        let e = path(2);
        let t = triangle();
        let mut seen = 0usize;
        let out = for_each_embedding(
            &t,
            &e,
            MatchOptions {
                budget: SearchBudget::nodes(2),
                ..MatchOptions::default()
            },
            |_| {
                seen += 1;
                ControlFlow::Continue(())
            },
        );
        assert_eq!(out.completeness, Completeness::BudgetExhausted);
        assert!(out.embeddings > 0, "best-so-far embeddings must survive");
        assert_eq!(out.embeddings, seen);
        assert!(out.embeddings < 6);
    }

    #[test]
    fn generous_budget_matches_unbudgeted_enumeration() {
        let e = path(2);
        let t = triangle();
        let unbudgeted = for_each_embedding(&t, &e, MatchOptions::default(), |_| {
            ControlFlow::Continue(())
        });
        let generous = for_each_embedding(
            &t,
            &e,
            MatchOptions {
                budget: SearchBudget::nodes(1_000_000),
                ..MatchOptions::default()
            },
            |_| ControlFlow::Continue(()),
        );
        assert!(unbudgeted.is_exact() && generous.is_exact());
        assert_eq!(unbudgeted.embeddings, generous.embeddings);
        assert_eq!(generous.embeddings, 6);
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        use crate::budget::Deadline;
        let out = for_each_embedding(
            &triangle(),
            &path(3),
            MatchOptions {
                budget: SearchBudget::unbounded()
                    .with_deadline(Deadline::at(std::time::Instant::now())),
                ..MatchOptions::default()
            },
            |_| ControlFlow::Continue(()),
        );
        assert_eq!(out.completeness, Completeness::DeadlineExceeded);
    }

    #[test]
    fn cancelled_token_reports_cancelled() {
        use crate::budget::CancelToken;
        let token = CancelToken::new();
        token.cancel();
        let out = for_each_embedding(
            &triangle(),
            &path(3),
            MatchOptions {
                budget: SearchBudget::unbounded().with_cancel(token),
                ..MatchOptions::default()
            },
            |_| ControlFlow::Continue(()),
        );
        assert_eq!(out.completeness, Completeness::Cancelled);
    }

    #[test]
    fn tagged_helpers_report_completeness() {
        let t = triangle();
        let p = path(3);
        let (found, c) = contains_tagged(&t, &p, &SearchBudget::unbounded());
        assert!(found);
        assert!(c.is_exact());
        let (iso, c) = are_isomorphic_tagged(&t, &t, &SearchBudget::unbounded());
        assert!(iso);
        assert!(c.is_exact());
        // Quick rejections are exact even under a zero budget.
        let (iso, c) = are_isomorphic_tagged(&t, &p, &SearchBudget::nodes(0));
        assert!(!iso);
        assert!(c.is_exact());
    }
}
