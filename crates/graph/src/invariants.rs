//! Debug invariant machinery shared by the whole workspace.
//!
//! The NP-hard kernels (VF2, MCS, GED) and the CSG/cluster layers above
//! them fail *silently* when a structural invariant is broken — a
//! asymmetric adjacency list or a stale member-id set yields wrong pattern
//! scores, not a crash. The [`crate::debug_invariants!`] macro makes those
//! invariants executable: each call site names one or more validator
//! expressions (returning `Result<(), InvariantViolation>`), and they run
//! under `cfg(debug_assertions)` or when the `strict-invariants` feature
//! is enabled — release builds without the feature compile the checks
//! away entirely.
//!
//! Validators live next to the structures they check:
//! [`crate::Graph::validate`] here, `Csg::validate` in `catapult-csg`, and
//! `validate_assignment` in `catapult-cluster`.

use std::fmt;

/// A broken structural invariant, with a human-readable description of
/// what was inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    message: String,
}

impl InvariantViolation {
    /// Create a violation with a description of the inconsistency.
    pub fn new(message: impl Into<String>) -> Self {
        InvariantViolation {
            message: message.into(),
        }
    }

    /// The description of the inconsistency.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for InvariantViolation {}

/// Fail fast when a checked invariant does not hold.
///
/// This is the runtime half of [`crate::debug_invariants!`]; call sites
/// should use the macro, which compiles the check away in plain release
/// builds.
#[inline]
pub fn enforce(result: Result<(), InvariantViolation>, what: &str, file: &str, line: u32) {
    if let Err(v) = result {
        // Invariant violations are programming errors in this codebase,
        // not recoverable conditions: aborting at the mutation site is the
        // entire point of the validator layer.
        #[allow(clippy::panic)]
        {
            panic!("invariant violated at {file}:{line}: `{what}`: {v}");
        }
    }
}

/// Run one or more invariant validators at a mutation site.
///
/// Each argument must evaluate to `Result<(), InvariantViolation>`. The
/// checks execute only under `cfg(debug_assertions)` or when the calling
/// crate's `strict-invariants` feature is on; otherwise the expressions
/// are type-checked but never evaluated.
///
/// ```
/// use catapult_graph::{debug_invariants, Graph, Label};
/// let g = Graph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
/// debug_invariants!(g.validate());
/// ```
#[macro_export]
macro_rules! debug_invariants {
    ($($check:expr),+ $(,)?) => {
        if cfg!(debug_assertions) || cfg!(feature = "strict-invariants") {
            $($crate::invariants::enforce($check, stringify!($check), file!(), line!());)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_message() {
        let v = InvariantViolation::new("edge 3 endpoint out of bounds");
        assert_eq!(v.to_string(), "edge 3 endpoint out of bounds");
        assert_eq!(v.message(), "edge 3 endpoint out of bounds");
    }

    #[test]
    fn enforce_passes_ok() {
        enforce(Ok(()), "ok-check", file!(), line!());
    }

    #[test]
    #[should_panic(expected = "invariant violated")]
    fn enforce_panics_on_violation() {
        enforce(
            Err(InvariantViolation::new("broken")),
            "bad-check",
            file!(),
            line!(),
        );
    }

    #[test]
    fn macro_accepts_multiple_checks() {
        debug_invariants!(Ok(()), Ok(()));
    }
}
