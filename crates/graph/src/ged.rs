//! Graph edit distance (GED).
//!
//! The paper uses GED to measure pattern-set diversity (§3.2):
//! `div(p, P\p) = min GED(p, p_i)`. Since exact GED is expensive [32],
//! §5 prunes candidates with the lower bound of Definition 5.1 before
//! computing exact distances.
//!
//! Cost model (uniform, matching the paper's unlabeled-edge setting):
//! vertex insertion / deletion / relabeling each cost 1, edge insertion /
//! deletion each cost 1. Edges carry no independent label.
//!
//! Three routines:
//! * [`ged_lower_bound`] — Definition 5.1, O(n log n).
//! * [`ged_upper_bound`] — bipartite assignment heuristic (Riesen–Bunke
//!   [32]): solve a vertex assignment with Hungarian, then charge the exact
//!   induced edit cost of that vertex mapping (always a valid upper bound).
//! * [`ged`] — exact depth-first branch-and-bound seeded with the upper
//!   bound, under a [`SearchBudget`] for pathological cases: on a tripped
//!   limit it returns the best-known *upper bound*, explicitly flagged via
//!   [`GedResult::completeness`].

use crate::budget::{BudgetMeter, Completeness, Kernel, SearchBudget};
use crate::graph::{Graph, VertexId};
use crate::labels::Label;
use crate::matching::hungarian;

/// Default backtracking-node cap for GED searches.
pub const DEFAULT_NODE_CAP: u64 = 500_000;

/// Result of a GED computation.
///
/// When `completeness` is not [`Completeness::Exact`], `distance` is the
/// best-known **upper bound** on the true GED (never an underestimate): the
/// branch-and-bound is seeded with the Riesen–Bunke assignment bound and
/// only ever replaces it with cheaper complete edit paths, so whatever it
/// holds when the budget trips is realized by an actual edit sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GedResult {
    /// The edit distance — exact, or a valid upper bound (see above).
    pub distance: usize,
    /// Why the search stopped.
    pub completeness: Completeness,
}

impl GedResult {
    /// Whether `distance` is the exact GED (otherwise it is an upper bound).
    pub fn is_exact(&self) -> bool {
        self.completeness.is_exact()
    }
}

/// Multiset intersection size of two sorted label lists.
fn multiset_common(mut a: Vec<Label>, mut b: Vec<Label>) -> usize {
    a.sort_unstable();
    b.sort_unstable();
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Lower bound on GED per Definition 5.1:
/// `GED_l = |V| + |E|` where
/// `|V| = ||V_A| - |V_B|| + min(|V_A|, |V_B|) - |L(V_A) ∩ L(V_B)|` and
/// `|E| = ||E_A| - |E_B||`.
///
/// The label intersection is computed as a *multiset* intersection (the
/// exact count of vertices that can be mapped without relabeling), which is
/// what makes the vertex term the exact minimum number of vertex edits.
pub fn ged_lower_bound(a: &Graph, b: &Graph) -> usize {
    let (na, nb) = (a.vertex_count(), b.vertex_count());
    let common = multiset_common(a.labels().to_vec(), b.labels().to_vec());
    let v_cost = na.abs_diff(nb) + na.min(nb) - common.min(na.min(nb));
    let e_cost = a.edge_count().abs_diff(b.edge_count());
    v_cost + e_cost
}

/// Exact edit cost induced by a full vertex mapping.
///
/// `mapping[i]` is the image of A-vertex `i` in B, or `None` for deletion;
/// B-vertices not in the image are insertions.
pub fn induced_edit_cost(a: &Graph, b: &Graph, mapping: &[Option<VertexId>]) -> usize {
    assert_eq!(mapping.len(), a.vertex_count());
    let mut cost = 0usize;
    let mut b_used = vec![false; b.vertex_count()];
    for (vi, m) in a.vertices().zip(mapping.iter()) {
        match m {
            Some(t) => {
                assert!(!b_used[t.index()], "mapping must be injective");
                b_used[t.index()] = true;
                if a.label(vi) != b.label(*t) {
                    cost += 1; // relabel
                }
            }
            None => cost += 1, // vertex deletion
        }
    }
    cost += b_used.iter().filter(|&&u| !u).count(); // vertex insertions
                                                    // Edge deletions / matches.
    for (_, e) in a.edges() {
        match (mapping[e.u.index()], mapping[e.v.index()]) {
            (Some(x), Some(y)) if b.has_edge(x, y) => {}
            _ => cost += 1, // deleted
        }
    }
    // Edge insertions: B edges with no matched A preimage edge.
    let mut preimage = vec![None; b.vertex_count()];
    for (vi, m) in a.vertices().zip(mapping.iter()) {
        if let Some(t) = m {
            preimage[t.index()] = Some(vi);
        }
    }
    for (_, e) in b.edges() {
        match (preimage[e.u.index()], preimage[e.v.index()]) {
            (Some(x), Some(y)) if a.has_edge(x, y) => {}
            _ => cost += 1, // inserted
        }
    }
    cost
}

/// Bipartite-assignment upper bound on GED (Riesen–Bunke style).
///
/// Builds the (n+m)×(n+m) cost matrix of vertex substitutions (cost:
/// relabel + degree difference), deletions (1 + degree) and insertions
/// (1 + degree), solves it with the Hungarian algorithm, and returns the
/// exact [`induced_edit_cost`] of the resulting vertex mapping.
pub fn ged_upper_bound(a: &Graph, b: &Graph) -> usize {
    ged_upper_bound_mapping(a, b).0
}

/// As [`ged_upper_bound`], also returning the vertex mapping realizing the
/// bound (used by [`crate::edit::edit_script`] to materialize edit paths).
pub fn ged_upper_bound_mapping(a: &Graph, b: &Graph) -> (usize, Vec<Option<VertexId>>) {
    let (na, nb) = (a.vertex_count(), b.vertex_count());
    let n = na + nb;
    if n == 0 {
        return (0, Vec::new());
    }
    let big = 1e9;
    // Dense id tables sidestep any usize→u32 narrowing in the hot loops.
    let avs: Vec<VertexId> = a.vertices().collect();
    let bvs: Vec<VertexId> = b.vertices().collect();
    let mut cost = vec![vec![0.0f64; n]; n];
    for (i, row) in cost.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = match (i < na, j < nb) {
                (true, true) => {
                    let (vi, vj) = (avs[i], bvs[j]);
                    let sub = if a.label(vi) == b.label(vj) { 0.0 } else { 1.0 };
                    sub + (a.degree(vi) as f64 - b.degree(vj) as f64).abs()
                }
                (true, false) => {
                    // Deletion of A vertex i, only on its own slot.
                    if j - nb == i {
                        1.0 + a.degree(avs[i]) as f64
                    } else {
                        big
                    }
                }
                (false, true) => {
                    // Insertion of B vertex j, only on its own slot.
                    if i - na == j {
                        1.0 + b.degree(bvs[j]) as f64
                    } else {
                        big
                    }
                }
                (false, false) => 0.0,
            };
        }
    }
    let (_, assign) = hungarian(&cost);
    let mapping: Vec<Option<VertexId>> = (0..na)
        .map(|i| {
            let j = assign[i];
            if j < nb {
                Some(bvs[j])
            } else {
                None
            }
        })
        .collect();
    (induced_edit_cost(a, b, &mapping), mapping)
}

struct GedSearch<'a> {
    a: &'a Graph,
    b: &'a Graph,
    order: Vec<VertexId>,
    /// a-vertex → its position in `order` (O(1) decidedness checks).
    pos: Vec<usize>,
    /// `prefix_a_edges[d]` = number of A edges with both endpoints among
    /// the first `d` ordered vertices (precomputed once; the order is
    /// static).
    prefix_a_edges: Vec<usize>,
    /// Per-label running count of undecided A vertices / unused B
    /// vertices, packed as parallel counts over the union label alphabet.
    rem_a: Vec<i32>,
    avail_b: Vec<i32>,
    label_ids: std::collections::HashMap<Label, usize>,
    mapping: Vec<Option<VertexId>>,
    /// b-vertex → a-vertex that maps onto it (for O(1) preimage lookups).
    preimage: Vec<Option<VertexId>>,
    b_used: Vec<bool>,
    /// Number of used B vertices (incremental).
    b_used_count: usize,
    /// Number of B edges with both endpoints used (incremental).
    b_edges_used: usize,
    best: usize,
    meter: BudgetMeter,
}

impl<'a> GedSearch<'a> {
    fn label_id(&self, l: Label) -> usize {
        self.label_ids[&l]
    }

    /// Incremental cost of deciding `v` (the vertex at `depth`):
    /// counts vertex cost plus edge costs between `v` and already-decided
    /// vertices on both sides.
    fn step_cost(&self, v: VertexId, target: Option<VertexId>, depth: usize) -> usize {
        let mut c = 0usize;
        match target {
            None => {
                c += 1; // deletion
                for &(w, _) in self.a.neighbors(v) {
                    if self.pos[w.index()] < depth {
                        c += 1; // edge (v,w) deleted
                    }
                }
            }
            Some(t) => {
                if self.a.label(v) != self.b.label(t) {
                    c += 1;
                }
                for &(w, _) in self.a.neighbors(v) {
                    if self.pos[w.index()] >= depth {
                        continue;
                    }
                    match self.mapping[w.index()] {
                        Some(x) if self.b.has_edge(x, t) => {} // matched
                        _ => c += 1,                           // deleted
                    }
                }
                // B-side insertions: edges from t to already-used images
                // with no corresponding A edge.
                for &(y, _) in self.b.neighbors(t) {
                    if !self.b_used[y.index()] {
                        continue;
                    }
                    match self.preimage[y.index()] {
                        Some(w) if self.a.has_edge(w, v) => {} // matched above
                        Some(_) => c += 1,                     // inserted
                        None => {}
                    }
                }
            }
        }
        c
    }

    /// Admissible heuristic on the remaining subproblem: label-multiset
    /// vertex bound + |remaining-edge-count| difference.
    fn heuristic(&self, depth: usize) -> usize {
        let ra = self.order.len() - depth;
        let rb = self.b.vertex_count() - self.b_used_count;
        let mut matched = 0usize;
        for (x, y) in self.rem_a.iter().zip(&self.avail_b) {
            matched += usize::try_from((*x).min(*y)).unwrap_or(0);
        }
        let v_h = ra.max(rb) - matched.min(ra.min(rb));
        let ea = self.a.edge_count() - self.prefix_a_edges[depth];
        let eb = self.b.edge_count() - self.b_edges_used;
        v_h + ea.abs_diff(eb)
    }

    fn completion_cost(&self) -> usize {
        // All A vertices decided; unused B vertices and their incident
        // edges are insertions.
        let unused = self.b.vertex_count() - self.b_used_count;
        unused + (self.b.edge_count() - self.b_edges_used)
    }

    fn use_b(&mut self, t: VertexId, v: VertexId) {
        self.b_used[t.index()] = true;
        self.b_used_count += 1;
        self.preimage[t.index()] = Some(v);
        let lid = self.label_id(self.b.label(t));
        self.avail_b[lid] -= 1;
        self.b_edges_used += self
            .b
            .neighbors(t)
            .iter()
            .filter(|(y, _)| self.b_used[y.index()])
            .count();
    }

    fn release_b(&mut self, t: VertexId) {
        self.b_edges_used -= self
            .b
            .neighbors(t)
            .iter()
            .filter(|(y, _)| self.b_used[y.index()])
            .count();
        self.b_used[t.index()] = false;
        self.b_used_count -= 1;
        self.preimage[t.index()] = None;
        let lid = self.label_id(self.b.label(t));
        self.avail_b[lid] += 1;
    }

    fn descend(&mut self, depth: usize, g: usize) {
        if self.meter.tick() {
            return;
        }
        if g + self.heuristic(depth) >= self.best {
            return;
        }
        if depth == self.order.len() {
            let total = g + self.completion_cost();
            if total < self.best {
                self.best = total;
                self.meter.note_improvement();
            }
            return;
        }
        let v = self.order[depth];
        let v_label_id = self.label_id(self.a.label(v));
        self.rem_a[v_label_id] -= 1;
        // Substitution branches, same-label targets first.
        let mut targets: Vec<VertexId> = self
            .b
            .vertices()
            .filter(|t| !self.b_used[t.index()])
            .collect();
        targets.sort_by_key(|&t| self.b.label(t) != self.a.label(v));
        for t in targets {
            let dc = self.step_cost(v, Some(t), depth);
            if g + dc >= self.best {
                continue;
            }
            self.mapping[v.index()] = Some(t);
            self.use_b(t, v);
            self.descend(depth + 1, g + dc);
            self.release_b(t);
            self.mapping[v.index()] = None;
            if self.meter.tripped() {
                self.rem_a[v_label_id] += 1;
                return;
            }
        }
        // Deletion branch.
        let dc = self.step_cost(v, None, depth);
        self.descend(depth + 1, g + dc);
        self.rem_a[v_label_id] += 1;
    }
}

/// Exact GED with branch-and-bound (seeded by [`ged_upper_bound`]),
/// subject to a [`SearchBudget`] (a plain `u64` converts to a node cap).
///
/// On a tripped limit the returned distance is the best-known **upper
/// bound** — the Riesen–Bunke seed or a cheaper complete edit path found
/// before the trip — and [`GedResult::completeness`] names the limit; it is
/// never an underestimate. With [`Completeness::Exact`] the value is the
/// true GED.
pub fn ged_with_budget(a: &Graph, b: &Graph, budget: impl Into<SearchBudget>) -> GedResult {
    let lb = ged_lower_bound(a, b);
    let ub = ged_upper_bound(a, b);
    if lb == ub {
        // Bounds meet: the distance is proven without any search (and
        // without consuming a kernel invocation).
        return GedResult {
            distance: ub,
            completeness: Completeness::Exact,
        };
    }
    let mut order: Vec<VertexId> = a.vertices().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(a.degree(v)));
    let mut pos = vec![usize::MAX; a.vertex_count()];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    // prefix_a_edges[d]: A edges with both endpoint positions < d.
    let mut prefix_a_edges = vec![0usize; order.len() + 1];
    for (_, e) in a.edges() {
        let later = pos[e.u.index()].max(pos[e.v.index()]);
        prefix_a_edges[later + 1] += 1;
    }
    for d in 1..prefix_a_edges.len() {
        prefix_a_edges[d] += prefix_a_edges[d - 1];
    }
    // Union label alphabet with per-side counts.
    let mut label_ids = std::collections::HashMap::new();
    for l in a.labels().iter().chain(b.labels()) {
        let next = label_ids.len();
        label_ids.entry(*l).or_insert(next);
    }
    let mut rem_a = vec![0i32; label_ids.len()];
    let mut avail_b = vec![0i32; label_ids.len()];
    for &l in a.labels() {
        rem_a[label_ids[&l]] += 1;
    }
    for &l in b.labels() {
        avail_b[label_ids[&l]] += 1;
    }
    let mut s = GedSearch {
        a,
        b,
        order,
        pos,
        prefix_a_edges,
        rem_a,
        avail_b,
        label_ids,
        mapping: vec![None; a.vertex_count()],
        preimage: vec![None; b.vertex_count()],
        b_used: vec![false; b.vertex_count()],
        b_used_count: 0,
        b_edges_used: 0,
        best: ub + 1, // allow rediscovering ub exactly
        meter: BudgetMeter::new(&budget.into(), Kernel::Ged),
    };
    s.descend(0, 0);
    // `s.best` only holds completed edit paths (or the ub+1 seed), so the
    // min with `ub` is always a realized upper bound — valid even when the
    // search was cut short.
    let distance = s.best.min(ub);
    GedResult {
        distance,
        completeness: s.meter.status(),
    }
}

/// Exact GED with the default node cap ([`DEFAULT_NODE_CAP`] expansions).
pub fn ged(a: &Graph, b: &Graph) -> GedResult {
    ged_with_budget(a, b, DEFAULT_NODE_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn path(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &edges)
    }

    fn cycle(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn identical_graphs_distance_zero() {
        let g = cycle(5);
        let r = ged(&g, &g);
        assert!(r.is_exact());
        assert_eq!(r.distance, 0);
        assert_eq!(ged_lower_bound(&g, &g), 0);
        assert_eq!(ged_upper_bound(&g, &g), 0);
    }

    #[test]
    fn path_to_cycle_one_edge() {
        // path of n → cycle of n: insert one edge.
        let p = path(5);
        let c = cycle(5);
        let r = ged(&p, &c);
        assert!(r.is_exact());
        assert_eq!(r.distance, 1);
    }

    #[test]
    fn relabel_one_vertex() {
        let a = Graph::from_parts(&[l(0), l(0), l(0)], &[(0, 1), (1, 2)]);
        let b = Graph::from_parts(&[l(0), l(1), l(0)], &[(0, 1), (1, 2)]);
        let r = ged(&a, &b);
        assert!(r.is_exact());
        assert_eq!(r.distance, 1);
    }

    #[test]
    fn lower_bound_is_a_lower_bound() {
        let cases = [
            (path(3), cycle(3)),
            (path(4), cycle(6)),
            (cycle(4), cycle(5)),
            (
                Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2)]),
                Graph::from_parts(&[l(3), l(4)], &[(0, 1)]),
            ),
        ];
        for (a, b) in &cases {
            let lb = ged_lower_bound(a, b);
            let exact = ged(a, b);
            let ub = ged_upper_bound(a, b);
            assert!(exact.is_exact());
            assert!(lb <= exact.distance, "lb={lb} d={}", exact.distance);
            assert!(exact.distance <= ub, "d={} ub={ub}", exact.distance);
        }
    }

    #[test]
    fn symmetry() {
        let a = path(4);
        let b = cycle(5);
        let d1 = ged(&a, &b);
        let d2 = ged(&b, &a);
        assert!(d1.is_exact() && d2.is_exact());
        assert_eq!(d1.distance, d2.distance);
    }

    #[test]
    fn deletion_and_insertion() {
        // path(3) → path(2): delete one vertex + one edge = 2.
        let r = ged(&path(3), &path(2));
        assert!(r.is_exact());
        assert_eq!(r.distance, 2);
    }

    #[test]
    fn tiny_budget_returns_flagged_upper_bound() {
        // Cycle(6) vs two disjoint triangles: equal sizes and labels give
        // lb = 0 < ub, so the search runs; a 1-node budget trips
        // immediately and the Riesen–Bunke seed is returned, flagged as a
        // bound.
        let a = cycle(6);
        let b = Graph::from_parts(
            &[l(0); 6],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        );
        let lb = ged_lower_bound(&a, &b);
        let ub = ged_upper_bound(&a, &b);
        assert!(
            lb < ub,
            "test premise: bounds must not meet (lb={lb} ub={ub})"
        );
        let r = ged_with_budget(&a, &b, 1u64);
        assert_eq!(r.completeness, Completeness::BudgetExhausted);
        assert!(!r.is_exact());
        // The degraded distance is a valid, non-trivial upper bound.
        let exact = ged_with_budget(&a, &b, 5_000_000u64);
        assert!(exact.is_exact());
        assert!(r.distance >= exact.distance);
        assert!(r.distance <= ub);
    }

    #[test]
    fn generous_budget_matches_unbudgeted_answer() {
        let a = path(5);
        let b = cycle(6);
        let default = ged(&a, &b);
        let generous = ged_with_budget(&a, &b, 100_000_000u64);
        assert!(default.is_exact() && generous.is_exact());
        assert_eq!(default.distance, generous.distance);
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        use crate::budget::Deadline;
        let a = cycle(6);
        let b = Graph::from_parts(
            &[l(0); 6],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        );
        let r = ged_with_budget(
            &a,
            &b,
            SearchBudget::unbounded().with_deadline(Deadline::at(std::time::Instant::now())),
        );
        assert_eq!(r.completeness, Completeness::DeadlineExceeded);
        assert!(r.distance >= ged_lower_bound(&a, &b));
    }

    #[test]
    fn meeting_bounds_are_exact_under_zero_budget() {
        // Identical graphs: lb == ub == 0, proven without search.
        let g = cycle(5);
        let r = ged_with_budget(&g, &g, 0u64);
        assert!(r.is_exact());
        assert_eq!(r.distance, 0);
    }

    #[test]
    fn induced_cost_of_identity() {
        let g = cycle(4);
        let mapping: Vec<Option<VertexId>> = g.vertices().map(Some).collect();
        assert_eq!(induced_edit_cost(&g, &g, &mapping), 0);
    }

    #[test]
    fn empty_graphs() {
        let e = Graph::new();
        let r = ged(&e, &e);
        assert_eq!(r.distance, 0);
        let one = path(2);
        let r2 = ged(&e, &one);
        assert_eq!(r2.distance, 3); // 2 vertices + 1 edge inserted
    }
}
