//! Minimum-cost assignment (Hungarian algorithm).
//!
//! Used by the bipartite graph-edit-distance upper bound of Riesen &
//! Bunke [32]: a square cost matrix over (vertices + deletion/insertion
//! slots) is solved optimally in O(n³).

/// Solve the square assignment problem for `cost` (row-major, `n × n`).
///
/// Returns `(total_cost, assignment)` where `assignment[row] = column`.
/// This is the classic potentials-and-augmenting-paths Hungarian
/// implementation (Jonker-style), O(n³).
///
/// # Panics
/// Panics if `cost` is not square or is empty with `n == 0` rows being
/// allowed (returns zero cost).
pub fn hungarian(cost: &[Vec<f64>]) -> (f64, Vec<usize>) {
    let n = cost.len();
    if n == 0 {
        return (0.0, Vec::new());
    }
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
    }
    const INF: f64 = f64::INFINITY;
    // 1-indexed internals per the standard formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            let row = &cost[i0 - 1];
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = row[j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    let mut total = 0.0;
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
            total += cost[p[j] - 1][j - 1];
        }
    }
    (total, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_optimal() {
        let cost = vec![
            vec![0.0, 5.0, 9.0],
            vec![5.0, 0.0, 5.0],
            vec![9.0, 5.0, 0.0],
        ];
        let (total, assign) = hungarian(&cost);
        assert_eq!(total, 0.0);
        assert_eq!(assign, vec![0, 1, 2]);
    }

    #[test]
    fn classic_example() {
        // Known optimum 5: (0→1:2) (1→0:3)... verify via brute force below.
        let cost = vec![
            vec![4.0, 2.0, 8.0],
            vec![4.0, 3.0, 7.0],
            vec![3.0, 1.0, 6.0],
        ];
        let (total, assign) = hungarian(&cost);
        // Brute force all 6 permutations.
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let best = perms
            .iter()
            .map(|p| (0..3).map(|i| cost[i][p[i]]).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(total, best);
        // Verify assignment is a permutation achieving that total.
        let mut seen = [false; 3];
        let mut s = 0.0;
        for (i, &j) in assign.iter().enumerate() {
            assert!(!seen[j]);
            seen[j] = true;
            s += cost[i][j];
        }
        assert_eq!(s, total);
    }

    #[test]
    fn empty_matrix() {
        let (total, assign) = hungarian(&[]);
        assert_eq!(total, 0.0);
        assert!(assign.is_empty());
    }

    #[test]
    fn single_cell() {
        let (total, assign) = hungarian(&[vec![7.0]]);
        assert_eq!(total, 7.0);
        assert_eq!(assign, vec![0]);
    }

    #[test]
    fn random_matrices_match_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(2..6);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0..20) as f64).collect())
                .collect();
            let (total, _) = hungarian(&cost);
            // Brute force.
            let mut idx: Vec<usize> = (0..n).collect();
            let mut best = f64::INFINITY;
            permute(&mut idx, 0, &mut |perm| {
                let s: f64 = (0..n).map(|i| cost[i][perm[i]]).sum();
                if s < best {
                    best = s;
                }
            });
            assert!(
                (total - best).abs() < 1e-9,
                "n={n} total={total} best={best}"
            );
        }
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }
}
