//! # catapult-graph
//!
//! Labeled-graph substrate for the CATAPULT reproduction (SIGMOD'19:
//! *Data-driven Selection of Canned Patterns for Efficient Visual Graph
//! Query Formulation*).
//!
//! Everything the paper's algorithms need from a graph library is
//! implemented here from scratch:
//!
//! * [`graph`] — labeled, undirected, simple graphs (`|G| = |E|`, §2);
//! * [`iso`] — VF2-style subgraph isomorphism [14];
//! * [`mcs`] — maximum (connected) common subgraph, McGregor [27];
//! * [`ged`] — graph edit distance: exact, lower bound (Def. 5.1),
//!   bipartite upper bound [32];
//! * [`edit`] — explicit edit scripts realizing GED mappings;
//! * [`canonical`] — canonical forms for labeled free trees (Fig. 5);
//! * [`layout`] / [`metrics`] — edge crossings & cognitive-load measures;
//! * [`random`] — random connected subgraphs and weighted sampling;
//! * [`fmt`] — a gSpan-style text format;
//! * [`budget`] — shared execution budgets ([`SearchBudget`]) and
//!   completeness tags ([`Completeness`]) for every NP-hard kernel.

// Lint policy: see [workspace.lints] in the root Cargo.toml.
#![warn(missing_docs)]
// Unit tests are allowed the ergonomic panicking shortcuts the library
// itself forbids; the policy targets production code paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod bitadj;
pub mod budget;
pub mod canonical;
pub mod components;
pub mod edit;
pub mod fmt;
pub mod ged;
pub mod graph;
pub mod invariants;
pub mod iso;
pub mod labels;
pub mod layout;
pub mod matching;
pub mod mcs;
pub mod metrics;
pub mod random;

pub use bitadj::BitAdjacency;
pub use budget::{CancelToken, Completeness, Deadline, SearchBudget, Tally, TallyCounts};
pub use graph::{CorruptionKind, Edge, EdgeId, Graph, GraphError, VertexId};
pub use invariants::InvariantViolation;
pub use labels::{EdgeLabel, Label, LabelInterner};
