//! Graph layout and edge-crossing estimation.
//!
//! Kobourov et al. [25] showed that edge crossings hamper graph
//! interpretation tasks; the paper's density-based cognitive-load measure
//! (§3.2, Exp 10) is justified as an estimate of the degree of edge
//! crossings. This module provides an *exact* crossing count for a circular
//! layout, which the simulated cognitive-load study (Exp 10) uses as the
//! ground-truth difficulty driver.

use crate::components::bfs_order;
use crate::graph::{Graph, VertexId};

/// Positions of vertices on a unit circle, in layout order.
#[derive(Clone, Debug)]
pub struct CircularLayout {
    /// `position[v] = index of v around the circle`.
    pub position: Vec<usize>,
}

/// Lay the graph out on a circle in BFS order (a cheap but sensible
/// ordering that keeps neighborhoods contiguous), covering every
/// connected component.
pub fn circular_layout(g: &Graph) -> CircularLayout {
    let n = g.vertex_count();
    let mut position = vec![usize::MAX; n];
    let mut next = 0usize;
    for s in g.vertices() {
        if position[s.index()] != usize::MAX {
            continue;
        }
        for v in bfs_order(g, s) {
            if position[v.index()] == usize::MAX {
                position[v.index()] = next;
                next += 1;
            }
        }
    }
    CircularLayout { position }
}

/// Whether chords `(a,b)` and `(c,d)` on a circle cross: true iff exactly
/// one of `c`, `d` lies strictly between `a` and `b` in circular order.
fn chords_cross(a: usize, b: usize, c: usize, d: usize) -> bool {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let between = |x: usize| x > lo && x < hi;
    between(c) != between(d)
}

/// Exact number of edge crossings in the given circular layout.
pub fn crossing_count(g: &Graph, layout: &CircularLayout) -> usize {
    let edges: Vec<(usize, usize)> = g
        .edges()
        .map(|(_, e)| (layout.position[e.u.index()], layout.position[e.v.index()]))
        .collect();
    let mut crossings = 0;
    for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            let (a, b) = edges[i];
            let (c, d) = edges[j];
            // Shared endpoints never cross.
            if a == c || a == d || b == c || b == d {
                continue;
            }
            if chords_cross(a, b, c, d) {
                crossings += 1;
            }
        }
    }
    crossings
}

/// Crossing count of the default BFS circular layout.
pub fn circular_crossings(g: &Graph) -> usize {
    crossing_count(g, &circular_layout(g))
}

/// A crossing count minimized over a few rotations/reflections of the BFS
/// order plus a degree-sorted order — a cheap proxy for "a human drew this
/// reasonably well".
pub fn best_effort_crossings(g: &Graph) -> usize {
    let mut best = circular_crossings(g);
    // Degree-descending ordering.
    let mut by_degree: Vec<VertexId> = g.vertices().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut position = vec![0usize; g.vertex_count()];
    for (i, v) in by_degree.iter().enumerate() {
        position[v.index()] = i;
    }
    best = best.min(crossing_count(g, &CircularLayout { position }));
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn cycle(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn path_has_no_crossings() {
        let p = Graph::from_parts(&[l(0); 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(circular_crossings(&p), 0);
    }

    #[test]
    fn k4_has_crossings_on_a_circle() {
        // K4 drawn on a circle always has exactly one crossing (the two
        // diagonals).
        let k4 = Graph::from_parts(
            &[l(0); 4],
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        );
        assert_eq!(circular_crossings(&k4), 1);
        assert_eq!(best_effort_crossings(&k4), 1);
    }

    #[test]
    fn cycle_in_bfs_order_state() {
        // A cycle laid out in BFS order: the closing edge may cross others
        // but the count must be small and deterministic.
        let c6 = cycle(6);
        let x = circular_crossings(&c6);
        assert_eq!(x, circular_crossings(&c6)); // deterministic
    }

    #[test]
    fn chord_crossing_logic() {
        assert!(chords_cross(0, 2, 1, 3));
        assert!(!chords_cross(0, 1, 2, 3));
        assert!(!chords_cross(0, 3, 1, 2)); // nested
    }

    #[test]
    fn denser_graphs_have_more_crossings() {
        let c6 = cycle(6);
        let k6 = {
            let mut g = Graph::new();
            for _ in 0..6 {
                g.add_vertex(l(0));
            }
            for i in 0..6u32 {
                for j in (i + 1)..6 {
                    g.add_edge(VertexId(i), VertexId(j)).unwrap();
                }
            }
            g
        };
        assert!(best_effort_crossings(&k6) > best_effort_crossings(&c6));
    }

    #[test]
    fn layout_covers_disconnected_graphs() {
        let g = Graph::from_parts(&[l(0); 4], &[(0, 1), (2, 3)]);
        let lay = circular_layout(&g);
        let mut pos = lay.position;
        pos.sort_unstable();
        assert_eq!(pos, vec![0, 1, 2, 3]);
    }
}
