//! Connectivity utilities: BFS, connected components, tree tests.

use crate::graph::{Graph, VertexId};

/// Breadth-first order from `start`, visiting only vertices reachable from it.
pub fn bfs_order(g: &Graph, start: VertexId) -> Vec<VertexId> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &(w, _) in g.neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Whether the graph is connected. The empty graph counts as connected;
/// a single vertex does too.
pub fn is_connected(g: &Graph) -> bool {
    let n = g.vertex_count();
    if n <= 1 {
        return true;
    }
    bfs_order(g, VertexId(0)).len() == n
}

/// Connected components as lists of vertex ids (each sorted ascending).
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.vertex_count();
    let mut comp = vec![usize::MAX; n];
    let mut out: Vec<Vec<VertexId>> = Vec::new();
    for s in g.vertices() {
        if comp[s.index()] != usize::MAX {
            continue;
        }
        let id = out.len();
        let mut members = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        comp[s.index()] = id;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            members.push(v);
            for &(w, _) in g.neighbors(v) {
                if comp[w.index()] == usize::MAX {
                    comp[w.index()] = id;
                    queue.push_back(w);
                }
            }
        }
        members.sort_unstable();
        out.push(members);
    }
    out
}

/// Whether the graph is a (free) tree: connected with `|E| = |V| - 1`.
pub fn is_tree(g: &Graph) -> bool {
    g.vertex_count() >= 1 && g.edge_count() + 1 == g.vertex_count() && is_connected(g)
}

/// Single-source shortest-path distances (in hops); `usize::MAX` marks
/// unreachable vertices.
pub fn bfs_distances(g: &Graph, start: VertexId) -> Vec<usize> {
    let n = g.vertex_count();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start.index()] = 0;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for &(w, _) in g.neighbors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Center vertex or vertices of a tree (1 for odd-diameter trees, 2 for even).
///
/// Computed by iteratively peeling leaves. Used to root free trees for
/// canonicalization (§4.1). Panics if `g` is not a tree.
pub fn tree_centers(g: &Graph) -> Vec<VertexId> {
    assert!(is_tree(g), "tree_centers requires a tree");
    let n = g.vertex_count();
    if n <= 2 {
        return g.vertices().collect();
    }
    let mut degree: Vec<usize> = (0..n).map(|i| g.degree(VertexId(i as u32))).collect();
    let mut removed = vec![false; n];
    let mut frontier: Vec<VertexId> = g.vertices().filter(|&v| degree[v.index()] == 1).collect();
    let mut remaining = n;
    while remaining > 2 {
        let mut next = Vec::new();
        for &leaf in &frontier {
            removed[leaf.index()] = true;
            remaining -= 1;
            for &(w, _) in g.neighbors(leaf) {
                if !removed[w.index()] {
                    degree[w.index()] -= 1;
                    if degree[w.index()] == 1 {
                        next.push(w);
                    }
                }
            }
        }
        frontier = next;
    }
    let mut centers: Vec<VertexId> = g.vertices().filter(|&v| !removed[v.index()]).collect();
    centers.sort_unstable();
    centers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    #[test]
    fn connectivity() {
        let path = Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2)]);
        assert!(is_connected(&path));
        let two = Graph::from_parts(&[l(0); 4], &[(0, 1), (2, 3)]);
        assert!(!is_connected(&two));
        assert_eq!(connected_components(&two).len(), 2);
    }

    #[test]
    fn tree_detection() {
        let path = Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2)]);
        assert!(is_tree(&path));
        let cycle = Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2), (0, 2)]);
        assert!(!is_tree(&cycle));
        let forest = Graph::from_parts(&[l(0); 4], &[(0, 1), (2, 3)]);
        assert!(!is_tree(&forest));
    }

    #[test]
    fn centers_of_path() {
        // path of 5: center is middle vertex
        let p5 = Graph::from_parts(&[l(0); 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(tree_centers(&p5), vec![VertexId(2)]);
        // path of 4: two centers
        let p4 = Graph::from_parts(&[l(0); 4], &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(tree_centers(&p4), vec![VertexId(1), VertexId(2)]);
    }

    #[test]
    fn centers_of_star() {
        let star = Graph::from_parts(&[l(0); 5], &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(tree_centers(&star), vec![VertexId(0)]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let p = Graph::from_parts(&[l(0); 4], &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&p, VertexId(0)), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_vertex_is_tree_and_center() {
        let mut g = Graph::new();
        g.add_vertex(l(0));
        assert!(is_tree(&g));
        assert_eq!(tree_centers(&g), vec![VertexId(0)]);
    }
}
