//! Per-rule wall-clock accounting behind `cargo xtask lint --timing`.
//!
//! The analyzer must never become the slow step of a lint gate, so the
//! driver can ask for a per-rule cost breakdown and CI asserts the full
//! run (taint included) stays under a budget. A disabled timer is a
//! no-op passthrough: the default path takes no clock reads at all, and
//! timings never enter the `--json` report (which must stay
//! byte-identical across runs and hosts).

use std::collections::BTreeMap;
use std::time::Duration;

/// Accumulates wall-clock time per rule name. Construct with
/// [`RuleTimer::new`]`(false)` for the free disabled mode.
#[derive(Debug)]
pub struct RuleTimer {
    on: bool,
    acc: BTreeMap<&'static str, Duration>,
}

impl RuleTimer {
    /// A timer that records (`on = true`) or passes through untouched.
    #[must_use]
    pub fn new(on: bool) -> RuleTimer {
        RuleTimer {
            on,
            acc: BTreeMap::new(),
        }
    }

    /// Run `work`, attributing its wall-clock cost to `rule`. Repeated
    /// calls for the same rule (one per file) accumulate.
    pub fn time<R>(&mut self, rule: &'static str, work: impl FnOnce() -> R) -> R {
        if !self.on {
            return work();
        }
        // xtask-allow: raw-instant -- analyzer self-timing; never feeds pipeline output
        let t0 = std::time::Instant::now();
        let r = work();
        *self.acc.entry(rule).or_insert(Duration::ZERO) += t0.elapsed();
        r
    }

    /// The accumulated `(rule, total)` table in rule-name order (empty
    /// when the timer was disabled).
    #[must_use]
    pub fn finish(self) -> Vec<(&'static str, Duration)> {
        self.acc.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_records_nothing() {
        let mut t = RuleTimer::new(false);
        assert_eq!(t.time("a-rule", || 7), 7);
        assert!(t.finish().is_empty());
    }

    #[test]
    fn enabled_timer_accumulates_per_rule() {
        let mut t = RuleTimer::new(true);
        assert_eq!(t.time("b-rule", || 1), 1);
        assert_eq!(t.time("a-rule", || 2), 2);
        assert_eq!(t.time("a-rule", || 3), 3);
        let table = t.finish();
        let names: Vec<&str> = table.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["a-rule", "b-rule"], "sorted by rule name");
    }
}
