//! Workspace symbol index and approximate call graph.
//!
//! [`Workspace`] lifts catalint from per-file token rules to whole-program
//! reasoning: it indexes every `fn` definition (with receiver types from
//! enclosing `impl` blocks, visibility, arity, and per-crate module
//! paths), every `struct` with its field types, and every call site, then
//! resolves calls into an approximate call graph:
//!
//! - **free calls** `f(…)` resolve through nested-fn shadowing, the
//!   defining module, the file's `use` imports, and finally a
//!   workspace-unique name match;
//! - **path calls** `a::b::f(…)` resolve `crate`/`self`/`super` heads,
//!   workspace crate names, import aliases, and `Type::assoc` forms;
//! - **method calls** `recv.m(…)` resolve by receiver type where it is
//!   inferable (`self`, `self.field` via the struct index, locals with
//!   `let x: T`/`let x = T::…`/typed params), falling back to a unique
//!   name+arity match gated by a blocklist of ubiquitous std method
//!   names.
//!
//! The graph is deliberately *approximate* (no generics instantiation,
//! no trait dispatch, no macro expansion) but deterministic: files are
//! indexed in sorted order, every map is a `BTreeMap`, and the JSON/DOT
//! exports render identically across runs. Unresolvable calls are kept
//! as explicit `Unresolved` sites so rules can reason about coverage.
//! The interprocedural rules in [`crate::xrules`] run on top of this.

use crate::lexer::TokenKind;
use crate::scan::{FnSpan, SourceFile};
use catapult_obs::json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Schema version of the `--callgraph` JSON export.
pub const CALLGRAPH_SCHEMA_VERSION: u64 = 1;

/// Ubiquitous std/collection method names: a bare name+arity match on
/// one of these is never trusted to resolve a method call, because the
/// receiver is overwhelmingly likely to be a std type.
const COMMON_METHODS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_mut",
    "as_ref",
    "as_str",
    "bytes",
    "chars",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "count",
    "dedup",
    "drain",
    "end",
    "entry",
    "enumerate",
    "eq",
    "err",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "ok",
    "or_default",
    "or_insert",
    "partial_cmp",
    "pop",
    "position",
    "push",
    "read",
    "remove",
    "replace",
    "retain",
    "rev",
    "skip",
    "sort",
    "sort_by",
    "split",
    "start",
    "starts_with",
    "sum",
    "take",
    "then",
    "to_owned",
    "to_string",
    "trim",
    "try_lock",
    "unwrap_or",
    "values",
    "windows",
    "write",
    "zip",
];

/// How a call site spells its callee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `f(…)` — a bare identifier.
    Free,
    /// `a::b::f(…)` — a path.
    Path,
    /// `recv.m(…)` — a method.
    Method,
}

impl CallKind {
    /// Stable label for the JSON export.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CallKind::Free => "free",
            CallKind::Path => "path",
            CallKind::Method => "method",
        }
    }
}

/// Resolution state of one call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// Exactly one definition matched.
    Resolved(usize),
    /// Several definitions matched (e.g. same method name on two types);
    /// candidates are sorted def ids.
    Ambiguous(Vec<usize>),
    /// No workspace definition matched (std, macro, or unknown receiver).
    Unresolved,
}

/// One `fn` definition in the workspace index.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// Index of the span in that file's `fn_spans()`.
    pub span: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Crate name as spelled in Rust paths (e.g. `catapult_graph`).
    pub krate: String,
    /// Module path within the crate (`::`-joined; empty at the root).
    pub module: String,
    /// Enclosing `impl` target type, for methods and associated fns.
    pub receiver: Option<String>,
    /// Declared `pub` (including `pub(crate)` and friends).
    pub is_pub: bool,
    /// Parameter count, excluding any `self` receiver.
    pub arity: usize,
    /// Takes `self` (by value, reference, or `mut`).
    pub has_self: bool,
    /// Inside `#[cfg(test)]` or a non-library source file.
    pub in_test: bool,
    /// Def id of the enclosing fn, for nested definitions.
    pub parent: Option<usize>,
}

/// One field of an indexed struct.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// The type's principal identifier (last path segment outside
    /// generic arguments — `Vec` for `Vec<Foo>`, `Bar` for `a::Bar`).
    pub principal: String,
    /// Every identifier appearing in the type expression.
    pub type_idents: Vec<String>,
}

/// One `struct` definition (named fields only; tuple and unit structs
/// are recorded with an empty field list).
#[derive(Clone, Debug)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// Crate name as spelled in Rust paths.
    pub krate: String,
    /// Index of the defining file.
    pub file: usize,
    /// Named fields, in declaration order.
    pub fields: Vec<FieldDef>,
}

/// One call site attributed to its enclosing fn definition.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Def id of the calling fn.
    pub caller: usize,
    /// Index of the file holding the site.
    pub file: usize,
    /// Code index of the callee name token.
    pub ci: usize,
    /// 1-based line of the callee name token.
    pub line: usize,
    /// The callee name as written.
    pub name: String,
    /// Number of arguments at the site (excluding any receiver).
    pub arity: usize,
    /// Syntactic shape of the call.
    pub kind: CallKind,
    /// Resolution outcome.
    pub callee: Callee,
}

/// The whole-workspace index: parsed files, fn/struct definitions, and
/// the resolved call graph.
#[derive(Debug)]
pub struct Workspace {
    /// Every scanned file, in sorted-path order.
    pub files: Vec<SourceFile>,
    /// Every fn definition, in `(file, span)` order.
    pub defs: Vec<FnDef>,
    /// Every struct definition, in `(file, position)` order.
    pub structs: Vec<StructDef>,
    /// Every detected call site, in `(file, ci)` order.
    pub calls: Vec<CallSite>,
    /// Per-file crate name (parallel to `files`).
    file_krate: Vec<String>,
    /// Per-file module path (parallel to `files`).
    file_module: Vec<String>,
    /// Per-def indices into `calls` (parallel to `defs`).
    calls_by_caller: Vec<Vec<usize>>,
    /// Per-def ids of directly nested fn defs (parallel to `defs`).
    children: Vec<Vec<usize>>,
}

/// Crate name (as spelled in Rust paths) for a workspace-relative file.
#[must_use]
pub fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let name = rest.split('/').next().unwrap_or("");
        if name == "catalint" || name == "xtask" {
            name.to_string()
        } else {
            format!("catapult_{}", name.replace('-', "_"))
        }
    } else if let Some(rest) = rel.strip_prefix("shims/") {
        rest.split('/').next().unwrap_or("").replace('-', "_")
    } else {
        "catapult".to_string()
    }
}

/// Module path within the crate (`::`-joined) for a workspace-relative
/// file: `crates/graph/src/iso.rs` → `iso`, crate roots and `src/bin`
/// targets → empty.
#[must_use]
pub fn module_of(rel: &str) -> String {
    let Some(at) = rel
        .find("/src/")
        .map(|i| i + "/src/".len())
        .or_else(|| rel.strip_prefix("src/").map(|_| "src/".len()))
    else {
        return String::new();
    };
    let rest = rel[at..].trim_end_matches(".rs");
    let mut segs: Vec<&str> = rest.split('/').collect();
    if matches!(segs.last().copied(), Some("lib" | "main" | "mod")) {
        segs.pop();
    }
    if segs.first().copied() == Some("bin") {
        return String::new();
    }
    segs.join("::")
}

/// Net `<`-minus-`>` contribution of one punct token when tracking
/// generic-argument nesting (`->`/`=>` contain `>` but are arrows).
fn angle_delta(text: &str) -> i32 {
    if text == "->" || text == "=>" {
        return 0;
    }
    let mut d = 0i32;
    for c in text.chars() {
        if c == '<' {
            d += 1;
        } else if c == '>' {
            d -= 1;
        }
    }
    d
}

/// Is this identifier uppercase-initial (a type or variant name)?
fn is_type_like(name: &str) -> bool {
    name.chars().next().is_some_and(char::is_uppercase)
}

/// Keywords that read as `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "as", "box", "const", "dyn", "else", "fn", "for", "if", "impl", "in", "let", "loop", "match",
    "move", "mut", "pub", "ref", "return", "static", "unsafe", "use", "where", "while", "yield",
];

/// Token texts that end an item and may directly precede an item
/// keyword (`impl`, `use`, `struct`) at item position.
fn at_item_position(f: &SourceFile, ci: usize) -> bool {
    if ci == 0 {
        return true;
    }
    let prev = f.ctext(ci - 1);
    matches!(prev, "{" | "}" | ";" | "]") || matches!(prev, "pub" | "unsafe" | ")")
}

impl Workspace {
    /// Index `files` (already parsed, any order) into a workspace: sorts
    /// by path, builds the symbol tables, and resolves the call graph.
    #[must_use]
    pub fn build(mut files: Vec<SourceFile>) -> Workspace {
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let file_krate: Vec<String> = files.iter().map(|f| crate_of(&f.rel)).collect();
        let file_module: Vec<String> = files.iter().map(|f| module_of(&f.rel)).collect();

        let mut ws = Workspace {
            files,
            defs: Vec::new(),
            structs: Vec::new(),
            calls: Vec::new(),
            file_krate,
            file_module,
            calls_by_caller: Vec::new(),
            children: Vec::new(),
        };
        let imports: Vec<BTreeMap<String, Vec<String>>> =
            ws.files.iter().map(collect_imports).collect();
        ws.collect_defs();
        ws.collect_structs();
        ws.collect_calls(&imports);
        ws
    }

    // ---- accessors -----------------------------------------------------

    /// Crate name of file `fi`.
    #[must_use]
    pub fn krate_of_file(&self, fi: usize) -> &str {
        &self.file_krate[fi]
    }

    /// A human-readable `crate::module::Type::name` label for a def.
    #[must_use]
    pub fn label(&self, id: usize) -> String {
        let d = &self.defs[id];
        let mut s = d.krate.clone();
        if !d.module.is_empty() {
            let _ = write!(s, "::{}", d.module);
        }
        if let Some(r) = &d.receiver {
            let _ = write!(s, "::{r}");
        }
        let _ = write!(s, "::{}", d.name);
        s
    }

    /// The span backing def `id`.
    #[must_use]
    pub fn span_of(&self, id: usize) -> &FnSpan {
        &self.files[self.defs[id].file].fn_spans()[self.defs[id].span]
    }

    /// Inclusive code range of the signature (keyword through return
    /// type, excluding the body).
    #[must_use]
    pub fn sig_range(&self, id: usize) -> (usize, usize) {
        let span = self.span_of(id);
        let end = span.open.map_or(span.end, |o| o.saturating_sub(1));
        (span.kw, end.max(span.kw))
    }

    /// Code indices of the def's own body, excluding the bodies of
    /// directly nested fn definitions (those belong to their own defs).
    #[must_use]
    pub fn own_body(&self, id: usize) -> Vec<usize> {
        let span = self.span_of(id);
        let (Some(open), Some(close)) = (span.open, span.close) else {
            return Vec::new();
        };
        let nested: Vec<(usize, usize)> = self.children[id]
            .iter()
            .map(|&c| {
                let s = self.span_of(c);
                (s.kw, s.end)
            })
            .collect();
        let mut out = Vec::new();
        let mut ci = open + 1;
        while ci < close {
            if let Some(&(_, end)) = nested.iter().find(|&&(kw, _)| kw == ci) {
                ci = end + 1;
                continue;
            }
            out.push(ci);
            ci += 1;
        }
        out
    }

    /// Does any token in the def's signature spell one of `names`?
    #[must_use]
    pub fn sig_mentions(&self, id: usize, names: &BTreeSet<String>) -> bool {
        let f = &self.files[self.defs[id].file];
        let (s, e) = self.sig_range(id);
        (s..=e).any(|ci| f.ckind(ci) == TokenKind::Ident && names.contains(f.ctext(ci)))
    }

    /// Does any token in the def's own body spell one of `names`?
    #[must_use]
    pub fn body_mentions(&self, id: usize, names: &BTreeSet<String>) -> bool {
        let f = &self.files[self.defs[id].file];
        self.own_body(id)
            .iter()
            .any(|&ci| f.ckind(ci) == TokenKind::Ident && names.contains(f.ctext(ci)))
    }

    /// Indices into [`Workspace::calls`] of the sites inside def `id`.
    #[must_use]
    pub fn calls_of(&self, id: usize) -> &[usize] {
        &self.calls_by_caller[id]
    }

    /// Def ids a call site may target (one for resolved, several for
    /// ambiguous, none for unresolved).
    #[must_use]
    pub fn targets(&self, site: &CallSite) -> Vec<usize> {
        match &site.callee {
            Callee::Resolved(t) => vec![*t],
            Callee::Ambiguous(ts) => ts.clone(),
            Callee::Unresolved => Vec::new(),
        }
    }

    /// Look up a struct by name (optionally preferring `krate`).
    #[must_use]
    pub fn struct_named(&self, name: &str, krate: Option<&str>) -> Option<&StructDef> {
        let mut hits = self.structs.iter().filter(|s| s.name == name);
        match krate {
            Some(k) => hits.clone().find(|s| s.krate == k).or_else(|| hits.next()),
            None => hits.next(),
        }
    }

    // ---- definitions ---------------------------------------------------

    fn collect_defs(&mut self) {
        let mut defs = Vec::new();
        let mut children: Vec<Vec<usize>> = Vec::new();
        for fi in 0..self.files.len() {
            let first_id = defs.len();
            let impls = collect_impls(&self.files[fi]);
            let f = &self.files[fi];
            let library = crate::rules::is_library_src(&f.rel);
            for (si, span) in f.fn_spans().iter().enumerate() {
                let (line, _) = f.cpos(span.kw);
                let receiver = impls
                    .iter()
                    .filter(|(open, close, _)| *open < span.kw && span.end <= *close)
                    .max_by_key(|(open, _, _)| *open)
                    .map(|(_, _, name)| name.clone());
                let (arity, has_self) = param_shape(f, span);
                defs.push(FnDef {
                    name: f.ctext(span.name_ci).to_string(),
                    file: fi,
                    span: si,
                    line,
                    krate: self.file_krate[fi].clone(),
                    module: self.file_module[fi].clone(),
                    receiver,
                    is_pub: is_pub_def(f, span.kw),
                    arity,
                    has_self,
                    in_test: f.in_test(span.kw) || !library,
                    parent: None,
                });
                children.push(Vec::new());
            }
            // Parent links: innermost enclosing span in the same file.
            let spans = f.fn_spans();
            for (si, span) in spans.iter().enumerate() {
                let parent = spans
                    .iter()
                    .enumerate()
                    .filter(|(ti, t)| *ti != si && t.kw < span.kw && span.end <= t.end)
                    .max_by_key(|(_, t)| t.kw)
                    .map(|(ti, _)| first_id + ti);
                defs[first_id + si].parent = parent;
                if let Some(p) = parent {
                    children[p].push(first_id + si);
                }
            }
        }
        self.defs = defs;
        self.children = children;
    }

    fn collect_structs(&mut self) {
        let mut out = Vec::new();
        for (fi, f) in self.files.iter().enumerate() {
            let n = f.n_code();
            for ci in 0..n {
                if !f.is_ident(ci, "struct")
                    || !at_item_position(f, ci)
                    || ci + 1 >= n
                    || f.ckind(ci + 1) != TokenKind::Ident
                {
                    continue;
                }
                let name = f.ctext(ci + 1).to_string();
                let d = f.cdepth(ci);
                // Find the field block `{` at the struct's depth; `;` or
                // `(` first means a unit/tuple struct.
                let mut fields = Vec::new();
                let mut j = ci + 2;
                let mut angle = 0i32;
                while j < n && f.cdepth(j) >= d {
                    if f.ckind(j) == TokenKind::Punct {
                        let t = f.ctext(j);
                        if angle == 0 && f.cdepth(j) == d {
                            if t == ";" || t == "(" {
                                break;
                            }
                            if t == "{" {
                                if let Some(close) = f.cmatch(j) {
                                    fields = collect_fields(f, j, close);
                                }
                                break;
                            }
                        }
                        angle += angle_delta(t);
                    }
                    j += 1;
                }
                out.push(StructDef {
                    name,
                    krate: self.file_krate[fi].clone(),
                    file: fi,
                    fields,
                });
            }
        }
        self.structs = out;
    }

    // ---- call sites ----------------------------------------------------

    fn collect_calls(&mut self, imports: &[BTreeMap<String, Vec<String>>]) {
        let known_crates: BTreeSet<String> = self.file_krate.iter().cloned().collect();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, d) in self.defs.iter().enumerate() {
            by_name.entry(d.name.as_str()).or_default().push(id);
        }

        let mut calls = Vec::new();
        for caller in 0..self.defs.len() {
            if self.defs[caller].in_test {
                continue;
            }
            let fi = self.defs[caller].file;
            for ci in self.own_body(caller) {
                let f = &self.files[fi];
                if f.ckind(ci) != TokenKind::Ident || !f.is_punct(ci + 1, "(") {
                    continue;
                }
                let name = f.ctext(ci);
                if NON_CALL_KEYWORDS.contains(&name) {
                    continue;
                }
                let arity = call_arity(f, ci + 1);
                let site = if ci > 0 && f.is_punct(ci - 1, ".") {
                    self.resolve_method(caller, fi, ci, name, arity, &by_name)
                } else if ci > 0 && f.is_punct(ci - 1, "::") {
                    self.resolve_path_call(caller, fi, ci, name, arity, &imports[fi], &known_crates)
                } else if is_type_like(name) {
                    None // tuple-struct or enum-variant constructor
                } else {
                    self.resolve_free(
                        caller,
                        fi,
                        ci,
                        name,
                        arity,
                        &imports[fi],
                        &known_crates,
                        &by_name,
                    )
                };
                if let Some(site) = site {
                    calls.push(site);
                }
            }
        }

        let mut by_caller: Vec<Vec<usize>> = vec![Vec::new(); self.defs.len()];
        for (i, c) in calls.iter().enumerate() {
            by_caller[c.caller].push(i);
        }
        self.calls = calls;
        self.calls_by_caller = by_caller;
    }

    #[allow(clippy::too_many_arguments)]
    // A call site genuinely has this many independent coordinates.
    fn site(
        &self,
        caller: usize,
        fi: usize,
        ci: usize,
        name: &str,
        arity: usize,
        kind: CallKind,
        callee: Callee,
    ) -> CallSite {
        let (line, _) = self.files[fi].cpos(ci);
        CallSite {
            caller,
            file: fi,
            ci,
            line,
            name: name.to_string(),
            arity,
            kind,
            callee,
        }
    }

    /// Narrow a candidate list into a [`Callee`].
    fn decide(mut candidates: Vec<usize>) -> Callee {
        candidates.sort_unstable();
        candidates.dedup();
        match candidates.len() {
            0 => Callee::Unresolved,
            1 => Callee::Resolved(candidates[0]),
            _ => Callee::Ambiguous(candidates),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_free(
        &self,
        caller: usize,
        fi: usize,
        ci: usize,
        name: &str,
        arity: usize,
        imports: &BTreeMap<String, Vec<String>>,
        known_crates: &BTreeSet<String>,
        by_name: &BTreeMap<&str, Vec<usize>>,
    ) -> Option<CallSite> {
        let empty = Vec::new();
        let named = by_name.get(name).unwrap_or(&empty);

        // 1. Nested fns in the enclosing chain shadow everything else.
        let mut anc = Some(caller);
        while let Some(a) = anc {
            if let Some(&child) = self.children[a]
                .iter()
                .find(|&&c| self.defs[c].name == name)
            {
                return Some(self.site(
                    caller,
                    fi,
                    ci,
                    name,
                    arity,
                    CallKind::Free,
                    Callee::Resolved(child),
                ));
            }
            anc = self.defs[a].parent;
        }

        // 2. Free fns in the same crate+module.
        let here: Vec<usize> = named
            .iter()
            .copied()
            .filter(|&id| {
                let d = &self.defs[id];
                d.receiver.is_none()
                    && d.parent.is_none()
                    && d.krate == self.file_krate[fi]
                    && d.module == self.file_module[fi]
            })
            .collect();
        if !here.is_empty() {
            return Some(self.site(
                caller,
                fi,
                ci,
                name,
                arity,
                CallKind::Free,
                Self::decide(here),
            ));
        }

        // 3. A `use` import naming it.
        if let Some(path) = imports.get(name) {
            let callee = self.resolve_segments(fi, path, known_crates);
            return Some(self.site(caller, fi, ci, name, arity, CallKind::Free, callee));
        }

        // 4. Workspace-unique free fn of that name.
        let unique: Vec<usize> = named
            .iter()
            .copied()
            .filter(|&id| self.defs[id].receiver.is_none() && self.defs[id].parent.is_none())
            .collect();
        let callee = if unique.len() == 1 {
            Callee::Resolved(unique[0])
        } else {
            Callee::Unresolved
        };
        Some(self.site(caller, fi, ci, name, arity, CallKind::Free, callee))
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_path_call(
        &self,
        caller: usize,
        fi: usize,
        ci: usize,
        name: &str,
        arity: usize,
        imports: &BTreeMap<String, Vec<String>>,
        known_crates: &BTreeSet<String>,
    ) -> Option<CallSite> {
        let f = &self.files[fi];
        // Walk back over `seg ::` pairs to collect the written path.
        let mut segs: Vec<String> = vec![name.to_string()];
        let mut j = ci - 1; // at `::`
        while j >= 1 && f.is_punct(j, "::") && f.ckind(j - 1) == TokenKind::Ident {
            segs.insert(0, f.ctext(j - 1).to_string());
            if j < 2 {
                break;
            }
            j -= 2;
        }
        if segs.len() < 2 {
            return Some(self.site(
                caller,
                fi,
                ci,
                name,
                arity,
                CallKind::Path,
                Callee::Unresolved,
            ));
        }
        // `Self::assoc(…)` targets the caller's own impl type.
        if segs.first().map(String::as_str) == Some("Self") {
            if let Some(r) = &self.defs[caller].receiver {
                segs[0] = r.clone();
            }
        }
        // Substitute a leading import alias (`use a::b; b::f()`).
        if let Some(expansion) = imports.get(&segs[0]) {
            let mut full = expansion.clone();
            full.extend(segs[1..].iter().cloned());
            segs = full;
        }
        let callee = self.resolve_segments(fi, &segs, known_crates);
        Some(self.site(caller, fi, ci, name, arity, CallKind::Path, callee))
    }

    /// Resolve a full path (`crate`/`self`/`super` heads, workspace
    /// crate names, `Type::assoc` tails) to candidate defs.
    fn resolve_segments(
        &self,
        fi: usize,
        segs: &[String],
        known_crates: &BTreeSet<String>,
    ) -> Callee {
        let Some((name, mut mods)) = segs.split_last() else {
            return Callee::Unresolved;
        };
        let krate: String;
        match mods.first().map(String::as_str) {
            Some("crate") => {
                krate = self.file_krate[fi].clone();
                mods = &mods[1..];
            }
            Some("self") => {
                krate = self.file_krate[fi].clone();
                let mut full: Vec<String> = split_module(&self.file_module[fi]);
                full.extend(mods[1..].iter().cloned());
                return self.resolve_in(name, &krate, &full);
            }
            Some("super") => {
                krate = self.file_krate[fi].clone();
                let mut base = split_module(&self.file_module[fi]);
                let mut rest = mods;
                while rest.first().map(String::as_str) == Some("super") {
                    base.pop();
                    rest = &rest[1..];
                }
                let mut full = base;
                full.extend(rest.iter().cloned());
                return self.resolve_in(name, &krate, &full);
            }
            Some(head) if known_crates.contains(head) => {
                krate = head.to_string();
                mods = &mods[1..];
            }
            Some(head) if is_type_like(head) && mods.len() == 1 => {
                // `Type::assoc(…)` with the type in scope.
                return self.resolve_assoc(name, head, Some(&self.file_krate[fi]));
            }
            Some(_) => {
                // Treat the head as a sibling module of the same crate.
                krate = self.file_krate[fi].clone();
            }
            None => {
                // Bare `::name` after alias substitution collapsed.
                krate = self.file_krate[fi].clone();
            }
        }
        let owned: Vec<String> = mods.to_vec();
        self.resolve_in(name, &krate, &owned)
    }

    /// Resolve `name` within `krate::mods`, treating an uppercase last
    /// module segment as a type receiver.
    fn resolve_in(&self, name: &str, krate: &str, mods: &[String]) -> Callee {
        if let Some((last, _)) = mods.split_last() {
            if is_type_like(last) {
                return self.resolve_assoc(name, last, Some(krate));
            }
        }
        let module = mods.join("::");
        let candidates: Vec<usize> = self
            .defs
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                d.name == name
                    && d.receiver.is_none()
                    && d.parent.is_none()
                    && d.krate == krate
                    && d.module == module
            })
            .map(|(id, _)| id)
            .collect();
        if !candidates.is_empty() {
            return Self::decide(candidates);
        }
        // Re-export approximation: `use some_crate::item` usually names
        // an inner-module item `pub use`d at the crate root (the lib.rs
        // façade idiom). The index doesn't model `pub use`, so fall back
        // to the crate's pub free fns of that name — unique → resolved,
        // several → ambiguous, which the rules treat as "don't know".
        let reexported: Vec<usize> = self
            .defs
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                d.name == name
                    && d.is_pub
                    && d.receiver.is_none()
                    && d.parent.is_none()
                    && d.krate == krate
            })
            .map(|(id, _)| id)
            .collect();
        Self::decide(reexported)
    }

    /// Resolve an associated fn / method `Type::name`, preferring defs
    /// in `krate` when several types share the name.
    fn resolve_assoc(&self, name: &str, receiver: &str, krate: Option<&str>) -> Callee {
        let all: Vec<usize> = self
            .defs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.name == name && d.receiver.as_deref() == Some(receiver))
            .map(|(id, _)| id)
            .collect();
        if all.len() > 1 {
            if let Some(k) = krate {
                let near: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&id| self.defs[id].krate == k)
                    .collect();
                if !near.is_empty() {
                    return Self::decide(near);
                }
            }
        }
        Self::decide(all)
    }

    fn resolve_method(
        &self,
        caller: usize,
        fi: usize,
        ci: usize,
        name: &str,
        arity: usize,
        by_name: &BTreeMap<&str, Vec<usize>>,
    ) -> Option<CallSite> {
        let f = &self.files[fi];
        let chain = receiver_chain(f, ci - 1);
        let chain: Option<Vec<&str>> = chain
            .as_ref()
            .map(|v| v.iter().map(String::as_str).collect());
        let krate = self.file_krate[fi].clone();

        let recv_type: Option<String> = match chain.as_deref() {
            Some(["self"]) => self.defs[caller].receiver.clone(),
            Some(["self", field]) => self.defs[caller]
                .receiver
                .as_deref()
                .and_then(|r| self.struct_named(r, Some(&krate)))
                .and_then(|s| s.fields.iter().find(|fd| fd.name == *field))
                .map(|fd| fd.principal.clone()),
            Some([var]) => self.infer_local_type(caller, ci, var),
            _ => None,
        };

        if let Some(recv) = recv_type {
            let callee = self.resolve_assoc(name, &recv, Some(&krate));
            if callee != Callee::Unresolved {
                return Some(self.site(caller, fi, ci, name, arity, CallKind::Method, callee));
            }
        }

        // Fallback: a workspace-unique method with matching name+arity,
        // unless the name is a ubiquitous std method.
        if COMMON_METHODS.contains(&name) {
            return None;
        }
        let empty = Vec::new();
        let candidates: Vec<usize> = by_name
            .get(name)
            .unwrap_or(&empty)
            .iter()
            .copied()
            .filter(|&id| self.defs[id].has_self && self.defs[id].arity == arity)
            .collect();
        let callee = match candidates.len() {
            1 => Callee::Resolved(candidates[0]),
            2..=4 => Self::decide(candidates),
            _ => Callee::Unresolved,
        };
        Some(self.site(caller, fi, ci, name, arity, CallKind::Method, callee))
    }

    /// Infer the principal type of local `var` inside `caller`: a typed
    /// parameter, a `let var: T`, or a `let var = T::…` binding.
    fn infer_local_type(&self, caller: usize, before: usize, var: &str) -> Option<String> {
        let f = &self.files[self.defs[caller].file];
        let span = self.span_of(caller);
        // Typed parameter.
        if let Some(open) = param_open(f, span) {
            if let Some(close) = f.cmatch(open) {
                let d = f.cdepth(open) + 1;
                for j in open + 1..close {
                    if f.cdepth(j) == d && f.is_ident(j, var) && f.is_punct(j + 1, ":") {
                        return principal_ident(f, j + 2, close, &[",", ")"]);
                    }
                }
            }
        }
        // `let var …` bindings lexically before the call.
        let body = self.own_body(caller);
        let mut found = None;
        for &j in &body {
            if j >= before {
                break;
            }
            if !f.is_ident(j, "let") {
                continue;
            }
            let mut k = j + 1;
            if f.is_ident(k, "mut") {
                k += 1;
            }
            if !f.is_ident(k, var) {
                continue;
            }
            if f.is_punct(k + 1, ":") {
                found = principal_ident(f, k + 2, f.n_code(), &["=", ";"]).or(found);
            } else if f.is_punct(k + 1, "=")
                && f.ckind(k + 2) == TokenKind::Ident
                && is_type_like(f.ctext(k + 2))
                && (f.is_punct(k + 3, "::") || f.is_punct(k + 3, "{"))
            {
                found = Some(f.ctext(k + 2).to_string());
            }
        }
        found
    }

    // ---- exports -------------------------------------------------------

    /// The `--callgraph` JSON document: every non-test def, every
    /// resolved/ambiguous edge, and summary counts. Deterministic:
    /// byte-identical across scans of the same sources.
    #[must_use]
    pub fn callgraph_json(&self) -> Value {
        let mut defs = Value::array();
        for (id, d) in self.defs.iter().enumerate() {
            if d.in_test {
                continue;
            }
            let mut e = Value::object();
            e.set("id", id)
                .set("label", self.label(id).as_str())
                .set("name", d.name.as_str())
                .set("crate", d.krate.as_str())
                .set("module", d.module.as_str())
                .set("path", self.files[d.file].rel.as_str())
                .set("line", d.line)
                .set("pub", d.is_pub)
                .set("arity", d.arity)
                .set("has_self", d.has_self);
            match &d.receiver {
                Some(r) => e.set("receiver", r.as_str()),
                None => e.set("receiver", Value::Null),
            };
            defs.push(e);
        }
        let mut edges = Value::array();
        let (mut n_resolved, mut n_ambiguous, mut n_unresolved) = (0u64, 0u64, 0u64);
        for c in &self.calls {
            match &c.callee {
                Callee::Resolved(t) => {
                    n_resolved += 1;
                    let mut e = Value::object();
                    e.set("from", c.caller)
                        .set("to", *t)
                        .set("kind", c.kind.label())
                        .set("name", c.name.as_str())
                        .set("path", self.files[c.file].rel.as_str())
                        .set("line", c.line);
                    edges.push(e);
                }
                Callee::Ambiguous(ts) => {
                    n_ambiguous += 1;
                    let mut cands = Value::array();
                    for t in ts {
                        cands.push(*t);
                    }
                    let mut e = Value::object();
                    e.set("from", c.caller)
                        .set("candidates", cands)
                        .set("kind", c.kind.label())
                        .set("name", c.name.as_str())
                        .set("path", self.files[c.file].rel.as_str())
                        .set("line", c.line);
                    edges.push(e);
                }
                Callee::Unresolved => n_unresolved += 1,
            }
        }
        let mut summary = Value::object();
        summary
            .set("defs", self.defs.len())
            .set("structs", self.structs.len())
            .set("resolved", n_resolved)
            .set("ambiguous", n_ambiguous)
            .set("unresolved", n_unresolved);
        let mut v = Value::object();
        v.set("schema_version", CALLGRAPH_SCHEMA_VERSION)
            .set("tool", "catalint-callgraph")
            .set("summary", summary)
            .set("defs", defs)
            .set("edges", edges);
        v
    }

    /// Graphviz DOT export of the resolved edges (nodes that take part
    /// in at least one edge).
    #[must_use]
    pub fn callgraph_dot(&self) -> String {
        let mut used: BTreeSet<usize> = BTreeSet::new();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for c in &self.calls {
            if let Callee::Resolved(t) = c.callee {
                used.insert(c.caller);
                used.insert(t);
                edges.push((c.caller, t));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut out = String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n");
        for id in &used {
            let _ = writeln!(out, "  n{} [label=\"{}\"];", id, self.label(*id));
        }
        for (from, to) in &edges {
            let _ = writeln!(out, "  n{from} -> n{to};");
        }
        out.push_str("}\n");
        out
    }
}

// ---- token-level helpers ----------------------------------------------

/// Is the `fn` at code index `kw` declared `pub` (any visibility form)?
fn is_pub_def(f: &SourceFile, kw: usize) -> bool {
    let mut j = kw;
    while j > 0 {
        let p = j - 1;
        let t = f.ctext(p);
        if matches!(t, "unsafe" | "const" | "async" | "extern") || f.ckind(p) == TokenKind::StrLit {
            j = p;
            continue;
        }
        if f.is_punct(p, ")") {
            if let Some(open) = f.cmatch(p) {
                return open > 0 && f.is_ident(open - 1, "pub");
            }
            return false;
        }
        return f.is_ident(p, "pub");
    }
    false
}

/// Find the parameter-list `(` of a fn span, skipping generic brackets.
fn param_open(f: &SourceFile, span: &FnSpan) -> Option<usize> {
    let d = f.cdepth(span.kw);
    let mut angle = 0i32;
    let mut j = span.name_ci + 1;
    while j <= span.end {
        if f.ckind(j) == TokenKind::Punct {
            let t = f.ctext(j);
            if angle == 0 && t == "(" && f.cdepth(j) == d {
                return Some(j);
            }
            angle += angle_delta(t);
        }
        j += 1;
    }
    None
}

/// `(arity, has_self)` of a fn span's parameter list.
fn param_shape(f: &SourceFile, span: &FnSpan) -> (usize, bool) {
    let Some(open) = param_open(f, span) else {
        return (0, false);
    };
    let Some(close) = f.cmatch(open) else {
        return (0, false);
    };
    if close == open + 1 {
        return (0, false);
    }
    let mut k = open + 1;
    while k < close
        && (f.is_punct(k, "&") || f.is_ident(k, "mut") || f.ckind(k) == TokenKind::Lifetime)
    {
        k += 1;
    }
    let has_self = f.is_ident(k, "self");
    let inner = f.cdepth(open) + 1;
    let mut commas = 0usize;
    let mut angle = 0i32;
    for j in open + 1..close {
        if f.ckind(j) == TokenKind::Punct {
            let t = f.ctext(j);
            if f.cdepth(j) == inner && angle == 0 && t == "," {
                commas += 1;
            }
            angle += angle_delta(t);
        }
    }
    let trailing = f.is_punct(close - 1, ",");
    let params = if trailing { commas } else { commas + 1 };
    (params.saturating_sub(usize::from(has_self)), has_self)
}

/// Number of comma-separated arguments inside the call parens at `open`.
fn call_arity(f: &SourceFile, open: usize) -> usize {
    let Some(close) = f.cmatch(open) else {
        return 0;
    };
    if close == open + 1 {
        return 0;
    }
    let inner = f.cdepth(open) + 1;
    let mut commas = 0usize;
    for j in open + 1..close {
        if f.cdepth(j) == inner && f.is_punct(j, ",") {
            commas += 1;
        }
    }
    if f.is_punct(close - 1, ",") {
        commas
    } else {
        commas + 1
    }
}

/// The receiver chain of a method call, walking back from the `.` at
/// `dot`: `Some(["self"])`, `Some(["self", "field"])`, `Some(["var"])`
/// for the inferable shapes, `None` for anything more complex.
fn receiver_chain(f: &SourceFile, dot: usize) -> Option<Vec<String>> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        let p = j - 1;
        if f.ckind(p) != TokenKind::Ident {
            return None; // `)`/`]`/literal receivers are not inferable
        }
        parts.insert(0, f.ctext(p).to_string());
        if p >= 1 && f.is_punct(p - 1, ".") {
            j = p - 1;
            continue;
        }
        if p >= 1 && f.is_punct(p - 1, "::") {
            return None; // path-qualified receiver (constant, static)
        }
        break;
    }
    if parts.is_empty() || parts.len() > 2 {
        return None;
    }
    if parts.len() == 2 && parts[0] != "self" {
        return None;
    }
    Some(parts)
}

/// Last identifier at angle depth zero in `[from, stop)`, stopping at
/// any of `enders` at the starting paren depth: the principal type name
/// of a type expression (`Vec` for `Vec<Foo>`, `Bar` for `&a::Bar`).
fn principal_ident(f: &SourceFile, from: usize, stop: usize, enders: &[&str]) -> Option<String> {
    let n = f.n_code().min(stop);
    if from >= n {
        return None;
    }
    let base = f.cdepth(from);
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    for j in from..n {
        if f.cdepth(j) < base {
            break;
        }
        let t = f.ctext(j);
        if f.ckind(j) == TokenKind::Punct {
            if angle == 0 && f.cdepth(j) == base && enders.contains(&t) {
                break;
            }
            angle += angle_delta(t);
            continue;
        }
        if f.ckind(j) == TokenKind::Ident
            && angle == 0
            && f.cdepth(j) == base
            && !matches!(t, "dyn" | "impl" | "mut")
        {
            last = Some(t.to_string());
        }
    }
    last
}

/// Named fields of a struct body `{open … close}`.
fn collect_fields(f: &SourceFile, open: usize, close: usize) -> Vec<FieldDef> {
    let inner = f.cdepth(open) + 1;
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Skip attributes and visibility.
        if f.is_punct(j, "#") && f.is_punct(j + 1, "[") {
            j = f.cmatch(j + 1).map_or(j + 2, |c| c + 1);
            continue;
        }
        if f.is_ident(j, "pub") {
            if f.is_punct(j + 1, "(") {
                j = f.cmatch(j + 1).map_or(j + 2, |c| c + 1);
            } else {
                j += 1;
            }
            continue;
        }
        if f.cdepth(j) == inner && f.ckind(j) == TokenKind::Ident && f.is_punct(j + 1, ":") {
            let name = f.ctext(j).to_string();
            let mut type_idents = Vec::new();
            let mut angle = 0i32;
            let mut k = j + 2;
            while k < close {
                let t = f.ctext(k);
                if f.ckind(k) == TokenKind::Punct {
                    if angle == 0 && f.cdepth(k) == inner && t == "," {
                        break;
                    }
                    angle += angle_delta(t);
                } else if f.ckind(k) == TokenKind::Ident {
                    type_idents.push(t.to_string());
                }
                k += 1;
            }
            let principal = principal_ident(f, j + 2, k, &[","]).unwrap_or_default();
            out.push(FieldDef {
                name,
                principal,
                type_idents,
            });
            j = k + 1;
            continue;
        }
        j += 1;
    }
    out
}

/// `impl` block extents in one file: `(open, close, target type name)`.
fn collect_impls(f: &SourceFile) -> Vec<(usize, usize, String)> {
    let n = f.n_code();
    let mut out = Vec::new();
    for ci in 0..n {
        if !f.is_ident(ci, "impl") || !at_item_position(f, ci) {
            continue;
        }
        let d = f.cdepth(ci);
        let mut angle = 0i32;
        let mut candidate: Option<String> = None;
        let mut frozen = false;
        let mut j = ci + 1;
        while j < n && f.cdepth(j) >= d {
            let t = f.ctext(j);
            if f.ckind(j) == TokenKind::Punct {
                if angle == 0 && f.cdepth(j) == d {
                    if t == "{" {
                        if let (Some(close), Some(name)) = (f.cmatch(j), candidate.take()) {
                            out.push((j, close, name));
                        }
                        break;
                    }
                    if t == ";" {
                        break;
                    }
                }
                angle += angle_delta(t);
            } else if f.ckind(j) == TokenKind::Ident && angle == 0 {
                match t {
                    "for" => {
                        candidate = None; // the trait came first; restart
                        frozen = false;
                    }
                    "where" => frozen = true,
                    _ if !frozen => candidate = Some(t.to_string()),
                    _ => {}
                }
            }
            j += 1;
        }
    }
    out
}

/// Split a `::`-joined module path into segments (empty path → none).
fn split_module(module: &str) -> Vec<String> {
    if module.is_empty() {
        Vec::new()
    } else {
        module.split("::").map(str::to_string).collect()
    }
}

/// The file's `use` imports: alias → full path segments. Handles
/// nested `{…}` groups, `as` renames, and `self` group members; glob
/// imports are ignored.
fn collect_imports(f: &SourceFile) -> BTreeMap<String, Vec<String>> {
    let mut map = BTreeMap::new();
    let n = f.n_code();
    for ci in 0..n {
        if !f.is_ident(ci, "use") || !at_item_position(f, ci) {
            continue;
        }
        let mut prefix: Vec<String> = Vec::new();
        parse_use_tree(f, ci + 1, n, &mut prefix, &mut map);
    }
    map
}

/// Parse one use-tree starting at `j`; returns the index after it.
fn parse_use_tree(
    f: &SourceFile,
    mut j: usize,
    n: usize,
    prefix: &mut Vec<String>,
    map: &mut BTreeMap<String, Vec<String>>,
) -> usize {
    let depth_here = prefix.len();
    loop {
        if j >= n {
            return j;
        }
        if f.is_punct(j, "{") {
            let close = f.cmatch(j).unwrap_or(n.saturating_sub(1));
            let mut k = j + 1;
            while k < close {
                k = parse_use_tree(f, k, close, prefix, map);
                if k < close && f.is_punct(k, ",") {
                    k += 1;
                }
            }
            prefix.truncate(depth_here);
            return close + 1;
        }
        if f.ckind(j) == TokenKind::Ident {
            let seg = f.ctext(j).to_string();
            if f.is_punct(j + 1, "::") {
                prefix.push(seg);
                j += 2;
                continue;
            }
            // Leaf: `seg`, `seg as alias`, or `self` (import the prefix).
            let (alias, full, next) = if f.is_ident(j + 1, "as") && j + 2 < n {
                let alias = f.ctext(j + 2).to_string();
                let mut full = prefix.clone();
                if seg != "self" {
                    full.push(seg);
                }
                (alias, full, j + 3)
            } else if seg == "self" {
                let full = prefix.clone();
                let alias = full.last().cloned().unwrap_or_default();
                (alias, full, j + 1)
            } else {
                let mut full = prefix.clone();
                full.push(seg.clone());
                (seg, full, j + 1)
            };
            if !alias.is_empty() {
                map.insert(alias, full);
            }
            prefix.truncate(depth_here);
            return next;
        }
        if f.is_punct(j, "*") {
            prefix.truncate(depth_here);
            return j + 1; // glob imports are not tracked
        }
        prefix.truncate(depth_here);
        return j + 1; // `;` or anything unexpected ends the tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(rel, src)| SourceFile::parse((*rel).to_string(), (*src).to_string()))
                .collect(),
        )
    }

    fn def_id(w: &Workspace, label: &str) -> usize {
        let hits: Vec<usize> = (0..w.defs.len()).filter(|&i| w.label(i) == label).collect();
        assert_eq!(hits.len(), 1, "label {label} hits {hits:?}");
        hits[0]
    }

    fn resolved_edges(w: &Workspace) -> Vec<(String, String)> {
        w.calls
            .iter()
            .filter_map(|c| match c.callee {
                Callee::Resolved(t) => Some((w.label(c.caller), w.label(t))),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn crate_and_module_mapping() {
        assert_eq!(crate_of("crates/graph/src/iso.rs"), "catapult_graph");
        assert_eq!(crate_of("crates/catalint/src/lib.rs"), "catalint");
        assert_eq!(crate_of("shims/rayon/src/lib.rs"), "rayon");
        assert_eq!(crate_of("src/main.rs"), "catapult");
        assert_eq!(module_of("crates/graph/src/iso.rs"), "iso");
        assert_eq!(module_of("crates/graph/src/lib.rs"), "");
        assert_eq!(module_of("crates/core/src/walk/deep.rs"), "walk::deep");
        assert_eq!(module_of("crates/bench/src/bin/bench_parallel.rs"), "");
    }

    #[test]
    fn path_calls_resolve_across_crates() {
        let w = ws(&[
            (
                "crates/graph/src/iso.rs",
                "pub fn contains(a: u32) -> bool { a > 0 }\n",
            ),
            (
                "crates/eval/src/basic.rs",
                "pub fn run(x: u32) -> bool { catapult_graph::iso::contains(x) }\n",
            ),
        ]);
        assert_eq!(
            resolved_edges(&w),
            [(
                "catapult_eval::basic::run".to_string(),
                "catapult_graph::iso::contains".to_string()
            )]
        );
    }

    #[test]
    fn use_imports_resolve_free_calls_cross_crate() {
        let w = ws(&[
            (
                "crates/graph/src/iso.rs",
                "pub fn embeddings(a: u32) -> u32 { a }\npub fn other(a: u32) -> u32 { a }\n",
            ),
            (
                "crates/eval/src/steps.rs",
                "use catapult_graph::iso::{embeddings, other as o};\n\
                 pub fn run(x: u32) -> u32 { embeddings(x) + o(x) }\n",
            ),
        ]);
        let edges = resolved_edges(&w);
        assert!(edges.contains(&(
            "catapult_eval::steps::run".into(),
            "catapult_graph::iso::embeddings".into()
        )));
        assert!(
            edges.contains(&(
                "catapult_eval::steps::run".into(),
                "catapult_graph::iso::other".into()
            )),
            "`as` alias resolves: {edges:?}"
        );
    }

    #[test]
    fn shadowed_local_fn_wins_over_import_and_module() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn helper(x: u32) -> u32 { x }\n\
                 pub fn outer(x: u32) -> u32 {\n\
                     fn helper(x: u32) -> u32 { x + 1 }\n\
                     helper(x)\n\
                 }\n",
        )]);
        let outer = def_id(&w, "catapult_a::outer");
        let sites = w.calls_of(outer);
        assert_eq!(sites.len(), 1);
        let c = &w.calls[sites[0]];
        let Callee::Resolved(t) = c.callee else {
            panic!("unresolved: {c:?}")
        };
        assert_eq!(w.defs[t].parent, Some(outer), "nested fn shadows module fn");
    }

    #[test]
    fn method_name_ambiguity_is_reported_not_guessed() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub struct A;\nimpl A { pub fn score(&self, x: u32) -> u32 { x } }\n\
                 pub struct B;\nimpl B { pub fn score(&self, x: u32) -> u32 { x + 1 } }\n\
                 pub fn use_both(v: u32) -> u32 { unknown_recv().score(v) }\n\
                 fn unknown_recv() -> u32 { 0 }\n",
        )]);
        let amb: Vec<&CallSite> = w
            .calls
            .iter()
            .filter(|c| matches!(c.callee, Callee::Ambiguous(_)))
            .collect();
        assert_eq!(amb.len(), 1, "calls: {:?}", w.calls);
        assert_eq!(amb[0].name, "score");
        let Callee::Ambiguous(ts) = &amb[0].callee else {
            unreachable!()
        };
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn self_and_field_receivers_resolve() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub struct Inner;\n\
             impl Inner { pub fn tick(&self) -> u32 { 1 } }\n\
             pub struct Outer { inner: Inner }\n\
             impl Outer {\n\
                 pub fn go(&self) -> u32 { self.inner.tick() + self.twice() }\n\
                 fn twice(&self) -> u32 { 2 }\n\
             }\n",
        )]);
        let edges = resolved_edges(&w);
        assert!(
            edges.contains(&(
                "catapult_a::Outer::go".into(),
                "catapult_a::Inner::tick".into()
            )),
            "self.field receiver: {edges:?}"
        );
        assert!(
            edges.contains(&(
                "catapult_a::Outer::go".into(),
                "catapult_a::Outer::twice".into()
            )),
            "self receiver: {edges:?}"
        );
    }

    #[test]
    fn local_let_bindings_type_method_calls() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub struct Meter;\n\
             impl Meter {\n\
                 pub fn new() -> Meter { Meter }\n\
                 pub fn tripped(&self) -> bool { false }\n\
             }\n\
             pub fn run() -> bool {\n\
                 let m = Meter::new();\n\
                 m.tripped()\n\
             }\n",
        )]);
        let edges = resolved_edges(&w);
        assert!(
            edges.contains(&("catapult_a::run".into(), "catapult_a::Meter::new".into())),
            "Type::assoc call: {edges:?}"
        );
        assert!(
            edges.contains(&(
                "catapult_a::run".into(),
                "catapult_a::Meter::tripped".into()
            )),
            "let-bound receiver: {edges:?}"
        );
    }

    #[test]
    fn struct_fields_and_budget_like_fixpoint_inputs() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub struct SearchBudget { nodes: u64 }\n\
             pub struct Config { pub budget: SearchBudget, pub name: String }\n",
        )]);
        let cfg = w.struct_named("Config", None).expect("indexed");
        assert_eq!(cfg.fields.len(), 2);
        assert_eq!(cfg.fields[0].principal, "SearchBudget");
        assert_eq!(cfg.fields[1].principal, "String");
    }

    #[test]
    fn test_gated_defs_are_flagged_and_their_calls_skipped() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn prod() -> u32 { 1 }\n\
             #[cfg(test)]\nmod tests { fn t() { super::prod(); } }\n",
        )]);
        let t = w.defs.iter().find(|d| d.name == "t").expect("indexed");
        assert!(t.in_test);
        assert!(w.calls.is_empty(), "test-code calls are not graphed");
    }

    #[test]
    fn callgraph_json_is_deterministic() {
        let files = [
            (
                "crates/graph/src/iso.rs",
                "pub fn contains(a: u32) -> bool { helper(a) }\nfn helper(a: u32) -> bool { a > 0 }\n",
            ),
            (
                "crates/eval/src/basic.rs",
                "use catapult_graph::iso::contains;\npub fn run(x: u32) -> bool { contains(x) }\n",
            ),
        ];
        let one = ws(&files).callgraph_json().render();
        let two = ws(&files).callgraph_json().render();
        assert_eq!(one, two, "byte-identical across scans");
        assert!(one.contains("\"tool\": \"catalint-callgraph\""));
        let dot = ws(&files).callgraph_dot();
        assert!(dot.contains("catapult_eval::basic::run"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn pub_arity_and_self_shapes() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub(crate) fn two(a: u32, b: Vec<(u32, u32)>) -> u32 { a + b.len() as u32 }\n\
             struct S;\n\
             impl S { fn m(&mut self, x: u32) -> u32 { x } }\n",
        )]);
        let two = &w.defs[def_id(&w, "catapult_a::two")];
        assert!(two.is_pub);
        assert_eq!(two.arity, 2, "generic commas do not split params");
        assert!(!two.has_self);
        let m = &w.defs[def_id(&w, "catapult_a::S::m")];
        assert!(!m.is_pub);
        assert_eq!(m.arity, 1);
        assert!(m.has_self);
    }
}
