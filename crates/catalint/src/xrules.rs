//! Interprocedural rules running on the workspace call graph.
//!
//! These rules see what the per-file pass in [`crate::rules`] cannot: a
//! helper that drops the `SearchBudget` on its way into a kernel, a
//! library path that transitively reaches `unwrap`, a `Completeness`
//! tag discarded one call away from the kernel, and lock acquisitions
//! whose ordering only conflicts across function boundaries.
//!
//! All four rules consume the approximate call graph built by
//! [`crate::symbols::Workspace`] and restrict themselves to **resolved**
//! edges: an unresolved or ambiguous call never produces a finding, so
//! the graph's approximations can cause false negatives but not false
//! positives from mis-attributed edges. Every finding anchors at a call
//! site (never at a definition reached transitively), carries a witness
//! path in its message, and honors the same `xtask-allow` escape hatch
//! and fingerprint baseline as the file rules.

use crate::diag::{Diagnostic, Suppression};
use crate::lexer::TokenKind;
use crate::rules::{RuleInfo, COMPLETENESS_DIRS, KERNEL_FILES};
use crate::scan::SourceFile;
use crate::symbols::{CallSite, Callee, Workspace};
use crate::timing::RuleTimer;
use std::collections::{BTreeMap, BTreeSet};

/// Every interprocedural rule, in the order findings are reported.
pub const XRULES: &[RuleInfo] = &[
    RuleInfo {
        name: "budget-threading",
        summary: "pipeline→kernel call paths must pass a SearchBudget",
    },
    RuleInfo {
        name: "panic-reachability",
        summary: "kernel fns must not transitively reach panic!/unwrap",
    },
    RuleInfo {
        name: "completeness-flow",
        summary: "callers of Completeness-tagged fns must keep the tag",
    },
    RuleInfo {
        name: "lock-order-xfn",
        summary: "no cross-function lock ordering cycles or re-entry",
    },
];

/// Look up an interprocedural rule by name.
#[must_use]
pub fn xrule_named(name: &str) -> Option<&'static RuleInfo> {
    XRULES.iter().find(|r| r.name == name)
}

/// Pipeline directories whose kernel calls must thread a budget.
const PIPELINE_DIRS: &[&str] = &[
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/csg/src/",
    "crates/eval/src/",
    "crates/mining/src/",
    "src/",
];

/// The NP-hard kernel entry files (subset of [`KERNEL_FILES`] holding
/// the budgeted search routines).
const BUDGET_KERNEL_FILES: &[&str] = &[
    "crates/graph/src/iso.rs",
    "crates/graph/src/mcs.rs",
    "crates/graph/src/ged.rs",
];

/// Run every enabled interprocedural rule over the workspace.
pub fn check_workspace(
    ws: &Workspace,
    enabled: &BTreeSet<&'static str>,
    out: &mut Vec<Diagnostic>,
) {
    check_workspace_timed(ws, enabled, out, &mut RuleTimer::new(false));
}

/// [`check_workspace`] with per-rule wall-clock accounting (`--timing`).
pub fn check_workspace_timed(
    ws: &Workspace,
    enabled: &BTreeSet<&'static str>,
    out: &mut Vec<Diagnostic>,
    timer: &mut RuleTimer,
) {
    if enabled.contains("budget-threading") {
        timer.time("budget-threading", || budget_threading(ws, out));
    }
    if enabled.contains("panic-reachability") {
        timer.time("panic-reachability", || panic_reachability(ws, out));
    }
    if enabled.contains("completeness-flow") {
        timer.time("completeness-flow", || completeness_flow(ws, out));
    }
    if enabled.contains("lock-order-xfn") {
        timer.time("lock-order-xfn", || lock_order_xfn(ws, out));
    }
}

/// Record a finding at code token `ci` of file `fi`.
fn emit(
    ws: &Workspace,
    fi: usize,
    ci: usize,
    rule: &'static str,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    let f = &ws.files[fi];
    let (line, col) = f.cpos(ci);
    let suppressed = if f.allowed(line, rule) {
        Suppression::Allowed
    } else {
        Suppression::None
    };
    out.push(Diagnostic {
        rule,
        path: f.rel.clone(),
        line,
        col,
        snippet: f.line_snippet(line),
        enclosing_fn: f.enclosing_fn(ci).unwrap_or_default().to_string(),
        message,
        suppressed,
    });
}

fn rel_of(ws: &Workspace, def: usize) -> &str {
    &ws.files[ws.defs[def].file].rel
}

fn in_dirs(rel: &str, dirs: &[&str]) -> bool {
    dirs.iter().any(|d| rel.starts_with(d))
}

/// Budget-carrying type names: `SearchBudget`/`BudgetMeter` plus every
/// struct that transitively embeds one (configs like `McsConfig`).
fn budget_types(ws: &Workspace) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = ["SearchBudget", "BudgetMeter"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    loop {
        let mut grew = false;
        for s in &ws.structs {
            if names.contains(&s.name) {
                continue;
            }
            let carries = s
                .fields
                .iter()
                .any(|fd| fd.type_idents.iter().any(|t| names.contains(t)));
            if carries {
                names.insert(s.name.clone());
                grew = true;
            }
        }
        if !grew {
            return names;
        }
    }
}

// ---- budget-threading --------------------------------------------------

/// Rule `budget-threading`: every call path from the pipeline crates
/// into an iso/mcs/ged kernel must pass a `SearchBudget`. Two shapes
/// fire: a call to a kernel convenience whose signature cannot accept a
/// budget at all, and a call toward a budgeted kernel from a fn that
/// neither receives nor constructs any budget-carrying value.
fn budget_threading(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let carrying = budget_types(ws);
    // A method on a budget-carrying struct reaches its budget through the
    // receiver (`self.cfg.search`), so it carries too.
    let carries: Vec<bool> = (0..ws.defs.len())
        .map(|id| {
            let d = &ws.defs[id];
            ws.sig_mentions(id, &carrying)
                || ws.body_mentions(id, &carrying)
                || (d.has_self && d.receiver.as_ref().is_some_and(|r| carrying.contains(r)))
        })
        .collect();

    // Kernel partition: budgeted entries vs bare conveniences (free pub
    // fns only — accessors keep their receiver). "Bare" requires actually
    // wrapping a budgeted search behind a pinned internal budget:
    // polynomial helpers like `ged_lower_bound` never reach one and are
    // fine to call from anywhere.
    let mut budgeted: BTreeMap<usize, Option<usize>> = BTreeMap::new(); // def → next hop
    for (id, d) in ws.defs.iter().enumerate() {
        if d.in_test || !BUDGET_KERNEL_FILES.contains(&rel_of(ws, id)) {
            continue;
        }
        if ws.sig_mentions(id, &carrying) {
            budgeted.insert(id, None);
        }
    }
    let mut wraps: BTreeSet<usize> = BTreeSet::new(); // kernel defs reaching a budgeted def
    loop {
        let mut grew = false;
        for (id, d) in ws.defs.iter().enumerate() {
            if d.in_test
                || wraps.contains(&id)
                || budgeted.contains_key(&id)
                || !BUDGET_KERNEL_FILES.contains(&rel_of(ws, id))
            {
                continue;
            }
            let hits = ws.calls_of(id).iter().any(|&si| match ws.calls[si].callee {
                Callee::Resolved(t) => budgeted.contains_key(&t) || wraps.contains(&t),
                _ => false,
            });
            if hits {
                wraps.insert(id);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    let bare: BTreeSet<usize> = wraps
        .iter()
        .copied()
        .filter(|&id| {
            let d = &ws.defs[id];
            d.is_pub && d.receiver.is_none() && d.parent.is_none()
        })
        .collect();

    // Fixpoint: a pipeline fn that reaches a budgeted kernel without
    // carrying a budget passes the obligation up to its callers.
    loop {
        let mut grew = false;
        for (id, d) in ws.defs.iter().enumerate() {
            if d.in_test
                || carries[id]
                || budgeted.contains_key(&id)
                || !in_dirs(rel_of(ws, id), PIPELINE_DIRS)
            {
                continue;
            }
            let hop = ws.calls_of(id).iter().find_map(|&si| {
                let c = &ws.calls[si];
                match c.callee {
                    Callee::Resolved(t) if budgeted.contains_key(&t) => Some(t),
                    _ => None,
                }
            });
            if let Some(t) = hop {
                budgeted.insert(id, Some(t));
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    for (id, d) in ws.defs.iter().enumerate() {
        if d.in_test || !in_dirs(rel_of(ws, id), PIPELINE_DIRS) {
            continue;
        }
        for &si in ws.calls_of(id) {
            let c = &ws.calls[si];
            let Callee::Resolved(t) = c.callee else {
                continue;
            };
            if bare.contains(&t) {
                emit(
                    ws,
                    c.file,
                    c.ci,
                    "budget-threading",
                    format!(
                        "`{}` enters kernel `{}` which cannot accept a SearchBudget; \
                         call the budgeted/_tagged variant so the search degrades \
                         instead of running unbounded",
                        d.name,
                        ws.label(t)
                    ),
                    out,
                );
            } else if budgeted.contains_key(&t) && !carries[id] {
                let path = witness(ws, t, &budgeted);
                emit(
                    ws,
                    c.file,
                    c.ci,
                    "budget-threading",
                    format!(
                        "`{}` reaches a budgeted kernel (path: {} -> {path}) but neither \
                         receives nor constructs a SearchBudget; thread one through so \
                         callers control the node cap",
                        d.name, d.name
                    ),
                    out,
                );
            }
        }
    }
}

/// Follow next-hop links to render `a -> b -> kernel`.
fn witness(ws: &Workspace, from: usize, hops: &BTreeMap<usize, Option<usize>>) -> String {
    let mut parts = vec![ws.defs[from].name.clone()];
    let mut cur = from;
    let mut guard = 0;
    while let Some(Some(next)) = hops.get(&cur) {
        parts.push(ws.defs[*next].name.clone());
        cur = *next;
        guard += 1;
        if guard > 32 {
            break;
        }
    }
    parts.join(" -> ")
}

// ---- panic-reachability ------------------------------------------------

/// How a fn's own body panics, if it does. A `// xtask-allow:
/// panic-reachability` on the panicking line sanctions that one site at
/// its source (e.g. the deliberate, feature-gated crash of the
/// fault-injection plans) instead of forcing an annotation onto every
/// kernel call site whose closure passes through it.
fn direct_panic(ws: &Workspace, id: usize) -> Option<&'static str> {
    let f = &ws.files[ws.defs[id].file];
    let sanctioned = |ci: usize| {
        let (line, _) = f.cpos(ci);
        f.allowed(line, "panic-reachability")
    };
    for ci in ws.own_body(id) {
        if f.ckind(ci) == TokenKind::Ident && f.is_punct(ci + 1, "!") {
            let kind = match f.ctext(ci) {
                "panic" => Some("panic!"),
                "unreachable" => Some("unreachable!"),
                "todo" => Some("todo!"),
                "unimplemented" => Some("unimplemented!"),
                _ => None,
            };
            if let Some(kind) = kind {
                if sanctioned(ci) {
                    continue;
                }
                return Some(kind);
            }
        }
        if f.is_punct(ci, ".") && f.is_punct(ci + 2, "(") {
            let kind = if f.is_ident(ci + 1, "unwrap") {
                Some(".unwrap()")
            } else if f.is_ident(ci + 1, "expect") {
                Some(".expect()")
            } else {
                None
            };
            if let Some(kind) = kind {
                if sanctioned(ci) {
                    continue;
                }
                return Some(kind);
            }
        }
    }
    None
}

/// Rule `panic-reachability`: a kernel fn calling a same-workspace
/// helper that (transitively) panics aborts a whole selection run —
/// exactly the hole the per-file `kernel-no-panic` rule cannot see.
fn panic_reachability(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    // Defs that panic directly, with the panic kind.
    let mut reaches: BTreeMap<usize, (Option<usize>, &'static str)> = BTreeMap::new();
    for id in 0..ws.defs.len() {
        if ws.defs[id].in_test {
            continue;
        }
        if let Some(kind) = direct_panic(ws, id) {
            reaches.insert(id, (None, kind));
        }
    }
    // Backward closure over resolved edges.
    loop {
        let mut grew = false;
        for (id, d) in ws.defs.iter().enumerate() {
            if d.in_test || reaches.contains_key(&id) {
                continue;
            }
            let hop = ws
                .calls_of(id)
                .iter()
                .find_map(|&si| match ws.calls[si].callee {
                    Callee::Resolved(t) if reaches.contains_key(&t) => Some(t),
                    _ => None,
                });
            if let Some(t) = hop {
                let kind = reaches.get(&t).map_or("panic", |(_, k)| k);
                reaches.insert(id, (Some(t), kind));
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    for (id, d) in ws.defs.iter().enumerate() {
        if d.in_test || !KERNEL_FILES.contains(&rel_of(ws, id)) {
            continue;
        }
        for &si in ws.calls_of(id) {
            let c = &ws.calls[si];
            let Callee::Resolved(t) = c.callee else {
                continue;
            };
            if let Some((_, kind)) = reaches.get(&t) {
                let mut path = vec![d.name.clone()];
                let mut cur = t;
                path.push(ws.defs[cur].name.clone());
                let mut guard = 0;
                while let Some((Some(next), _)) = reaches.get(&cur) {
                    path.push(ws.defs[*next].name.clone());
                    cur = *next;
                    guard += 1;
                    if guard > 32 {
                        break;
                    }
                }
                emit(
                    ws,
                    c.file,
                    c.ci,
                    "panic-reachability",
                    format!(
                        "kernel fn `{}` reaches {kind} via {}; return an error or \
                         degrade via the SearchBudget instead",
                        d.name,
                        path.join(" -> ")
                    ),
                    out,
                );
            }
        }
    }
}

// ---- completeness-flow -------------------------------------------------

/// Completeness-tagged type names: `Completeness` plus every struct
/// that embeds one (results like `GedResult`).
fn tagged_types(ws: &Workspace) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = ["Completeness".to_string()].into_iter().collect();
    loop {
        let mut grew = false;
        for s in &ws.structs {
            if names.contains(&s.name) {
                continue;
            }
            let tagged = s
                .fields
                .iter()
                .any(|fd| fd.type_idents.iter().any(|t| names.contains(t)));
            if tagged {
                names.insert(s.name.clone());
                grew = true;
            }
        }
        if !grew {
            return names;
        }
    }
}

/// Does the def's declared return type mention a tagged name?
fn returns_tagged(ws: &Workspace, id: usize, tagged: &BTreeSet<String>) -> bool {
    let f = &ws.files[ws.defs[id].file];
    let (s, e) = ws.sig_range(id);
    let Some(arrow) = (s..=e).find(|&ci| f.is_punct(ci, "->")) else {
        return false;
    };
    (arrow..=e).any(|ci| f.ckind(ci) == TokenKind::Ident && tagged.contains(f.ctext(ci)))
}

/// Why a call site discards the tag of its tagged result, if it does.
fn discard_reason(f: &SourceFile, ci: usize) -> Option<String> {
    let (s, e) = f.stmt_range(ci);
    let consuming = |j: usize| {
        f.ckind(j) == TokenKind::Ident && matches!(f.ctext(j), "completeness" | "is_exact")
    };
    if (s..=e).any(consuming) {
        return None; // the tag is read somewhere in the statement
    }
    if !f.is_punct(e, ";") {
        return None; // tail expression: the tag propagates to the caller
    }
    if (s..ci).any(|j| f.is_ident(j, "return")) {
        return None;
    }
    if f.is_ident(s, "let") {
        if f.is_ident(s + 1, "_") {
            return Some("the result is bound to `_`".to_string());
        }
        if f.is_punct(s + 1, "(") {
            if let Some(close) = f.cmatch(s + 1) {
                if f.is_ident(close - 1, "_") {
                    return Some("the tag position of the tuple is bound to `_`".to_string());
                }
            }
        }
        return None; // a named binding counts as consumption
    }
    // Projection directly off the call: `call(…).distance` etc.
    if let Some(close) = f.cmatch(ci + 1) {
        let mut p = close + 1;
        if f.is_punct(p, "?") {
            p += 1;
        }
        if f.is_punct(p, ".") {
            let fld = p + 1;
            if fld < f.n_code()
                && (f.ckind(fld) == TokenKind::Ident || f.ckind(fld) == TokenKind::Int)
                && !consuming(fld)
            {
                return Some(format!(
                    "only `.{}` is projected out of the tagged result",
                    f.ctext(fld)
                ));
            }
        }
    }
    // A bare statement whose whole content is the call drops the result.
    let prefix_is_receiver = (s..ci).all(|j| {
        f.ckind(j) == TokenKind::Ident
            || f.is_punct(j, "::")
            || f.is_punct(j, ".")
            || f.is_punct(j, "&")
    });
    if prefix_is_receiver {
        return Some("the result (and its tag) is discarded".to_string());
    }
    None
}

/// Rule `completeness-flow`: a fn that returns a `Completeness`-tagged
/// result promises its callers a truth-in-labeling bit; a caller that
/// drops the tag silently converts a budget-truncated answer into a
/// confident one. Interprocedural upgrade of `consume-completeness`:
/// it follows the *type*, not a fixed list of kernel names.
fn completeness_flow(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let tagged = tagged_types(ws);
    let tagged_defs: BTreeSet<usize> = (0..ws.defs.len())
        .filter(|&id| !ws.defs[id].in_test && returns_tagged(ws, id, &tagged))
        .collect();

    for c in &ws.calls {
        if !in_dirs(&ws.files[c.file].rel, COMPLETENESS_DIRS) {
            continue;
        }
        let is_tagged = match &c.callee {
            Callee::Resolved(t) => tagged_defs.contains(t),
            Callee::Ambiguous(ts) => !ts.is_empty() && ts.iter().all(|t| tagged_defs.contains(t)),
            Callee::Unresolved => false,
        };
        if !is_tagged {
            continue;
        }
        if let Some(reason) = discard_reason(&ws.files[c.file], c.ci) {
            emit(
                ws,
                c.file,
                c.ci,
                "completeness-flow",
                format!(
                    "`{}` returns a Completeness-tagged result but {reason}; read \
                     `.completeness`/`is_exact` or propagate the tagged value",
                    c.name
                ),
                out,
            );
        }
    }
}

// ---- lock-order-xfn ----------------------------------------------------

/// A lock acquisition inside a fn body: `(key, code index)`.
fn lock_sites(ws: &Workspace, id: usize) -> Vec<(String, usize)> {
    let f = &ws.files[ws.defs[id].file];
    let mut out = Vec::new();
    for ci in ws.own_body(id) {
        if !f.is_punct(ci, ".")
            || !(f.is_ident(ci + 1, "lock") || f.is_ident(ci + 1, "try_lock"))
            || !f.is_punct(ci + 2, "(")
        {
            continue;
        }
        // The receiver chain, walked back over idents / `.` / `::`.
        let mut start = ci;
        let mut j = ci;
        while j > 0 {
            let p = j - 1;
            if f.ckind(p) == TokenKind::Ident || f.is_punct(p, ".") || f.is_punct(p, "::") {
                start = p;
                j = p;
            } else {
                break;
            }
        }
        let mut key: String = (start..ci).map(|k| f.ctext(k)).collect::<Vec<_>>().join("");
        if key.starts_with("self") {
            if let Some(r) = &ws.defs[id].receiver {
                key = format!("{r}::{key}");
            }
        }
        out.push((key, ci));
    }
    out
}

/// Rule `lock-order-xfn`: propagate lock acquisitions through the call
/// graph and flag (a) a lock re-acquired through a call path while
/// textually held (re-entrant `Mutex::lock` self-deadlocks), and (b)
/// lock-order cycles assembled across function boundaries, which the
/// per-file `lock-order` audit cannot see.
fn lock_order_xfn(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let own: Vec<Vec<(String, usize)>> = (0..ws.defs.len())
        .map(|id| {
            if ws.defs[id].in_test {
                Vec::new()
            } else {
                lock_sites(ws, id)
            }
        })
        .collect();

    // Transitive lock sets over resolved edges.
    let mut trans: Vec<BTreeSet<String>> = own
        .iter()
        .map(|v| v.iter().map(|(k, _)| k.clone()).collect())
        .collect();
    loop {
        let mut grew = false;
        for id in 0..ws.defs.len() {
            for &si in ws.calls_of(id) {
                if let Callee::Resolved(t) = ws.calls[si].callee {
                    let add: Vec<String> = trans[t].difference(&trans[id]).cloned().collect();
                    if !add.is_empty() {
                        trans[id].extend(add);
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }

    // Order edges `first -> second`, each with its witness site.
    let mut edges: BTreeMap<(String, String), (usize, usize, String)> = BTreeMap::new();
    for (id, locks) in own.iter().enumerate() {
        let fi = ws.defs[id].file;
        // Intra-fn ordered pairs.
        for (i, (ka, _)) in locks.iter().enumerate() {
            for (kb, cb) in locks.iter().skip(i + 1) {
                if ka != kb {
                    edges.entry((ka.clone(), kb.clone())).or_insert((
                        fi,
                        *cb,
                        ws.defs[id].name.clone(),
                    ));
                }
            }
        }
        // Locks textually held across a call pair with the callee's set.
        for &si in ws.calls_of(id) {
            let c = &ws.calls[si];
            let Callee::Resolved(t) = c.callee else {
                continue;
            };
            for (ka, ca) in locks {
                if *ca >= c.ci {
                    continue;
                }
                for kb in &trans[t] {
                    if kb == ka {
                        emit(
                            ws,
                            c.file,
                            c.ci,
                            "lock-order-xfn",
                            format!(
                                "`{}` holds `{ka}` and calls `{}`, which acquires it \
                                 again; re-entrant Mutex::lock self-deadlocks",
                                ws.defs[id].name, ws.defs[t].name
                            ),
                            out,
                        );
                    } else {
                        edges.entry((ka.clone(), kb.clone())).or_insert((
                            c.file,
                            c.ci,
                            ws.defs[id].name.clone(),
                        ));
                    }
                }
            }
        }
    }

    // Cycle detection over the key graph (deterministic DFS order).
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for (a, b) in edges.keys() {
        // A cycle exists through edge a→b iff b reaches a.
        if !reaches_key(&adj, b, a) {
            continue;
        }
        let mut cycle = vec![a.clone(), b.clone()];
        cycle.sort();
        if !reported.insert(cycle) {
            continue;
        }
        let (fi, ci, fn_name) = &edges[&(a.clone(), b.clone())];
        emit(
            ws,
            *fi,
            *ci,
            "lock-order-xfn",
            format!(
                "cross-function lock-order cycle: `{fn_name}` orders `{a}` before \
                 `{b}`, but another call path orders `{b}` before `{a}`; pick one \
                 global order"
            ),
            out,
        );
    }
}

/// Is `to` reachable from `from` in the key graph?
fn reaches_key(adj: &BTreeMap<&String, Vec<&String>>, from: &String, to: &String) -> bool {
    let mut seen: BTreeSet<&String> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(k) = stack.pop() {
        if k == to {
            return true;
        }
        if !seen.insert(k) {
            continue;
        }
        if let Some(next) = adj.get(k) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Shared by fixture tests: the resolved target of a call site, if any.
#[must_use]
pub fn resolved_target(c: &CallSite) -> Option<usize> {
    match c.callee {
        Callee::Resolved(t) => Some(t),
        _ => None,
    }
}
