//! Rule `taint`: interprocedural nondeterminism-taint analysis.
//!
//! CATAPULT's byte-determinism invariant (same DB, knobs, and seed →
//! same catalog) is enforced dynamically by the parallel-determinism and
//! resume-equivalence suites. This module enforces it *statically*: a
//! declarative model of **nondeterminism sources** (clock reads, thread
//! topology, env reads, unseeded RNG, hash iteration order, raw Mutex
//! acquisition order), **output sinks** (fns returning
//! `SelectionResult`/`PipelineReport`/`RunManifest` or any struct that
//! transitively embeds one, plus checkpoint wire writers), and
//! **sanitizers** (sort/BTree canonicalization, `median_of_sorted`,
//! commutative `merge`/`merge_all` folds), with taint propagated over
//! the **resolved** call-graph edges of [`crate::symbols::Workspace`] by
//! the same fixpoint machinery as the budget-threading obligation.
//!
//! The lattice is the powerset of [`KINDS`]; joins are unions. Order
//! kinds (`hash-order`, `lock-order`) are killed by an order sanitizer
//! on the propagating statement; value kinds (`time`, `thread`, `env`,
//! `rng`) survive any canonicalization and can only be sanctioned at
//! their source site with `// xtask-allow: taint -- <justification>` —
//! the justification is **mandatory**, a bare marker is itself an
//! active finding. Every finding carries a source→…→sink witness path.
//!
//! Approximation contract (same as `xrules`): only resolved edges
//! propagate, so the call graph's approximations cause false negatives,
//! never mis-attributed flows.

use crate::diag::{Diagnostic, Suppression};
use crate::lexer::TokenKind;
use crate::rules::{self, RuleInfo};
use crate::scan::SourceFile;
use crate::symbols::{Callee, Workspace};
use catapult_obs::json::Value;
use std::collections::{BTreeMap, BTreeSet};

/// The taint rule's registry entry (`--rule taint`, `xtask-allow: taint`).
pub const TAINT_RULES: &[RuleInfo] = &[RuleInfo {
    name: "taint",
    summary: "nondeterminism sources must not flow into deterministic outputs",
}];

/// Look up the taint rule by name.
#[must_use]
pub fn taint_rule_named(name: &str) -> Option<&'static RuleInfo> {
    TAINT_RULES.iter().find(|r| r.name == name)
}

/// Schema version of the `--taint-graph` JSON export.
pub const TAINT_GRAPH_SCHEMA_VERSION: u64 = 1;

/// Taint kinds, in report order. `hash-order` and `lock-order` are the
/// *order* kinds an order sanitizer can kill; the rest are value kinds.
pub const KINDS: &[&str] = &["time", "thread", "env", "rng", "hash-order", "lock-order"];

/// Is this an order kind (killable by sort/BTree/merge canonicalization)?
fn is_order_kind(kind: &str) -> bool {
    matches!(kind, "hash-order" | "lock-order")
}

/// Deterministic-output type names seeding the sink closure. Structs
/// transitively embedding one of these are sinks too (the struct-field
/// fixpoint below), so a helper returning `Bundle { sel: SelectionResult }`
/// inherits the obligation.
const SINK_TYPE_SEEDS: &[&str] = &["SelectionResult", "PipelineReport", "RunManifest"];

/// Statement tokens that canonicalize away *order* nondeterminism before
/// it can reach a sink: the [`rules::ORDER_SINKS`] family plus the
/// commutative+associative fold conveniences.
const ORDER_SANITIZER_EXTRA: &[&str] = &["median_of_sorted", "merge", "merge_all"];

/// Modules outside the determinism contract, never scanned for sources
/// or sinks: the observability crate (its recorder is proven
/// output-neutral and it *owns* the sanctioned clock), the executor
/// shim (thread topology is its job), the bench harness (time-valued by
/// design; the bench-diff deterministic-field gate covers its
/// manifests), the analyzer and driver themselves, and the
/// fault-injection plans (test-only by feature gate).
const EXEMPT_PREFIXES: &[&str] = &[
    "crates/obs/",
    "shims/",
    "crates/bench/",
    "crates/catalint/",
    "crates/xtask/",
    "crates/ckpt/src/fault.rs",
];

fn in_scope(rel: &str) -> bool {
    rules::is_library_src(rel) && !EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// One detected nondeterminism source site inside a fn body.
#[derive(Clone, Debug)]
struct SourceSite {
    /// Code index to anchor a diagnostic at.
    ci: usize,
    /// Taint kind (member of [`KINDS`]).
    kind: &'static str,
    /// Human description of the read (`Instant::now()`, …).
    what: String,
}

/// Why a def is tainted with one kind: either a direct source in its
/// own body (`via: None`) or a resolved call to a tainted def.
#[derive(Clone, Debug)]
struct Origin {
    /// Next hop toward the source (callee def id), `None` at the source.
    via: Option<usize>,
    /// File index of the anchoring site (source read or call site).
    file: usize,
    /// Code index of the anchoring site.
    ci: usize,
    /// Source description (filled on the terminal entry).
    what: String,
}

/// The computed source/sink/propagation state, reused by the findings
/// pass and the `--taint-graph` exports.
#[derive(Debug)]
pub struct TaintGraph {
    /// Per-def direct source sites (in-scope, unsanctioned).
    sources: BTreeMap<usize, Vec<SourceSite>>,
    /// `(def, kind)` → how the taint got there.
    tainted: BTreeMap<(usize, &'static str), Origin>,
    /// Sink defs with a description of their obligation.
    sinks: BTreeMap<usize, String>,
    /// Sanctioned source sites (justified allows), for the audit trail:
    /// `(file, ci, kind, what, justification)`.
    sanctioned: Vec<(usize, usize, &'static str, String, String)>,
    /// Allow markers for `taint` with no justification: `(file, ci)`.
    unjustified: Vec<(usize, usize)>,
}

/// Run the taint rule over the workspace (no-op unless enabled).
pub fn check_workspace(
    ws: &Workspace,
    enabled: &BTreeSet<&'static str>,
    out: &mut Vec<Diagnostic>,
) {
    if !enabled.contains("taint") {
        return;
    }
    TaintGraph::compute(ws).findings(ws, out);
}

impl TaintGraph {
    /// Build the full source→sink taint state for the workspace.
    #[must_use]
    pub fn compute(ws: &Workspace) -> TaintGraph {
        let resolved_names = resolved_name_tokens(ws);
        let mut g = TaintGraph {
            sources: BTreeMap::new(),
            tainted: BTreeMap::new(),
            sinks: BTreeMap::new(),
            sanctioned: Vec::new(),
            unjustified: Vec::new(),
        };

        // Per-file hash-container names (same inference as the per-file
        // hash-iter-order rule).
        let hash_names: Vec<BTreeSet<&str>> = ws
            .files
            .iter()
            .map(|f| {
                if in_scope(&f.rel) {
                    rules::collect_hash_names(f)
                } else {
                    BTreeSet::new()
                }
            })
            .collect();

        // 1. Direct sources, minus sanctioned sites.
        for (id, d) in ws.defs.iter().enumerate() {
            if d.in_test || !in_scope(&ws.files[d.file].rel) {
                continue;
            }
            let f = &ws.files[d.file];
            let mut kept = Vec::new();
            for site in direct_sources(ws, id, &hash_names[d.file], &resolved_names) {
                let (line, _) = f.cpos(site.ci);
                match f.allow_justification(line, "taint") {
                    Some(just) if !just.is_empty() => {
                        g.sanctioned.push((
                            d.file,
                            site.ci,
                            site.kind,
                            site.what.clone(),
                            just.to_string(),
                        ));
                    }
                    Some(_) => g.unjustified.push((d.file, site.ci)),
                    None => kept.push(site),
                }
            }
            if !kept.is_empty() {
                for site in &kept {
                    g.tainted.entry((id, site.kind)).or_insert(Origin {
                        via: None,
                        file: d.file,
                        ci: site.ci,
                        what: site.what.clone(),
                    });
                }
                g.sources.insert(id, kept);
            }
        }

        // 2. Backward closure over resolved edges, per kind, killing
        // order taint at sanitizing statements and any taint at a
        // justified call-site sanction.
        loop {
            let mut grew = false;
            for (id, d) in ws.defs.iter().enumerate() {
                if d.in_test {
                    continue;
                }
                let f = &ws.files[d.file];
                for &kind in KINDS {
                    if g.tainted.contains_key(&(id, kind)) {
                        continue;
                    }
                    let hop = ws.calls_of(id).iter().find_map(|&si| {
                        let c = &ws.calls[si];
                        let Callee::Resolved(t) = c.callee else {
                            return None;
                        };
                        if !g.tainted.contains_key(&(t, kind)) {
                            return None;
                        }
                        if edge_killed(f, c.ci, kind) {
                            return None;
                        }
                        Some((si, t))
                    });
                    if let Some((si, t)) = hop {
                        let c = &ws.calls[si];
                        g.tainted.insert(
                            (id, kind),
                            Origin {
                                via: Some(t),
                                file: c.file,
                                ci: c.ci,
                                what: String::new(),
                            },
                        );
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }

        // 3. Sinks: deterministic-output returners (through the
        // struct-embedding closure) plus checkpoint wire writers.
        let sink_types = sink_type_closure(ws);
        for (id, d) in ws.defs.iter().enumerate() {
            let rel = &ws.files[d.file].rel;
            if d.in_test || !in_scope(rel) {
                continue;
            }
            if let Some(t) = returned_sink_type(ws, id, &sink_types) {
                g.sinks.insert(id, format!("returns `{t}`"));
            } else if is_wire_writer(rel, &d.name) {
                g.sinks
                    .insert(id, "writes the checkpoint wire format".to_string());
            }
        }
        g
    }

    /// Emit the rule's diagnostics: unjustified sanctions, sanctioned
    /// sources (suppressed, for the audit trail), and source→sink flows.
    fn findings(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for &(fi, ci) in &self.unjustified {
            emit_taint(
                ws,
                fi,
                ci,
                "`xtask-allow: taint` requires a written justification; append \
                 `-- <why this flow cannot change selection output>` to the marker"
                    .to_string(),
                Suppression::None,
                out,
            );
        }
        for (fi, ci, kind, what, just) in &self.sanctioned {
            emit_taint(
                ws,
                *fi,
                *ci,
                format!("sanctioned nondeterminism source ({kind}: {what}) -- {just}"),
                Suppression::Allowed,
                out,
            );
        }
        for (&id, desc) in &self.sinks {
            for &kind in KINDS {
                let Some(origin) = self.tainted.get(&(id, kind)) else {
                    continue;
                };
                let (path, what, src_file, src_ci) = self.witness(ws, id, kind);
                let f = &ws.files[src_file];
                let (line, _) = f.cpos(src_ci);
                let src_at = format!("{}:{line}", f.rel);
                let remedy = if is_order_kind(kind) {
                    "canonicalize the flow (sort/BTree collect or a commutative merge)"
                } else {
                    "derive the value from run inputs"
                };
                let message = if origin.via.is_none() {
                    format!(
                        "`{}` {desc} but reads {what} ({kind} nondeterminism) at \
                         {src_at}; {remedy} or sanction the source with \
                         `// xtask-allow: taint -- <justification>`",
                        ws.defs[id].name
                    )
                } else {
                    format!(
                        "`{}` {desc} but is reached by {what} ({kind} nondeterminism): \
                         path {path}; source at {src_at}; {remedy} or sanction the \
                         source with `// xtask-allow: taint -- <justification>`",
                        ws.defs[id].name
                    )
                };
                // Sanctioned sites never reach this point: a justified
                // allow suppresses seeding (sources) or kills the hop
                // (propagation), so every flow finding is active.
                emit_taint(ws, origin.file, origin.ci, message, Suppression::None, out);
            }
        }
    }

    /// Follow `via` hops from `id` down to the source: returns the
    /// rendered `a -> b -> c` path, the source description, and the
    /// source site `(file, ci)`.
    fn witness(
        &self,
        ws: &Workspace,
        id: usize,
        kind: &'static str,
    ) -> (String, String, usize, usize) {
        let mut names = vec![ws.defs[id].name.clone()];
        let mut cur = id;
        let mut guard = 0;
        while let Some(origin) = self.tainted.get(&(cur, kind)) {
            match origin.via {
                Some(next) => {
                    names.push(ws.defs[next].name.clone());
                    cur = next;
                }
                None => {
                    return (
                        names.join(" -> "),
                        origin.what.clone(),
                        origin.file,
                        origin.ci,
                    )
                }
            }
            guard += 1;
            if guard > 64 {
                break;
            }
        }
        let d = &ws.defs[cur];
        (
            names.join(" -> "),
            "a nondeterminism source".to_string(),
            d.file,
            ws.span_of(cur).name_ci,
        )
    }

    /// The `--taint-graph` JSON export: sources, sinks, and the tainted
    /// defs with their next hops. Byte-stable across runs.
    #[must_use]
    pub fn to_json(&self, ws: &Workspace) -> Value {
        let def_at = |id: usize| {
            let d = &ws.defs[id];
            let mut v = Value::object();
            v.set("fn", ws.label(id))
                .set("file", ws.files[d.file].rel.as_str());
            v
        };
        let mut sources = Value::array();
        for (&id, sites) in &self.sources {
            for s in sites {
                let f = &ws.files[ws.defs[id].file];
                let (line, _) = f.cpos(s.ci);
                let mut v = def_at(id);
                v.set("line", line)
                    .set("kind", s.kind)
                    .set("what", s.what.as_str());
                sources.push(v);
            }
        }
        let mut sanctioned = Value::array();
        for (fi, ci, kind, what, just) in &self.sanctioned {
            let f = &ws.files[*fi];
            let (line, _) = f.cpos(*ci);
            let mut v = Value::object();
            v.set("file", f.rel.as_str())
                .set("line", line)
                .set("kind", *kind)
                .set("what", what.as_str())
                .set("justification", just.as_str());
            sanctioned.push(v);
        }
        let mut sinks = Value::array();
        for (&id, desc) in &self.sinks {
            let mut v = def_at(id);
            v.set("obligation", desc.as_str());
            sinks.push(v);
        }
        let mut tainted = Value::array();
        for ((id, kind), origin) in &self.tainted {
            let mut v = def_at(*id);
            v.set("kind", *kind);
            match origin.via {
                Some(next) => v.set("via", ws.label(next)),
                None => v.set("via", Value::Null),
            };
            tainted.push(v);
        }
        let mut v = Value::object();
        v.set("schema_version", TAINT_GRAPH_SCHEMA_VERSION)
            .set("tool", "catalint")
            .set("kinds", {
                let mut a = Value::array();
                for k in KINDS {
                    a.push(*k);
                }
                a
            })
            .set("sources", sources)
            .set("sanctioned", sanctioned)
            .set("sinks", sinks)
            .set("tainted", tainted);
        v
    }

    /// The `--taint-graph-dot` Graphviz export: tainted defs as nodes
    /// (sources shaded, sinks boxed), propagation hops as edges.
    #[must_use]
    pub fn to_dot(&self, ws: &Workspace) -> String {
        use std::fmt::Write as _;
        let mut s =
            String::from("digraph taint {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n");
        let mut nodes: BTreeSet<usize> = BTreeSet::new();
        for &(id, _) in self.tainted.keys() {
            nodes.insert(id);
        }
        for &id in self.sinks.keys() {
            nodes.insert(id);
        }
        for &id in &nodes {
            let mut attrs = Vec::new();
            if self.sources.contains_key(&id) {
                attrs.push("style=filled, fillcolor=lightcoral");
            }
            if self.sinks.contains_key(&id) {
                attrs.push("shape=box");
            }
            let _ = writeln!(s, "  \"{}\" [{}];", ws.label(id), attrs.join(", "));
        }
        for ((id, kind), origin) in &self.tainted {
            if let Some(next) = origin.via {
                let _ = writeln!(
                    s,
                    "  \"{}\" -> \"{}\" [label=\"{kind}\"];",
                    ws.label(*id),
                    ws.label(next)
                );
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Record a taint finding with an explicit suppression decision (the
/// justification policy means a bare allow must NOT suppress).
fn emit_taint(
    ws: &Workspace,
    fi: usize,
    ci: usize,
    message: String,
    suppressed: Suppression,
    out: &mut Vec<Diagnostic>,
) {
    let f = &ws.files[fi];
    let (line, col) = f.cpos(ci);
    out.push(Diagnostic {
        rule: "taint",
        path: f.rel.clone(),
        line,
        col,
        snippet: f.line_snippet(line),
        enclosing_fn: f.enclosing_fn(ci).unwrap_or_default().to_string(),
        message,
        suppressed,
    });
}

/// Code indices of call-name tokens with a **resolved** workspace
/// target, per file — used to tell `guard.lock()` on a raw `Mutex`
/// (source) from a call to a workspace method that happens to be named
/// `lock` (covered interprocedurally instead).
fn resolved_name_tokens(ws: &Workspace) -> BTreeSet<(usize, usize)> {
    ws.calls
        .iter()
        .filter(|c| matches!(c.callee, Callee::Resolved(_)))
        .map(|c| (c.file, c.ci))
        .collect()
}

/// Does the statement holding `ci` canonicalize away order taint, or is
/// the whole hop sanctioned by a justified allow?
fn edge_killed(f: &SourceFile, ci: usize, kind: &'static str) -> bool {
    let (line, _) = f.cpos(ci);
    if f.allow_justification(line, "taint")
        .is_some_and(|j| !j.is_empty())
    {
        return true;
    }
    order_sanitized(f, ci, kind)
}

/// The statement-level canonicalization check alone (no allow lookup):
/// `direct_sources` uses this so a justified allow still surfaces the
/// site in the sanctioned audit trail instead of silently erasing it.
fn order_sanitized(f: &SourceFile, ci: usize, kind: &'static str) -> bool {
    if !is_order_kind(kind) {
        return false;
    }
    let range = f.stmt_range(ci);
    f.range_any(range, |i| {
        f.ckind(i) == TokenKind::Ident
            && (rules::ORDER_SINKS.contains(&f.ctext(i))
                || ORDER_SANITIZER_EXTRA.contains(&f.ctext(i)))
    }) || rules::let_followed_by_sort(f, range)
}

/// Scan a def's own body for nondeterminism reads.
fn direct_sources(
    ws: &Workspace,
    id: usize,
    hash_names: &BTreeSet<&str>,
    resolved_names: &BTreeSet<(usize, usize)>,
) -> Vec<SourceSite> {
    let d = &ws.defs[id];
    let f = &ws.files[d.file];
    let mut out = Vec::new();
    let mut flagged_stmts: BTreeSet<usize> = BTreeSet::new();

    for ci in ws.own_body(id) {
        // Clock reads: `Instant::now()`, `SystemTime::now()`, and the
        // sanctioned wrapper `catapult_obs::now()` (the wrapper is how
        // deadline plumbing reads time; the *read* is still a source).
        if f.ckind(ci) == TokenKind::Ident
            && f.is_punct(ci + 1, "::")
            && f.is_ident(ci + 2, "now")
            && f.is_punct(ci + 3, "(")
        {
            let base = f.ctext(ci);
            if matches!(base, "Instant" | "SystemTime" | "catapult_obs") {
                out.push(SourceSite {
                    ci,
                    kind: "time",
                    what: format!("{base}::now()"),
                });
                continue;
            }
        }
        // Thread topology.
        if f.ckind(ci) == TokenKind::Ident {
            let name = f.ctext(ci);
            if matches!(
                name,
                "available_parallelism" | "current_thread_index" | "ThreadId"
            ) {
                out.push(SourceSite {
                    ci,
                    kind: "thread",
                    what: format!("`{name}`"),
                });
                continue;
            }
            if f.is_punct(ci + 1, "::") && f.is_ident(ci, "thread") && f.is_ident(ci + 2, "current")
            {
                out.push(SourceSite {
                    ci,
                    kind: "thread",
                    what: "`thread::current`".to_string(),
                });
                continue;
            }
        }
        // Environment reads: `env::var("…")` / `env::var_os`.
        if (f.is_ident(ci, "var") || f.is_ident(ci, "var_os"))
            && ci >= 2
            && f.is_punct(ci - 1, "::")
            && f.is_ident(ci - 2, "env")
            && f.is_punct(ci + 1, "(")
        {
            let arg = if ci + 2 < f.n_code() && f.ckind(ci + 2) == TokenKind::StrLit {
                f.ctext(ci + 2).to_string()
            } else {
                "…".to_string()
            };
            out.push(SourceSite {
                ci,
                kind: "env",
                what: format!("env::{}({arg})", f.ctext(ci)),
            });
            continue;
        }
        // RNG not derived from the run seed (`seed_from_u64`/`from_seed`
        // constructions are deterministic and deliberately not listed).
        if f.ckind(ci) == TokenKind::Ident {
            let name = f.ctext(ci);
            if matches!(name, "thread_rng" | "from_entropy" | "OsRng") {
                out.push(SourceSite {
                    ci,
                    kind: "rng",
                    what: format!("`{name}`"),
                });
                continue;
            }
            if name == "RandomState" {
                out.push(SourceSite {
                    ci,
                    kind: "hash-order",
                    what: "`RandomState` (randomized hashing)".to_string(),
                });
                continue;
            }
        }
        // Hash-container iteration (same patterns as `hash-iter-order`),
        // locally sanitized by an order sink in the statement.
        let chain = f.ckind(ci) == TokenKind::Ident
            && hash_names.contains(f.ctext(ci))
            && f.is_punct(ci + 1, ".")
            && ci + 2 < f.n_code()
            && f.ckind(ci + 2) == TokenKind::Ident
            && rules::HASH_ITER_METHODS.contains(&f.ctext(ci + 2))
            && f.is_punct(ci + 3, "(");
        let direct_for = f.is_ident(ci, "for") && {
            let (s, e) = f.stmt_range(ci);
            let in_at = (s..=e).find(|&i| f.is_ident(i, "in"));
            in_at.is_some_and(|at| {
                f.range_any((at + 1, e), |i| {
                    f.ckind(i) == TokenKind::Ident && hash_names.contains(f.ctext(i))
                })
            })
        };
        if chain || direct_for {
            let anchor = if chain { ci + 2 } else { ci };
            let range = f.stmt_range(ci);
            if flagged_stmts.insert(range.0) && !order_sanitized(f, anchor, "hash-order") {
                out.push(SourceSite {
                    ci: anchor,
                    kind: "hash-order",
                    what: "HashMap/HashSet iteration".to_string(),
                });
            }
            continue;
        }
        // Raw `Mutex::lock` acquisition order. A `.lock()` resolving to
        // a workspace method is not a raw acquisition — if that method
        // is itself tainted, propagation covers it.
        if f.is_punct(ci, ".")
            && (f.is_ident(ci + 1, "lock") || f.is_ident(ci + 1, "try_lock"))
            && f.is_punct(ci + 2, "(")
            && !resolved_names.contains(&(d.file, ci + 1))
        {
            let range = f.stmt_range(ci);
            if flagged_stmts.insert(range.0) && !order_sanitized(f, ci + 1, "lock-order") {
                out.push(SourceSite {
                    ci: ci + 1,
                    kind: "lock-order",
                    what: "Mutex-guarded accumulation order".to_string(),
                });
            }
        }
    }
    out
}

/// Sink type names: the seeds plus every struct transitively embedding
/// one (the budget-threading struct-field fixpoint).
fn sink_type_closure(ws: &Workspace) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = SINK_TYPE_SEEDS.iter().map(|s| (*s).to_string()).collect();
    loop {
        let mut grew = false;
        for s in &ws.structs {
            if names.contains(&s.name) {
                continue;
            }
            let embeds = s
                .fields
                .iter()
                .any(|fd| fd.type_idents.iter().any(|t| names.contains(t)));
            if embeds {
                names.insert(s.name.clone());
                grew = true;
            }
        }
        if !grew {
            return names;
        }
    }
}

/// The sink type a def's declared return type mentions, if any.
fn returned_sink_type(ws: &Workspace, id: usize, sinks: &BTreeSet<String>) -> Option<String> {
    let f = &ws.files[ws.defs[id].file];
    let (s, e) = ws.sig_range(id);
    let arrow = (s..=e).find(|&ci| f.is_punct(ci, "->"))?;
    (arrow..=e)
        .find(|&ci| f.ckind(ci) == TokenKind::Ident && sinks.contains(f.ctext(ci)))
        .map(|ci| f.ctext(ci).to_string())
}

/// Checkpoint wire writers: encode/write entry points in the wire codec
/// or a crate's `ckpt_io` bridge.
fn is_wire_writer(rel: &str, name: &str) -> bool {
    (rel.ends_with("/ckpt_io.rs") || rel.ends_with("/wire.rs"))
        && (name.starts_with("encode") || name.starts_with("write"))
}
