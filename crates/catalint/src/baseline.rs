//! The grandfathering baseline (`catalint.baseline.json`), schema v2.
//!
//! v1 recorded a *count* per `(rule, path)` — a ratchet that kept the
//! file stable but had a masking hole: fixing one finding in a file
//! freed up head-room a brand-new finding in the same file could hide
//! behind. v2 entries are **fingerprints**:
//!
//! ```text
//! { rule, path, fn, hash, count }
//! ```
//!
//! where `fn` is the enclosing function and `hash` the FNV-1a of the
//! offending line's trimmed text. A finding that merely moves (code
//! added above it) keeps its fingerprint; a finding whose line is
//! *edited* gets a new one and fails the build until fixed or
//! re-baselined. Fixing one finding can therefore never mask another.
//!
//! Matching semantics per fingerprint:
//!
//! - current matches **>** recorded count → the excess stays active;
//! - current matches **≤** recorded count → suppressed as `Baselined`;
//! - current matches **<** recorded count → additionally surfaced as a
//!   *stale* entry so `--update-baseline` can shrink the file.
//!
//! Schema-v1 files are rejected with a migration hint: run
//! `cargo xtask lint --update-baseline` to rewrite the ledger (CI fails
//! on v1 files so the migration cannot be deferred silently).

use crate::diag::{Report, Suppression};
use catapult_obs::json::{self, Value};
use std::collections::BTreeMap;

/// Schema version of `catalint.baseline.json`.
pub const BASELINE_SCHEMA_VERSION: u64 = 2;

/// A finding's baseline identity: `(rule, path, enclosing fn, snippet
/// hash)`.
type Fingerprint = (String, String, String, String);

/// Grandfathered finding counts keyed by fingerprint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<Fingerprint, u64>,
}

impl Baseline {
    /// Parse a baseline document. Returns a descriptive error for a
    /// malformed or wrong-schema file (the build should fail loudly
    /// rather than silently ignore its debt ledger); a v1 file gets an
    /// explicit migration hint.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        match doc.get("schema_version") {
            Some(Value::UInt(BASELINE_SCHEMA_VERSION)) => {}
            Some(Value::UInt(1)) => {
                return Err(
                    "baseline is schema v1 (per-file count ratchet); run `cargo xtask \
                     lint --update-baseline` to migrate it to v2 fingerprints"
                        .to_string(),
                )
            }
            other => {
                return Err(format!(
                    "unsupported baseline schema_version {other:?} (expected {BASELINE_SCHEMA_VERSION})"
                ))
            }
        }
        let mut entries = BTreeMap::new();
        let Some(Value::Array(items)) = doc.get("entries") else {
            return Err("baseline is missing the `entries` array".to_string());
        };
        for item in items {
            let rule = item.get("rule").and_then(as_str);
            let path = item.get("path").and_then(as_str);
            let func = item.get("fn").and_then(as_str);
            let hash = item.get("hash").and_then(as_str);
            let count = match item.get("count") {
                Some(Value::UInt(n)) => Some(*n),
                _ => None,
            };
            match (rule, path, func, hash, count) {
                (Some(rule), Some(path), Some(func), Some(hash), Some(count)) => {
                    entries.insert(
                        (
                            rule.to_string(),
                            path.to_string(),
                            func.to_string(),
                            hash.to_string(),
                        ),
                        count,
                    );
                }
                _ => return Err(format!("malformed baseline entry: {item:?}")),
            }
        }
        Ok(Baseline { entries })
    }

    /// Build a baseline that grandfathers every *active* finding in
    /// `report` (allowed findings keep their inline markers instead).
    #[must_use]
    pub fn from_report(report: &Report) -> Baseline {
        let mut entries: BTreeMap<Fingerprint, u64> = BTreeMap::new();
        for d in &report.findings {
            if d.suppressed == Suppression::Allowed {
                continue;
            }
            *entries.entry(d.fingerprint()).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Number of fingerprint entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no findings are grandfathered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Apply the baseline to `report`: suppress findings whose
    /// fingerprint has head-room and record stale entries. Findings
    /// already suppressed by an inline allow are untouched.
    pub fn apply(&self, report: &mut Report) {
        let mut used: BTreeMap<Fingerprint, u64> = BTreeMap::new();
        for d in &mut report.findings {
            if d.suppressed != Suppression::None {
                continue;
            }
            let fp = d.fingerprint();
            let Some(&recorded) = self.entries.get(&fp) else {
                continue;
            };
            let seen = used.entry(fp).or_insert(0);
            if *seen < recorded {
                *seen += 1;
                d.suppressed = Suppression::Baselined;
            }
        }
        for (fp, &recorded) in &self.entries {
            let now = used.get(fp).copied().unwrap_or(0);
            if now < recorded {
                report.stale_baseline.push((
                    fp.0.clone(),
                    format!("{} (fn {}, hash {})", fp.1, display_fn(&fp.2), fp.3),
                    recorded,
                    now,
                ));
            }
        }
    }

    /// How a regenerated ledger differs from the previous one: counts of
    /// fingerprints added, pruned outright, and entries whose head-room
    /// grew or shrank. `--update-baseline` prints this so a rewrite is
    /// auditable in the diff *and* in the terminal.
    #[must_use]
    pub fn diff(old: &Baseline, new: &Baseline) -> BaselineDiff {
        let mut d = BaselineDiff::default();
        for (fp, &n) in &new.entries {
            match old.entries.get(fp) {
                None => d.added += 1,
                Some(&o) if n > o => d.grown += 1,
                Some(&o) if n < o => d.shrunk += 1,
                Some(_) => {}
            }
        }
        d.pruned = old
            .entries
            .keys()
            .filter(|fp| !new.entries.contains_key(*fp))
            .count();
        d
    }

    /// Render as the checked-in JSON document (sorted, schema-versioned).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut items = Value::array();
        for ((rule, path, func, hash), count) in &self.entries {
            let mut e = Value::object();
            e.set("rule", rule.as_str())
                .set("path", path.as_str())
                .set("fn", func.as_str())
                .set("hash", hash.as_str())
                .set("count", *count);
            items.push(e);
        }
        let mut v = Value::object();
        v.set("schema_version", BASELINE_SCHEMA_VERSION)
            .set("entries", items);
        v
    }
}

/// Delta between two baselines (see [`Baseline::diff`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaselineDiff {
    /// Fingerprints present only in the new ledger (fresh debt).
    pub added: usize,
    /// Fingerprints dropped entirely (debt paid off, or the offending
    /// line was edited and re-fingerprinted).
    pub pruned: usize,
    /// Entries whose grandfathered count increased.
    pub grown: usize,
    /// Entries whose count decreased but did not reach zero.
    pub shrunk: usize,
}

impl BaselineDiff {
    /// True when the rewrite changed nothing.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        *self == BaselineDiff::default()
    }

    /// One-line human summary, e.g. `+2 added, -3 pruned, 1 shrunk`.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_noop() {
            return "no changes".to_string();
        }
        let mut parts = Vec::new();
        if self.added > 0 {
            parts.push(format!("+{} added", self.added));
        }
        if self.pruned > 0 {
            parts.push(format!("-{} pruned", self.pruned));
        }
        if self.grown > 0 {
            parts.push(format!("{} grown", self.grown));
        }
        if self.shrunk > 0 {
            parts.push(format!("{} shrunk", self.shrunk));
        }
        parts.join(", ")
    }
}

fn display_fn(name: &str) -> &str {
    if name.is_empty() {
        "<file>"
    } else {
        name
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn diag(rule: &'static str, path: &str, line: usize, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.into(),
            line,
            col: 1,
            snippet: snippet.into(),
            enclosing_fn: "f".into(),
            message: String::new(),
            suppressed: Suppression::None,
        }
    }

    fn report(findings: Vec<Diagnostic>) -> Report {
        Report {
            findings,
            files_scanned: 1,
            rules_run: vec![],
            stale_baseline: vec![],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let mut r = report(vec![
            diag("cast-truncation", "a.rs", 1, "x as u32"),
            diag("cast-truncation", "a.rs", 5, "y as u16"),
        ]);
        r.finalize();
        let b = Baseline::from_report(&r);
        let text = b.to_json().render();
        let back = Baseline::parse(&text).expect("parses");
        assert_eq!(back, b);
        assert_eq!(back.len(), 2, "distinct snippets get distinct fingerprints");
        assert!(text.contains("\"schema_version\": 2"));
        assert!(text.contains("\"hash\""));
    }

    #[test]
    fn suppresses_matching_fingerprints_only() {
        let mut r = report(vec![
            diag("r", "a.rs", 1, "old debt line"),
            diag("r", "a.rs", 9, "brand new line"),
        ]);
        let b = Baseline::from_report(&report(vec![diag("r", "a.rs", 1, "old debt line")]));
        b.apply(&mut r);
        assert_eq!(r.count(Suppression::Baselined), 1);
        assert_eq!(
            r.count(Suppression::None),
            1,
            "a new finding in the same file cannot hide behind fixed debt"
        );
    }

    #[test]
    fn line_moves_keep_identity_edits_do_not() {
        let b = Baseline::from_report(&report(vec![diag("r", "a.rs", 10, "x as u32")]));
        let mut moved = report(vec![diag("r", "a.rs", 99, "x as u32")]);
        b.apply(&mut moved);
        assert_eq!(
            moved.count(Suppression::Baselined),
            1,
            "moved line still suppressed"
        );
        let mut edited = report(vec![diag("r", "a.rs", 10, "x as u64")]);
        b.apply(&mut edited);
        assert_eq!(
            edited.count(Suppression::None),
            1,
            "edited line fails the build"
        );
        assert_eq!(
            edited.stale_baseline.len(),
            1,
            "the old fingerprint goes stale"
        );
    }

    #[test]
    fn excess_matches_stay_active() {
        let mut r = report(vec![
            diag("r", "a.rs", 1, "same line"),
            diag("r", "a.rs", 2, "same line"),
        ]);
        let b = Baseline::from_report(&report(vec![diag("r", "a.rs", 1, "same line")]));
        b.apply(&mut r);
        assert_eq!(r.count(Suppression::Baselined), 1);
        assert_eq!(
            r.count(Suppression::None),
            1,
            "head-room is bounded by count"
        );
    }

    #[test]
    fn rejects_v1_with_migration_hint_and_malformed_entries() {
        let v1 = "{\n  \"schema_version\": 1,\n  \"entries\": [\n    {\"rule\": \"r\", \"path\": \"a.rs\", \"count\": 2}\n  ]\n}\n";
        let err = Baseline::parse(v1).expect_err("v1 is rejected");
        assert!(err.contains("--update-baseline"), "migration hint: {err}");
        assert!(Baseline::parse("{\"schema_version\": 9, \"entries\": []}").is_err());
        assert!(Baseline::parse("{\"schema_version\": 2}").is_err());
        assert!(
            Baseline::parse("{\"schema_version\": 2, \"entries\": [{\"rule\": \"r\"}]}").is_err()
        );
    }

    #[test]
    fn inline_allows_are_not_baselined() {
        let mut allowed = diag("r", "a.rs", 1, "line one");
        allowed.suppressed = Suppression::Allowed;
        let r = report(vec![allowed, diag("r", "a.rs", 2, "line two")]);
        let b = Baseline::from_report(&r);
        assert_eq!(b.len(), 1, "only the active finding is grandfathered");
    }

    #[test]
    fn regenerating_prunes_grows_and_shrinks_in_one_run() {
        // Old ledger: "gone" x1 (debt since paid), "shrinker" x3 (one
        // paid), "grower" x1 (one more accrued), "steady" x1.
        let old = Baseline::from_report(&report(vec![
            diag("r", "a.rs", 1, "gone"),
            diag("r", "a.rs", 2, "shrinker"),
            diag("r", "a.rs", 3, "shrinker"),
            diag("r", "a.rs", 4, "shrinker"),
            diag("r", "a.rs", 5, "grower"),
            diag("r", "a.rs", 6, "steady"),
        ]));
        let new = Baseline::from_report(&report(vec![
            diag("r", "a.rs", 2, "shrinker"),
            diag("r", "a.rs", 3, "shrinker"),
            diag("r", "a.rs", 5, "grower"),
            diag("r", "a.rs", 7, "grower"),
            diag("r", "a.rs", 6, "steady"),
            diag("r", "b.rs", 1, "fresh"),
        ]));
        let d = Baseline::diff(&old, &new);
        assert_eq!(
            d,
            BaselineDiff {
                added: 1,
                pruned: 1,
                grown: 1,
                shrunk: 1
            }
        );
        assert!(!d.is_noop());
        let s = d.summary();
        for part in ["+1 added", "-1 pruned", "1 grown", "1 shrunk"] {
            assert!(s.contains(part), "summary `{s}` missing `{part}`");
        }
        // Regeneration *is* pruning: the rewritten ledger no longer
        // grandfathers the paid-off fingerprint, so a reintroduction of
        // the same line fails the build instead of hiding behind debt.
        let mut reintroduced = report(vec![diag("r", "a.rs", 1, "gone")]);
        new.apply(&mut reintroduced);
        assert_eq!(reintroduced.count(Suppression::None), 1);
        assert_eq!(Baseline::diff(&new, &new), BaselineDiff::default());
        assert_eq!(Baseline::diff(&new, &new).summary(), "no changes");
    }

    #[test]
    fn empty_baseline_round_trips() {
        let b = Baseline::from_report(&report(vec![]));
        assert!(b.is_empty());
        let text = b.to_json().render();
        let back = Baseline::parse(&text).expect("parses");
        assert!(back.is_empty());
    }
}
