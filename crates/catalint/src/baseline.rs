//! The grandfathering baseline (`catalint.baseline.json`).
//!
//! A baseline entry records, per `(rule, path)`, how many findings were
//! known and accepted when the rule landed. The comparison is a ratchet:
//!
//! - current count **>** recorded count → the debt grew; those findings
//!   stay active and fail the build;
//! - current count **≤** recorded count → the findings are suppressed as
//!   `Baselined` (reported, but non-fatal);
//! - current count **<** recorded count → additionally surfaced as a
//!   *stale* entry so `--update-baseline` can ratchet the number down.
//!
//! Counts rather than line numbers keep the file stable across unrelated
//! edits: a finding that merely moves does not churn the baseline, and a
//! new one cannot hide behind a stale line. The file is written by
//! `cargo xtask lint --update-baseline`, rendered through the
//! insertion-ordered `catapult_obs::json` serializer with entries sorted
//! by `(rule, path)` so diffs stay minimal and reviewable.

use crate::diag::{Report, Suppression};
use catapult_obs::json::{self, Value};
use std::collections::BTreeMap;

/// Schema version of `catalint.baseline.json`.
pub const BASELINE_SCHEMA_VERSION: u64 = 1;

/// Grandfathered finding counts keyed by `(rule, path)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), u64>,
}

impl Baseline {
    /// Parse a baseline document. Returns a descriptive error for a
    /// malformed or wrong-schema file (the build should fail loudly
    /// rather than silently ignore its debt ledger).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        match doc.get("schema_version") {
            Some(Value::UInt(BASELINE_SCHEMA_VERSION)) => {}
            other => {
                return Err(format!(
                    "unsupported baseline schema_version {other:?} (expected {BASELINE_SCHEMA_VERSION})"
                ))
            }
        }
        let mut entries = BTreeMap::new();
        let Some(Value::Array(items)) = doc.get("entries") else {
            return Err("baseline is missing the `entries` array".to_string());
        };
        for item in items {
            let rule = item.get("rule").and_then(as_str);
            let path = item.get("path").and_then(as_str);
            let count = match item.get("count") {
                Some(Value::UInt(n)) => Some(*n),
                _ => None,
            };
            match (rule, path, count) {
                (Some(rule), Some(path), Some(count)) => {
                    entries.insert((rule.to_string(), path.to_string()), count);
                }
                _ => return Err(format!("malformed baseline entry: {item:?}")),
            }
        }
        Ok(Baseline { entries })
    }

    /// Build a baseline that grandfathers every *active* finding in
    /// `report` (allowed findings keep their inline markers instead).
    #[must_use]
    pub fn from_report(report: &Report) -> Baseline {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for d in &report.findings {
            if d.suppressed == Suppression::Allowed {
                continue;
            }
            *entries
                .entry((d.rule.to_string(), d.path.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Number of `(rule, path)` entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no findings are grandfathered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Apply the ratchet to `report`: suppress grandfathered findings and
    /// record stale entries. Findings already suppressed by an inline
    /// allow are untouched.
    pub fn apply(&self, report: &mut Report) {
        // Current active counts per (rule, path).
        let mut current: BTreeMap<(String, String), u64> = BTreeMap::new();
        for d in &report.findings {
            if d.suppressed == Suppression::None {
                *current
                    .entry((d.rule.to_string(), d.path.clone()))
                    .or_insert(0) += 1;
            }
        }
        for (key, &recorded) in &self.entries {
            let now = current.get(key).copied().unwrap_or(0);
            if now > recorded {
                // Debt grew: leave every finding active so the report
                // shows all candidate sites, not an arbitrary excess.
                continue;
            }
            if now < recorded {
                report
                    .stale_baseline
                    .push((key.0.clone(), key.1.clone(), recorded, now));
            }
            for d in &mut report.findings {
                if d.suppressed == Suppression::None && d.rule == key.0 && d.path == key.1 {
                    d.suppressed = Suppression::Baselined;
                }
            }
        }
    }

    /// Render as the checked-in JSON document (sorted, schema-versioned).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut items = Value::array();
        for ((rule, path), count) in &self.entries {
            let mut e = Value::object();
            e.set("rule", rule.as_str())
                .set("path", path.as_str())
                .set("count", *count);
            items.push(e);
        }
        let mut v = Value::object();
        v.set("schema_version", BASELINE_SCHEMA_VERSION)
            .set("entries", items);
        v
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn diag(rule: &'static str, path: &str, line: usize) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.into(),
            line,
            col: 1,
            snippet: String::new(),
            message: String::new(),
            suppressed: Suppression::None,
        }
    }

    fn report(findings: Vec<Diagnostic>) -> Report {
        Report {
            findings,
            files_scanned: 1,
            rules_run: vec![],
            stale_baseline: vec![],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let mut r = report(vec![
            diag("cast-truncation", "a.rs", 1),
            diag("cast-truncation", "a.rs", 5),
        ]);
        r.finalize();
        let b = Baseline::from_report(&r);
        let text = b.to_json().render();
        let back = Baseline::parse(&text).expect("parses");
        assert_eq!(back, b);
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn ratchet_suppresses_when_at_or_below_recorded() {
        let mut r = report(vec![diag("r", "a.rs", 1), diag("r", "a.rs", 2)]);
        let text = "{\n  \"schema_version\": 1,\n  \"entries\": [\n    {\"rule\": \"r\", \"path\": \"a.rs\", \"count\": 2}\n  ]\n}\n";
        let b = Baseline::parse(text).expect("parses");
        b.apply(&mut r);
        assert_eq!(r.count(Suppression::Baselined), 2);
        assert_eq!(r.count(Suppression::None), 0);
        assert!(r.stale_baseline.is_empty());
    }

    #[test]
    fn ratchet_fails_open_when_debt_grows() {
        let mut r = report(vec![diag("r", "a.rs", 1), diag("r", "a.rs", 2)]);
        let text = "{\n  \"schema_version\": 1,\n  \"entries\": [\n    {\"rule\": \"r\", \"path\": \"a.rs\", \"count\": 1}\n  ]\n}\n";
        Baseline::parse(text).expect("parses").apply(&mut r);
        assert_eq!(r.count(Suppression::None), 2, "all sites stay visible");
    }

    #[test]
    fn ratchet_reports_stale_entries() {
        let mut r = report(vec![diag("r", "a.rs", 1)]);
        let text = "{\n  \"schema_version\": 1,\n  \"entries\": [\n    {\"rule\": \"r\", \"path\": \"a.rs\", \"count\": 3},\n    {\"rule\": \"r\", \"path\": \"gone.rs\", \"count\": 2}\n  ]\n}\n";
        Baseline::parse(text).expect("parses").apply(&mut r);
        assert_eq!(r.count(Suppression::Baselined), 1);
        assert_eq!(r.stale_baseline.len(), 2);
    }

    #[test]
    fn rejects_wrong_schema_and_malformed_entries() {
        assert!(Baseline::parse("{\"schema_version\": 9, \"entries\": []}").is_err());
        assert!(Baseline::parse("{\"schema_version\": 1}").is_err());
        assert!(
            Baseline::parse("{\"schema_version\": 1, \"entries\": [{\"rule\": \"r\"}]}").is_err()
        );
    }

    #[test]
    fn inline_allows_are_not_baselined() {
        let mut allowed = diag("r", "a.rs", 1);
        allowed.suppressed = Suppression::Allowed;
        let r = report(vec![allowed, diag("r", "a.rs", 2)]);
        let b = Baseline::from_report(&r);
        let text = b.to_json().render();
        assert!(
            text.contains("\"count\": 1"),
            "only the active finding: {text}"
        );
    }
}
