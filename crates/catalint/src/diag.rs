//! Structured diagnostics and the run report.
//!
//! Every rule emits [`Diagnostic`] records — `{rule, path, line, col,
//! snippet, suppressed}` plus a human message — which render both as
//! `path:line:col: [rule] message` lines and as JSON through the
//! hand-rolled insertion-ordered serializer in `catapult_obs::json`
//! (the same layer the run manifests use, so CI artifacts stay
//! byte-stable and greppable).

use catapult_obs::json::Value;
use std::fmt::Write as _;

/// Schema version of the JSON report (`--json`). v2 added the
/// `fn` (enclosing function) field per finding; v3 added the
/// `summary.suppressed_by_rule` per-rule suppression breakdown.
pub const REPORT_SCHEMA_VERSION: u64 = 3;

/// FNV-1a 64-bit hash, rendered as fixed-width hex. Used for baseline
/// fingerprints; zero-dependency and stable across platforms.
#[must_use]
pub fn fnv1a_hex(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Why a finding does not fail the build (if it doesn't).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suppression {
    /// Active: counts against the exit status.
    None,
    /// Suppressed by an inline `// xtask-allow: <rule>` marker.
    Allowed,
    /// Grandfathered by `catalint.baseline.json` (warn until burned down).
    Baselined,
}

impl Suppression {
    fn label(self) -> Option<&'static str> {
        match self {
            Suppression::None => None,
            Suppression::Allowed => Some("allow"),
            Suppression::Baselined => Some("baseline"),
        }
    }
}

/// One finding at a source position.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule name (e.g. `hash-iter-order`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub col: usize,
    /// The trimmed source line (truncated for display).
    pub snippet: String,
    /// Name of the innermost enclosing `fn` (empty at file scope).
    pub enclosing_fn: String,
    /// What the rule objects to, with the sanctioned alternative.
    pub message: String,
    /// Whether (and why) the finding is suppressed.
    pub suppressed: Suppression,
}

impl Diagnostic {
    /// The baseline-v2 identity of this finding: rule + path + enclosing
    /// fn + a hash of the trimmed source line. Stable when unrelated code
    /// moves the finding to another line; changes when the offending line
    /// itself is edited, so a fixed finding can never mask a new one.
    #[must_use]
    pub fn fingerprint(&self) -> (String, String, String, String) {
        (
            self.rule.to_string(),
            self.path.clone(),
            self.enclosing_fn.clone(),
            fnv1a_hex(&self.snippet),
        )
    }

    fn to_json(&self) -> Value {
        let mut v = Value::object();
        v.set("rule", self.rule)
            .set("path", self.path.as_str())
            .set("line", self.line)
            .set("col", self.col)
            .set("fn", self.enclosing_fn.as_str())
            .set("message", self.message.as_str())
            .set("snippet", self.snippet.as_str())
            .set("suppressed", self.suppressed != Suppression::None);
        match self.suppressed.label() {
            Some(label) => v.set("suppressed_by", label),
            None => v.set("suppressed_by", Value::Null),
        };
        v
    }
}

/// The outcome of a lint run over the workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding (active and suppressed), in deterministic
    /// `(path, line, col, rule)` order.
    pub findings: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Rule names that ran (after `--rule` filtering), sorted.
    pub rules_run: Vec<&'static str>,
    /// Baseline entries whose current count is below the recorded count
    /// (`(rule, path, recorded, current)`): stale, eligible for burn-down.
    pub stale_baseline: Vec<(String, String, u64, u64)>,
}

impl Report {
    /// Active (unsuppressed) findings — what fails the build.
    pub fn active(&self) -> impl Iterator<Item = &Diagnostic> {
        self.findings
            .iter()
            .filter(|d| d.suppressed == Suppression::None)
    }

    /// Count findings in a suppression state.
    #[must_use]
    pub fn count(&self, s: Suppression) -> usize {
        self.findings.iter().filter(|d| d.suppressed == s).count()
    }

    /// Per-rule suppression breakdown: rule name → `(allowed,
    /// baselined)` counts, only for rules with at least one suppressed
    /// finding. Sorted by rule name (`BTreeMap`), so both renderings
    /// below are deterministic.
    #[must_use]
    pub fn suppressed_by_rule(&self) -> std::collections::BTreeMap<&'static str, (usize, usize)> {
        let mut by_rule = std::collections::BTreeMap::new();
        for d in &self.findings {
            let slot: &mut (usize, usize) = by_rule.entry(d.rule).or_default();
            match d.suppressed {
                Suppression::None => {}
                Suppression::Allowed => slot.0 += 1,
                Suppression::Baselined => slot.1 += 1,
            }
        }
        by_rule.retain(|_, &mut (a, b)| a + b > 0);
        by_rule
    }

    /// Sort findings into the deterministic report order.
    pub fn finalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        self.stale_baseline.sort();
    }

    /// Human-readable report: one line per active finding, then a
    /// summary of suppressed counts and stale baseline entries.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in self.active() {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}\n    {}",
                d.path, d.line, d.col, d.rule, d.message, d.snippet
            );
        }
        for (rule, path, recorded, current) in &self.stale_baseline {
            let _ = writeln!(
                out,
                "warning: baseline for [{rule}] {path} is stale ({recorded} recorded, \
                 {current} now) — run `cargo xtask lint --update-baseline` to ratchet down"
            );
        }
        let active = self.count(Suppression::None);
        let _ = writeln!(
            out,
            "catalint: {} file(s), {} rule(s): {} active finding(s), {} allowed, {} baselined",
            self.files_scanned,
            self.rules_run.len(),
            active,
            self.count(Suppression::Allowed),
            self.count(Suppression::Baselined),
        );
        for (rule, (allowed, baselined)) in self.suppressed_by_rule() {
            let _ = writeln!(
                out,
                "    suppressed [{rule}]: {allowed} allowed, {baselined} baselined"
            );
        }
        out
    }

    /// The JSON report (schema-versioned; rendered via `catapult_obs`).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut rules = Value::array();
        for r in &self.rules_run {
            rules.push(*r);
        }
        let mut findings = Value::array();
        for d in &self.findings {
            findings.push(d.to_json());
        }
        let mut stale = Value::array();
        for (rule, path, recorded, current) in &self.stale_baseline {
            let mut e = Value::object();
            e.set("rule", rule.as_str())
                .set("path", path.as_str())
                .set("recorded", *recorded)
                .set("current", *current);
            stale.push(e);
        }
        let mut by_rule = Value::object();
        for (rule, (allowed, baselined)) in self.suppressed_by_rule() {
            let mut e = Value::object();
            e.set("allowed", allowed).set("baselined", baselined);
            by_rule.set(rule, e);
        }
        let mut summary = Value::object();
        summary
            .set("total", self.findings.len())
            .set("active", self.count(Suppression::None))
            .set("allowed", self.count(Suppression::Allowed))
            .set("baselined", self.count(Suppression::Baselined))
            .set("suppressed_by_rule", by_rule);
        let mut v = Value::object();
        v.set("schema_version", REPORT_SCHEMA_VERSION)
            .set("tool", "catalint")
            .set("files_scanned", self.files_scanned)
            .set("rules", rules)
            .set("summary", summary)
            .set("findings", findings)
            .set("stale_baseline", stale);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, line: usize, s: Suppression) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.into(),
            line,
            col: 1,
            snippet: "let x = 1;".into(),
            enclosing_fn: "f".into(),
            message: "msg".into(),
            suppressed: s,
        }
    }

    #[test]
    fn fnv1a_is_stable_and_distinct() {
        assert_eq!(fnv1a_hex(""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex("a"), "af63dc4c8601ec8c");
        assert_ne!(fnv1a_hex("let x = 1;"), fnv1a_hex("let x = 2;"));
    }

    #[test]
    fn fingerprint_tracks_snippet_not_line() {
        let a = diag("a-rule", "a.rs", 1, Suppression::None);
        let mut b = diag("a-rule", "a.rs", 99, Suppression::None);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "line moves are identity-preserving"
        );
        b.snippet = "let x = 2;".into();
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "edited line changes identity"
        );
    }

    #[test]
    fn report_orders_and_counts() {
        let mut r = Report {
            findings: vec![
                diag("b-rule", "z.rs", 1, Suppression::None),
                diag("a-rule", "a.rs", 9, Suppression::Allowed),
                diag("a-rule", "a.rs", 2, Suppression::Baselined),
            ],
            files_scanned: 3,
            rules_run: vec!["a-rule", "b-rule"],
            stale_baseline: vec![],
        };
        r.finalize();
        assert_eq!(r.findings[0].line, 2);
        assert_eq!(r.count(Suppression::None), 1);
        assert_eq!(r.active().count(), 1);
        let human = r.render_human();
        assert!(human.contains("z.rs:1:1: [b-rule] msg"));
        assert!(!human.contains("a.rs:9"), "suppressed findings not listed");
        assert!(human.contains("1 active finding(s), 1 allowed, 1 baselined"));
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = Report {
            findings: vec![diag("a-rule", "a.rs", 1, Suppression::Baselined)],
            files_scanned: 1,
            rules_run: vec!["a-rule"],
            stale_baseline: vec![("a-rule".into(), "a.rs".into(), 3, 1)],
        };
        r.finalize();
        let text = r.to_json().render();
        assert!(text.starts_with("{\n  \"schema_version\": 3"));
        assert!(text.contains("\"fn\": \"f\""));
        assert!(text.contains("\"suppressed\": true"));
        assert!(text.contains("\"suppressed_by\": \"baseline\""));
        assert!(text.contains("\"suppressed_by_rule\""));
        assert!(text.contains("\"recorded\": 3"));
    }

    #[test]
    fn per_rule_suppression_breakdown() {
        let mut r = Report {
            findings: vec![
                diag("b-rule", "z.rs", 1, Suppression::None),
                diag("a-rule", "a.rs", 2, Suppression::Allowed),
                diag("a-rule", "a.rs", 3, Suppression::Allowed),
                diag("a-rule", "a.rs", 4, Suppression::Baselined),
                diag("c-rule", "c.rs", 1, Suppression::Baselined),
            ],
            files_scanned: 3,
            rules_run: vec!["a-rule", "b-rule", "c-rule"],
            stale_baseline: vec![],
        };
        r.finalize();
        let by_rule = r.suppressed_by_rule();
        assert_eq!(by_rule.get("a-rule"), Some(&(2, 1)));
        assert_eq!(by_rule.get("c-rule"), Some(&(0, 1)));
        assert_eq!(
            by_rule.get("b-rule"),
            None,
            "rules with only active findings are omitted"
        );
        let human = r.render_human();
        assert!(human.contains("suppressed [a-rule]: 2 allowed, 1 baselined"));
        assert!(human.contains("suppressed [c-rule]: 0 allowed, 1 baselined"));
        assert!(!human.contains("suppressed [b-rule]"));
        let json = r.to_json().render();
        assert!(json.contains("\"a-rule\": {"));
        assert!(json.contains("\"allowed\": 2"));
    }
}
