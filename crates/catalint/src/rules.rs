//! The lint rules, ported and new, all running on the token tree.
//!
//! **Ported rules** (1–7 of the old line-based pass — same names, same
//! escape hatch, now immune to lookalike text in strings and comments):
//! `kernel-no-panic`, `doc-coverage`, `float-eq`, `lint-header`,
//! `consume-completeness`, `no-raw-spawn`, `metric-name`, `raw-instant`.
//!
//! **Determinism rules** (new): `hash-iter-order`, `float-total-order`,
//! `cast-truncation`. CATAPULT's pattern scores are products of small
//! f64 factors (ccov × lcov × div / cog, paper §5) consumed by a greedy
//! argmax, and the workspace guarantees byte-identical `SelectionResult`
//! and run manifests across `threads ∈ {1,2,8}`. Hash-map iteration
//! order, float comparators without a total order, and silently
//! truncating casts are exactly the hazards that break that guarantee
//! *before* a golden test can flake — these rules catch them at lint
//! time.
//!
//! **Concurrency rules** (new): `interior-mutability` (shared state is
//! only allowed where the execution model owns it), `lock-order` (any
//! scope taking two locks is flagged so acquisition order stays
//! centrally auditable).

use crate::diag::{Diagnostic, Suppression};
use crate::lexer::TokenKind;
use crate::scan::SourceFile;
use crate::timing::RuleTimer;
use std::collections::BTreeSet;
use std::path::Path;

/// Name and one-line summary of a rule (for `--rule` validation and the
/// JSON report).
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// The rule's name as used by `--rule` and `xtask-allow`.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule, in the order findings are reported.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "kernel-no-panic",
        summary: "search kernels must not panic!/unwrap outside tests",
    },
    RuleInfo {
        name: "doc-coverage",
        summary: "public items in graph/core carry doc comments",
    },
    RuleInfo {
        name: "float-eq",
        summary: "no ==/!= against float literals in scoring code",
    },
    RuleInfo {
        name: "lint-header",
        summary: "crate roots state where the lint policy lives",
    },
    RuleInfo {
        name: "consume-completeness",
        summary: "pipeline code must not drop kernel Completeness tags",
    },
    RuleInfo {
        name: "no-raw-spawn",
        summary: "thread::spawn only inside the rayon shim",
    },
    RuleInfo {
        name: "metric-name",
        summary:
            "metric/flight-event names follow stage.kernel.metric; no raw eprintln in pipeline code",
    },
    RuleInfo {
        name: "raw-instant",
        summary: "Instant::now only inside crates/obs and the shims",
    },
    RuleInfo {
        name: "hash-iter-order",
        summary: "no unordered HashMap/HashSet iteration feeding results",
    },
    RuleInfo {
        name: "float-total-order",
        summary: "f64 comparators go through total_cmp",
    },
    RuleInfo {
        name: "cast-truncation",
        summary: "no narrowing `as` casts in kernel/index arithmetic",
    },
    RuleInfo {
        name: "interior-mutability",
        summary: "shared/global state only in sanctioned modules",
    },
    RuleInfo {
        name: "lock-order",
        summary: "scopes taking two locks are flagged for order audit",
    },
    RuleInfo {
        name: "unwind-safety",
        summary: "catch_unwind/resume_unwind only in shims/rayon and crates/ckpt",
    },
];

/// Look up a rule by name.
#[must_use]
pub fn rule_named(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Per-file context the path predicates cannot derive alone.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Absolute workspace root (for sibling-file doc resolution).
    pub root: &'a Path,
    /// Whether this file is a crate root (`lint-header` target).
    pub is_crate_root: bool,
}

// ---- scopes ------------------------------------------------------------

/// Files holding the NP-hard search kernels.
pub(crate) const KERNEL_FILES: &[&str] = &[
    "crates/graph/src/iso.rs",
    "crates/graph/src/mcs.rs",
    "crates/graph/src/ged.rs",
    "crates/core/src/walk.rs",
    "crates/core/src/select.rs",
];

/// Files holding f64 scoring arithmetic.
const SCORING_FILES: &[&str] = &[
    "crates/core/src/score.rs",
    "crates/core/src/select.rs",
    "crates/core/src/budget.rs",
    "crates/csg/src/weights.rs",
];

/// Index-arithmetic files additionally covered by `cast-truncation`.
const CAST_EXTRA_FILES: &[&str] = &["crates/csg/src/idset.rs"];

/// Dirs whose public items must be documented.
const DOC_COVERED_DIRS: &[&str] = &["crates/graph/src/", "crates/core/src/"];

/// Pipeline dirs that must consume `Completeness` (graph defines the
/// swallowing conveniences and is exempt).
pub(crate) const COMPLETENESS_DIRS: &[&str] = &[
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/csg/src/",
    "crates/eval/src/",
    "crates/mining/src/",
    "src/",
];

/// Modules sanctioned to own shared state: the fault-injection plans
/// (kernel faults in the budget module, persistence faults in the
/// checkpoint crate), the observability crate, and the executor shim.
const INTERIOR_MUT_ALLOWED: &[&str] = &[
    "crates/graph/src/budget.rs",
    "crates/ckpt/src/fault.rs",
    "crates/obs/",
    "shims/rayon/",
];

/// The agreed crate-root marker line.
pub const LINT_HEADER: &str = "// Lint policy: see [workspace.lints] in the root Cargo.toml.";

pub(crate) fn in_dirs(rel: &str, dirs: &[&str]) -> bool {
    dirs.iter().any(|d| rel.starts_with(d))
}

/// Library source files: `src/`, `crates/*/src/`, `shims/*/src/` (tests,
/// benches, and examples live elsewhere).
pub(crate) fn is_library_src(rel: &str) -> bool {
    rel.starts_with("src/")
        || ((rel.starts_with("crates/") || rel.starts_with("shims/")) && rel.contains("/src/"))
}

// ---- driver ------------------------------------------------------------

/// Run every enabled rule over one file.
pub fn check_file(
    f: &SourceFile,
    ctx: &FileCtx<'_>,
    enabled: &BTreeSet<&'static str>,
    out: &mut Vec<Diagnostic>,
) {
    check_file_timed(f, ctx, enabled, out, &mut RuleTimer::new(false));
}

/// [`check_file`] with per-rule wall-clock accounting (`--timing`).
pub fn check_file_timed(
    f: &SourceFile,
    ctx: &FileCtx<'_>,
    enabled: &BTreeSet<&'static str>,
    out: &mut Vec<Diagnostic>,
    timer: &mut RuleTimer,
) {
    let rel = f.rel.as_str();
    let on = |name: &str| enabled.contains(name);

    if on("kernel-no-panic") && KERNEL_FILES.contains(&rel) {
        timer.time("kernel-no-panic", || kernel_no_panic(f, out));
    }
    if on("doc-coverage") && in_dirs(rel, DOC_COVERED_DIRS) {
        timer.time("doc-coverage", || doc_coverage(f, ctx, out));
    }
    if on("float-eq") && SCORING_FILES.contains(&rel) {
        timer.time("float-eq", || float_eq(f, out));
    }
    if on("lint-header") && ctx.is_crate_root {
        timer.time("lint-header", || lint_header(f, out));
    }
    if on("consume-completeness") && in_dirs(rel, COMPLETENESS_DIRS) {
        timer.time("consume-completeness", || consume_completeness(f, out));
    }
    if on("no-raw-spawn") && !rel.starts_with("shims/rayon/") {
        timer.time("no-raw-spawn", || no_raw_spawn(f, out));
    }
    let obs_scope = !rel.starts_with("crates/obs/") && !rel.starts_with("shims/");
    if on("metric-name") && obs_scope {
        // CLI-style binaries (`/bin/`), xtask, and catalint itself talk
        // to a terminal on purpose; the eprintln ban covers library
        // pipeline code only, where stderr output should flow through
        // `catapult_obs::warn` / the progress meter.
        let forbid_eprintln = is_library_src(rel)
            && !rel.contains("/bin/")
            && !rel.starts_with("crates/xtask/")
            && !rel.starts_with("crates/catalint/");
        timer.time("metric-name", || metric_name(f, forbid_eprintln, out));
    }
    if on("raw-instant") && obs_scope {
        timer.time("raw-instant", || raw_instant(f, out));
    }
    if on("hash-iter-order") && is_library_src(rel) {
        timer.time("hash-iter-order", || hash_iter_order(f, out));
    }
    if on("float-total-order") && is_library_src(rel) {
        timer.time("float-total-order", || float_total_order(f, out));
    }
    if on("cast-truncation") && (KERNEL_FILES.contains(&rel) || CAST_EXTRA_FILES.contains(&rel)) {
        timer.time("cast-truncation", || cast_truncation(f, out));
    }
    if on("interior-mutability") && is_library_src(rel) && !in_dirs(rel, INTERIOR_MUT_ALLOWED) {
        timer.time("interior-mutability", || interior_mutability(f, out));
    }
    if on("lock-order") {
        timer.time("lock-order", || lock_order(f, out));
    }
    let unwind_scope =
        is_library_src(rel) && !rel.starts_with("shims/rayon/") && !rel.starts_with("crates/ckpt/");
    if on("unwind-safety") && unwind_scope {
        timer.time("unwind-safety", || unwind_safety(f, out));
    }
}

/// Record a finding at code token `ci`, honoring the escape hatch.
fn emit(f: &SourceFile, ci: usize, rule: &'static str, message: String, out: &mut Vec<Diagnostic>) {
    let (line, col) = f.cpos(ci);
    let enclosing = f.enclosing_fn(ci).unwrap_or_default().to_string();
    emit_at(f, line, col, enclosing, rule, message, out);
}

fn emit_at(
    f: &SourceFile,
    line: usize,
    col: usize,
    enclosing_fn: String,
    rule: &'static str,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    let suppressed = if f.allowed(line, rule) {
        Suppression::Allowed
    } else {
        Suppression::None
    };
    out.push(Diagnostic {
        rule,
        path: f.rel.clone(),
        line,
        col,
        snippet: f.line_snippet(line),
        enclosing_fn,
        message,
        suppressed,
    });
}

// ---- ported rules ------------------------------------------------------

/// Rule `kernel-no-panic`: no `panic!` / `.unwrap()` in kernel files
/// outside `#[cfg(test)]` items.
fn kernel_no_panic(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for ci in 0..f.n_code() {
        if f.in_test(ci) {
            continue;
        }
        if f.is_ident(ci, "panic") && f.is_punct(ci + 1, "!") {
            emit(
                f,
                ci,
                "kernel-no-panic",
                "`panic!` in a search kernel outside #[cfg(test)] aborts a whole \
                 selection run; return an error or degrade via the SearchBudget"
                    .into(),
                out,
            );
        }
        if f.is_punct(ci, ".") && f.is_ident(ci + 1, "unwrap") && f.is_punct(ci + 2, "(") {
            emit(
                f,
                ci + 1,
                "kernel-no-panic",
                "`.unwrap()` in a search kernel outside #[cfg(test)]; handle the \
                 None/Err arm explicitly"
                    .into(),
                out,
            );
        }
    }
}

/// Item keywords whose `pub` form needs a doc comment.
const DOC_ITEM_KINDS: &[&str] = &["fn", "struct", "enum", "trait", "const", "type", "mod"];

/// Rule `doc-coverage`: public items in the covered crates carry a doc
/// comment (`///` line docs, `/** */` block docs, or a `#[doc]`
/// attribute; `pub mod x;` counts when `x.rs` opens with `//!`).
fn doc_coverage(f: &SourceFile, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for ci in 0..f.n_code() {
        if f.in_test(ci) || !f.is_ident(ci, "pub") {
            continue;
        }
        if f.is_punct(ci + 1, "(") {
            continue; // `pub(crate)` and friends are crate-internal.
        }
        if ci + 1 >= f.n_code() || f.ckind(ci + 1) != TokenKind::Ident {
            continue;
        }
        let kw = f.ctext(ci + 1);
        if !DOC_ITEM_KINDS.contains(&kw) {
            continue;
        }
        if has_doc_above(f, ci) || (kw == "mod" && mod_file_has_inner_docs(f, ctx, ci + 2)) {
            continue;
        }
        let item: String = (ci..f.n_code().min(ci + 3))
            .map(|i| f.ctext(i))
            .collect::<Vec<_>>()
            .join(" ");
        emit(
            f,
            ci,
            "doc-coverage",
            format!("undocumented public item: `{item} …`"),
            out,
        );
    }
}

/// Walk the raw token stream upwards from the `pub` token, skipping
/// whitespace and attribute stacks, looking for a doc comment.
fn has_doc_above(f: &SourceFile, pub_ci: usize) -> bool {
    let mut ri = f.raw_index(pub_ci);
    while ri > 0 {
        ri -= 1;
        let t = f.tokens[ri];
        match t.kind {
            TokenKind::Whitespace => continue,
            TokenKind::LineComment => {
                let text = t.text(&f.text);
                if text.starts_with("///") {
                    return true;
                }
                continue; // plain comments between docs and item are fine
            }
            TokenKind::BlockComment => {
                if t.text(&f.text).starts_with("/**") {
                    return true;
                }
                continue;
            }
            TokenKind::Punct if t.text(&f.text) == "]" => {
                // Skip an attribute stack `#[…]`; `#[doc…]` documents.
                let Some(close_ci) = raw_to_code(f, ri) else {
                    return false;
                };
                let Some(open_ci) = f.cmatch(close_ci) else {
                    return false;
                };
                if f.is_ident(open_ci + 1, "doc") {
                    return true;
                }
                let open_ri = f.raw_index(open_ci);
                if open_ri == 0 {
                    return false;
                }
                ri = open_ri - 1; // step over `#` next iteration
                if f.tokens[ri].text(&f.text) == "#" {
                    continue;
                }
                return false;
            }
            _ => return false,
        }
    }
    false
}

/// Map a raw token index back to its code index (None for trivia).
fn raw_to_code(f: &SourceFile, ri: usize) -> Option<usize> {
    (0..f.n_code()).find(|&ci| f.raw_index(ci) == ri)
}

/// `pub mod x;` counts as documented when `x.rs` (or `x/mod.rs`) opens
/// with `//!` / `/*!` inner docs — the shape `missing_docs` accepts.
fn mod_file_has_inner_docs(f: &SourceFile, ctx: &FileCtx<'_>, name_ci: usize) -> bool {
    if name_ci >= f.n_code() || !f.is_punct(name_ci + 1, ";") {
        return false;
    }
    let name = f.ctext(name_ci);
    let dir = match Path::new(&f.rel).parent() {
        Some(d) => ctx.root.join(d),
        None => return false,
    };
    for candidate in [
        dir.join(format!("{name}.rs")),
        dir.join(name).join("mod.rs"),
    ] {
        if let Ok(text) = std::fs::read_to_string(&candidate) {
            let opens_with_docs = text
                .lines()
                .find(|l| !l.trim().is_empty())
                .is_some_and(|l| {
                    l.trim_start().starts_with("//!") || l.trim_start().starts_with("/*!")
                });
            if opens_with_docs {
                return true;
            }
        }
    }
    false
}

/// Rule `float-eq`: no `==`/`!=` where either side is a float literal.
fn float_eq(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for ci in 0..f.n_code() {
        if f.in_test(ci) || !(f.is_punct(ci, "==") || f.is_punct(ci, "!=")) {
            continue;
        }
        let lhs_float = ci > 0 && f.ckind(ci - 1) == TokenKind::Float;
        let rhs_float = ci + 1 < f.n_code()
            && (f.ckind(ci + 1) == TokenKind::Float
                || (f.is_punct(ci + 1, "-")
                    && ci + 2 < f.n_code()
                    && f.ckind(ci + 2) == TokenKind::Float));
        if lhs_float || rhs_float {
            emit(
                f,
                ci,
                "float-eq",
                "f64 equality comparison in scoring code (use ranges or total_cmp)".into(),
                out,
            );
        }
    }
}

/// Rule `lint-header`: every crate root carries the policy marker line.
fn lint_header(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let found = f
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::LineComment && t.text(&f.text).trim() == LINT_HEADER);
    if !found {
        emit_at(
            f,
            1,
            1,
            String::new(),
            "lint-header",
            format!("crate root is missing the marker line `{LINT_HEADER}`"),
            out,
        );
    }
}

/// Completeness-swallowing kernel conveniences.
pub(crate) const SWALLOWING_KERNELS: &[&str] = &[
    "contains",
    "are_isomorphic",
    "mcs_similarity",
    "mccs_similarity",
    "find_embedding",
    "embeddings",
];

/// Rule `consume-completeness`: pipeline code must call the
/// `_tagged`/audited kernel variants, not the tag-dropping conveniences.
fn consume_completeness(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for ci in 0..f.n_code() {
        if f.in_test(ci) {
            continue;
        }
        if f.ckind(ci) != TokenKind::Ident || !SWALLOWING_KERNELS.contains(&f.ctext(ci)) {
            continue;
        }
        if !f.is_punct(ci + 1, "(") {
            continue; // not a call
        }
        if ci > 0 && (f.is_punct(ci - 1, ".") || f.is_ident(ci - 1, "fn")) {
            continue; // method call on a collection / unrelated definition
        }
        emit(
            f,
            ci,
            "consume-completeness",
            format!(
                "`{}(…)` drops the Completeness tag; use the _tagged/audited \
                 variant or annotate `// xtask-allow: consume-completeness`",
                f.ctext(ci)
            ),
            out,
        );
    }
}

/// Rule `no-raw-spawn`: `thread::spawn` only inside the rayon shim,
/// which owns pool sizing, ordered collection, and panic propagation.
/// Test code is *not* exempt — a stray spawn leaks threads there too.
fn no_raw_spawn(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for ci in 0..f.n_code() {
        if f.is_ident(ci, "thread")
            && f.is_punct(ci + 1, "::")
            && f.is_ident(ci + 2, "spawn")
            && f.is_punct(ci + 3, "(")
        {
            emit(
                f,
                ci,
                "no-raw-spawn",
                "`thread::spawn` outside shims/rayon bypasses the pool size, ordered \
                 collection, and panic propagation; use par_iter/join or annotate \
                 `// xtask-allow: no-raw-spawn`"
                    .into(),
                out,
            );
        }
    }
}

/// Rule `metric-name`: literal names registered on a `Recorder`
/// (`.counter("…")` / `.histogram("…")`) or logged to the flight
/// recorder (`flight::event("…", …)`) follow `stage.kernel.metric`
/// (≥ 3 lowercase dot-separated segments). When `forbid_eprintln` is
/// set (library pipeline code), raw `eprintln!` also fires: ad-hoc
/// stderr output bypasses both the flight recorder and the `--progress`
/// meter — route it through `catapult_obs::warn` instead.
fn metric_name(f: &SourceFile, forbid_eprintln: bool, out: &mut Vec<Diagnostic>) {
    for ci in 0..f.n_code() {
        if f.in_test(ci) {
            continue;
        }
        if f.is_punct(ci, ".")
            && (f.is_ident(ci + 1, "counter") || f.is_ident(ci + 1, "histogram"))
            && f.is_punct(ci + 2, "(")
            && ci + 3 < f.n_code()
            && f.ckind(ci + 3) == TokenKind::StrLit
        {
            check_metric_literal(f, ci + 3, out);
        }
        if f.is_ident(ci, "flight")
            && f.is_punct(ci + 1, "::")
            && f.is_ident(ci + 2, "event")
            && f.is_punct(ci + 3, "(")
            && ci + 4 < f.n_code()
            && f.ckind(ci + 4) == TokenKind::StrLit
        {
            check_metric_literal(f, ci + 4, out);
        }
        if forbid_eprintln && f.is_ident(ci, "eprintln") && f.is_punct(ci + 1, "!") {
            emit(
                f,
                ci,
                "metric-name",
                "raw `eprintln!` in pipeline code bypasses the flight recorder \
                 and the `--progress` meter; use `catapult_obs::warn` (or a \
                 counter/flight event), or annotate `// xtask-allow: metric-name`"
                    .into(),
                out,
            );
        }
    }
}

/// Shared literal check for recorder metrics and flight event names.
fn check_metric_literal(f: &SourceFile, ci: usize, out: &mut Vec<Diagnostic>) {
    let lit = f.ctext(ci);
    let name = lit.trim_matches(|c| c == '"' || c == '#' || c == 'r' || c == 'b');
    if !valid_metric_name(name) {
        emit(
            f,
            ci,
            "metric-name",
            format!(
                "metric name `{name}` violates the `stage.kernel.metric` \
                 convention (>= 3 lowercase dot-separated segments)"
            ),
            out,
        );
    }
}

/// `stage.kernel.metric`: at least three non-empty `[a-z0-9_]` segments.
fn valid_metric_name(name: &str) -> bool {
    let parts: Vec<&str> = name.split('.').collect();
    parts.len() >= 3
        && parts.iter().all(|p| {
            !p.is_empty()
                && p.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        })
}

/// Rule `raw-instant`: no `Instant::now()` outside `crates/obs` and the
/// shims — ad-hoc clocks bypass the recorder epoch and the deadline
/// plumbing.
fn raw_instant(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for ci in 0..f.n_code() {
        if f.in_test(ci) {
            continue;
        }
        if f.is_ident(ci, "Instant")
            && f.is_punct(ci + 1, "::")
            && f.is_ident(ci + 2, "now")
            && f.is_punct(ci + 3, "(")
        {
            emit(
                f,
                ci,
                "raw-instant",
                "`Instant::now()` outside crates/obs bypasses the recorder epoch; \
                 use catapult_obs::now()/Stopwatch or a span, or annotate \
                 `// xtask-allow: raw-instant`"
                    .into(),
                out,
            );
        }
    }
}

// ---- determinism rules -------------------------------------------------

/// Iterator-producing methods on hash containers.
pub(crate) const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Order-insensitive consumers and ordering sinks: a statement containing
/// one of these cannot leak hash order into a result. `sum`, `min`, and
/// `max` families are deliberately *absent*: f64 sums are
/// order-sensitive (non-associative rounding) and min/max break ties by
/// encounter order.
pub(crate) const ORDER_SINKS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sort_by_cached_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "count",
    "len",
    "is_empty",
    "all",
    "any",
    "contains",
    "contains_key",
];

/// Rule `hash-iter-order`: iterating a `HashMap`/`HashSet` without an
/// interposed ordering sink leaks nondeterministic order into whatever
/// consumes it — pattern scores, output, or a Recorder snapshot.
///
/// Hash-typed names are inferred per file from `let` bindings whose
/// statement mentions `HashMap`/`HashSet`, struct fields and fn params
/// typed as one, and `let` bindings calling a same-file fn that returns
/// one. A statement is clean when it contains an [`ORDER_SINKS`] token,
/// or when it is a `let` binding whose *next* statement immediately
/// sorts the bound collection (`let v = m.keys().collect(); v.sort();`).
fn hash_iter_order(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let hash_names = collect_hash_names(f);
    if hash_names.is_empty() {
        return;
    }
    let mut flagged_stmts: BTreeSet<usize> = BTreeSet::new();

    for ci in 0..f.n_code() {
        if f.in_test(ci) {
            continue;
        }
        // `name.iter()` / `self.field.keys()` chains.
        let chain = f.ckind(ci) == TokenKind::Ident
            && hash_names.contains(f.ctext(ci))
            && f.is_punct(ci + 1, ".")
            && ci + 2 < f.n_code()
            && f.ckind(ci + 2) == TokenKind::Ident
            && HASH_ITER_METHODS.contains(&f.ctext(ci + 2))
            && f.is_punct(ci + 3, "(");
        // `for x in name`-style direct iteration.
        let direct_for = f.is_ident(ci, "for") && {
            let (s, e) = f.stmt_range(ci);
            let in_at = (s..=e).find(|&i| f.is_ident(i, "in"));
            in_at.is_some_and(|at| {
                f.range_any((at + 1, e), |i| {
                    f.ckind(i) == TokenKind::Ident && hash_names.contains(f.ctext(i))
                })
            })
        };
        if !(chain || direct_for) {
            continue;
        }
        let emit_ci = if chain { ci + 2 } else { ci };
        let range = f.stmt_range(ci);
        if !flagged_stmts.insert(range.0) {
            continue; // one finding per statement
        }
        if f.range_any(range, |i| {
            f.ckind(i) == TokenKind::Ident && ORDER_SINKS.contains(&f.ctext(i))
        }) {
            continue;
        }
        if let_followed_by_sort(f, range) {
            continue;
        }
        emit(
            f,
            emit_ci,
            "hash-iter-order",
            "HashMap/HashSet iteration order is nondeterministic and can leak into \
             scores, output, or Recorder snapshots; collect into a BTreeMap/BTreeSet, \
             sort the result, or annotate `// xtask-allow: hash-iter-order` with a \
             justification"
                .into(),
            out,
        );
    }
}

/// Names known to hold a hash container in this file.
pub(crate) fn collect_hash_names(f: &SourceFile) -> BTreeSet<&str> {
    let mut names: BTreeSet<&str> = BTreeSet::new();
    let mut hash_fns: BTreeSet<&str> = BTreeSet::new();

    for ci in 0..f.n_code() {
        if !(f.is_ident(ci, "HashMap") || f.is_ident(ci, "HashSet")) {
            continue;
        }
        // (a) `let [mut] name` whose statement mentions the type.
        let (s, _) = f.stmt_range(ci);
        if f.is_ident(s, "let") {
            let at = if f.is_ident(s + 1, "mut") {
                s + 2
            } else {
                s + 1
            };
            if at < f.n_code()
                && f.ckind(at) == TokenKind::Ident
                && (f.is_punct(at + 1, ":") || f.is_punct(at + 1, "="))
            {
                names.insert(f.ctext(at));
            }
        }
        // Walk back over the path prefix (`std :: collections ::`) and
        // reference tokens to see what introduces the type.
        let mut p = ci;
        while p >= 2 && f.is_punct(p - 1, "::") && f.ckind(p - 2) == TokenKind::Ident {
            p -= 2;
        }
        while p >= 1
            && (f.is_punct(p - 1, "&")
                || f.is_ident(p - 1, "mut")
                || f.ckind(p - 1) == TokenKind::Lifetime)
        {
            p -= 1;
        }
        if p >= 2 && f.is_punct(p - 1, ":") && f.ckind(p - 2) == TokenKind::Ident {
            // (b) field or parameter: `name: HashMap<…>`.
            names.insert(f.ctext(p - 2));
        } else if p >= 1 && f.is_punct(p - 1, "->") {
            // (c) `fn name(…) -> HashMap<…>`: remember the fn.
            if let Some(open) = (0..p - 1)
                .rev()
                .find(|&i| f.is_punct(i, ")"))
                .and_then(|close| f.cmatch(close))
            {
                if open >= 1
                    && f.ckind(open - 1) == TokenKind::Ident
                    && open >= 2
                    && f.is_ident(open - 2, "fn")
                {
                    hash_fns.insert(f.ctext(open - 1));
                }
            }
        }
    }
    // (c, contd.) `let [mut] name = hash_fn(…)`.
    if !hash_fns.is_empty() {
        for ci in 0..f.n_code() {
            if !f.is_ident(ci, "let") {
                continue;
            }
            let at = if f.is_ident(ci + 1, "mut") {
                ci + 2
            } else {
                ci + 1
            };
            if at + 2 < f.n_code()
                && f.ckind(at) == TokenKind::Ident
                && f.is_punct(at + 1, "=")
                && f.ckind(at + 2) == TokenKind::Ident
                && hash_fns.contains(f.ctext(at + 2))
                && f.is_punct(at + 3, "(")
            {
                names.insert(f.ctext(at));
            }
        }
    }
    names
}

/// `let [mut] v = …;` immediately followed by `v.sort…` — the dominant
/// collect-then-sort idiom.
pub(crate) fn let_followed_by_sort(f: &SourceFile, (s, e): (usize, usize)) -> bool {
    if !f.is_ident(s, "let") || !f.is_punct(e, ";") {
        return false;
    }
    let at = if f.is_ident(s + 1, "mut") {
        s + 2
    } else {
        s + 1
    };
    if at >= f.n_code() || f.ckind(at) != TokenKind::Ident {
        return false;
    }
    let name = f.ctext(at);
    e + 3 < f.n_code()
        && f.is_ident(e + 1, name)
        && f.is_punct(e + 2, ".")
        && f.ckind(e + 3) == TokenKind::Ident
        && f.ctext(e + 3).starts_with("sort")
}

/// Comparator-taking methods covered by `float-total-order`.
const COMPARATOR_METHODS: &[&str] = &["sort_by", "sort_unstable_by", "min_by", "max_by"];

/// Rule `float-total-order`: a comparator built on `partial_cmp` has no
/// total order — NaN collapses it and `unwrap`/`unwrap_or` arms pick an
/// arbitrary winner, so sorted order (and greedy selection downstream)
/// becomes input-order-dependent. Comparators must go through
/// `total_cmp` (or be integer `cmp`, which never uses `partial_cmp`).
fn float_total_order(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for ci in 0..f.n_code() {
        if f.in_test(ci) || !f.is_punct(ci, ".") {
            continue;
        }
        if ci + 2 >= f.n_code()
            || f.ckind(ci + 1) != TokenKind::Ident
            || !COMPARATOR_METHODS.contains(&f.ctext(ci + 1))
            || !f.is_punct(ci + 2, "(")
        {
            continue;
        }
        let Some(close) = f.cmatch(ci + 2) else {
            continue;
        };
        let has = |needle: &str| f.range_any((ci + 3, close), |i| f.is_ident(i, needle));
        if has("partial_cmp") && !has("total_cmp") {
            emit(
                f,
                ci + 1,
                "float-total-order",
                format!(
                    "`{}` comparator uses `partial_cmp` without `total_cmp`; NaN \
                     breaks the total order and reorders greedy selection — use \
                     `f64::total_cmp` (with a deterministic tie-break)",
                    f.ctext(ci + 1)
                ),
                out,
            );
        }
    }
}

/// Integer types an `as` cast may silently truncate into.
const NARROW_INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "usize", "i8", "i16", "i32", "i64", "isize",
];

/// Rule `cast-truncation`: `as` casts to narrow integer types in kernel
/// and index arithmetic silently wrap on overflow; use `try_into` with a
/// handled error, or a checked helper. Grandfathered sites live in the
/// baseline until burned down.
fn cast_truncation(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for ci in 0..f.n_code() {
        if f.in_test(ci) {
            continue;
        }
        if f.is_ident(ci, "as")
            && ci + 1 < f.n_code()
            && f.ckind(ci + 1) == TokenKind::Ident
            && NARROW_INT_TYPES.contains(&f.ctext(ci + 1))
        {
            emit(
                f,
                ci,
                "cast-truncation",
                format!(
                    "`as {}` in kernel/index arithmetic truncates silently on \
                     overflow; prefer `try_into` with a handled error or widen the \
                     intermediate type",
                    f.ctext(ci + 1)
                ),
                out,
            );
        }
    }
}

// ---- concurrency rules -------------------------------------------------

/// Type names that introduce shared or interior-mutable state.
const INTERIOR_MUT_TYPES: &[&str] = &[
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "LazyCell",
    "Mutex",
    "RwLock",
    "Condvar",
    "OnceLock",
    "LazyLock",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "thread_local",
];

/// Rule `interior-mutability`: `static` items and interior-mutability
/// types are only allowed where the execution model owns them (the
/// budget fault plan, `crates/obs`, `shims/rayon`). Anywhere else they
/// are hidden cross-thread channels that can break the byte-identical
/// determinism guarantee. Note `'static` lifetimes never match — the
/// lexer separates them.
fn interior_mutability(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for ci in 0..f.n_code() {
        if f.in_test(ci) || f.ckind(ci) != TokenKind::Ident {
            continue;
        }
        let text = f.ctext(ci);
        let hit = text == "static" || INTERIOR_MUT_TYPES.contains(&text);
        if !hit {
            continue;
        }
        // A bare import is not state; the declaration site will fire.
        let (s, _) = f.stmt_range(ci);
        if f.is_ident(s, "use") {
            continue;
        }
        emit(
            f,
            ci,
            "interior-mutability",
            format!(
                "`{text}` outside the sanctioned modules (graph/src/budget.rs, \
                 ckpt/src/fault.rs, crates/obs, shims/rayon) introduces shared \
                 state that threatens \
                 cross-thread determinism; thread the value explicitly or annotate \
                 `// xtask-allow: interior-mutability` with a justification"
            ),
            out,
        );
    }
}

/// Rule `lock-order`: a lexical fn body that takes two or more locks is
/// flagged (from the second acquisition on) so every multi-lock scope in
/// the workspace carries an audited acquisition order.
fn lock_order(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut emitted: BTreeSet<usize> = BTreeSet::new();
    for ci in 0..f.n_code() {
        if !f.is_ident(ci, "fn") {
            continue;
        }
        // Find the body `{` at the fn's own depth (a `;` first means a
        // trait-method declaration without a body).
        let d = f.cdepth(ci);
        let mut body = None;
        let mut j = ci + 1;
        while j < f.n_code() {
            if f.cdepth(j) < d {
                break;
            }
            if f.cdepth(j) == d {
                if f.is_punct(j, ";") {
                    break;
                }
                if f.is_punct(j, "{") {
                    body = f.cmatch(j).map(|close| (j, close));
                    break;
                }
            }
            j += 1;
        }
        let Some((open, close)) = body else { continue };
        let mut locks: Vec<usize> = Vec::new();
        for k in open..=close {
            if f.is_punct(k, ".")
                && (f.is_ident(k + 1, "lock") || f.is_ident(k + 1, "try_lock"))
                && f.is_punct(k + 2, "(")
            {
                locks.push(k + 1);
            }
        }
        if locks.len() < 2 {
            continue;
        }
        for &at in &locks[1..] {
            if emitted.insert(at) {
                emit(
                    f,
                    at,
                    "lock-order",
                    format!(
                        "this fn body acquires {} locks; document the acquisition \
                         order and annotate `// xtask-allow: lock-order` once audited",
                        locks.len()
                    ),
                    out,
                );
            }
        }
    }
}

/// Rule `unwind-safety`: `catch_unwind`/`resume_unwind` only inside the
/// supervised executor (shims/rayon) and the checkpoint store
/// (crates/ckpt) — ad-hoc unwind handling elsewhere hides worker deaths
/// from the supervision policy and the `Completeness` tally, so a
/// panicked item would neither abort the run (fail-fast) nor be counted
/// as `failed` (keep-going).
fn unwind_safety(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for ci in 0..f.n_code() {
        if f.in_test(ci) {
            continue;
        }
        for name in ["catch_unwind", "resume_unwind"] {
            if f.is_ident(ci, name) && f.is_punct(ci + 1, "(") {
                emit(
                    f,
                    ci,
                    "unwind-safety",
                    format!(
                        "`{name}` outside shims/rayon and crates/ckpt bypasses the \
                         supervised executor's panic accounting; route worker \
                         isolation through `rayon::collect_isolated` or annotate \
                         `// xtask-allow: unwind-safety`"
                    ),
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_convention() {
        assert!(valid_metric_name("mining.iso.calls"));
        assert!(valid_metric_name("scoring.greedy.iterations"));
        assert!(valid_metric_name("mining.iso.probes_per_call"));
        assert!(!valid_metric_name("mining"));
        assert!(!valid_metric_name("mining.calls"));
        assert!(!valid_metric_name("Mining.Iso.Calls"));
        assert!(!valid_metric_name("mining..calls"));
        assert!(!valid_metric_name("mining.iso."));
    }

    #[test]
    fn every_rule_has_unique_name() {
        let mut names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(rule_named("hash-iter-order").is_some());
        assert!(rule_named("nope").is_none());
    }
}
