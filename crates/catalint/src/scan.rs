//! Per-file token-tree model the rules run against.
//!
//! [`SourceFile`] wraps the lexed token stream of one `.rs` file with the
//! derived structure every rule needs:
//!
//! - a **code view**: indices of non-trivia tokens, so rules reason about
//!   adjacent *code* tokens and never see comments or whitespace;
//! - a **token tree** in flat form: for every `(`/`[`/`{` the index of
//!   its matching closer (and vice versa) plus a nesting depth per
//!   token — enough to skip a whole block, find statement boundaries, or
//!   resolve an enclosing scope without materializing a nested tree;
//! - a `#[cfg(test)]` **mask** covering each test-gated item including
//!   its attribute stack and body, so rules skip test code wherever it
//!   sits in the file (the line-based pass could only stop at the first
//!   match and missed everything after a test module that preceded
//!   production code);
//! - the `// xtask-allow: <rule>` **escape hatch**, parsed from comment
//!   tokens (same line as the finding or the line directly above;
//!   comma-separated rule lists are accepted).
//!
//! Indices named `ci` below address the code view, not the raw stream.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;

/// A lexed source file plus the derived token-tree structure.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (diagnostic identity).
    pub rel: String,
    /// The raw source text.
    pub text: String,
    /// The full gapless token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-trivia tokens, in order.
    code: Vec<usize>,
    /// Per code index: the code index of the matching delimiter.
    match_of: Vec<Option<usize>>,
    /// Per code index: brace/paren/bracket nesting depth (a closer shares
    /// its opener's depth; inner tokens are one deeper).
    depth: Vec<usize>,
    /// Per code index: true when inside a `#[cfg(test)]`-gated item.
    test_mask: Vec<bool>,
    /// Byte offset of each line start (line 1 is index 0).
    line_starts: Vec<usize>,
    /// Line number → `(rule, justification)` pairs allowed on that line
    /// via `xtask-allow`. The justification is the free text following
    /// the rule list in the same marker (empty when none was written).
    allows: BTreeMap<usize, Vec<(String, String)>>,
    /// Every `fn` definition in the file, in source order.
    fn_spans: Vec<FnSpan>,
}

/// The lexical extent of one `fn` definition (used for enclosing-fn
/// lookups by baseline fingerprints and the symbol index).
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// Code index of the `fn` keyword.
    pub kw: usize,
    /// Code index of the name identifier.
    pub name_ci: usize,
    /// Code index of the body `{` (None for a body-less declaration).
    pub open: Option<usize>,
    /// Code index of the body `}` (None for a body-less declaration).
    pub close: Option<usize>,
    /// Last code index belonging to the definition (body `}` when present,
    /// else the terminating `;` — or the signature's end at EOF).
    pub end: usize,
}

/// The escape-hatch marker inside a comment.
const ALLOW_MARKER: &str = "xtask-allow:";

/// Strip separators and comment furniture off a marker's trailing free
/// text: the `-- why` convention, stray dashes/colons, and a block
/// comment's closing `*/`.
fn clean_justification(raw: &str) -> String {
    raw.trim()
        .trim_end_matches("*/")
        .trim_matches(|c: char| {
            c.is_whitespace() || matches!(c, '-' | '—' | ':' | ';' | '(' | ')' | '.')
        })
        .to_string()
}

impl SourceFile {
    /// Lex and index `text` as the file at workspace-relative `rel`.
    #[must_use]
    pub fn parse(rel: String, text: String) -> SourceFile {
        let tokens = lex(&text);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_trivia())
            .collect();

        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }

        let mut f = SourceFile {
            rel,
            text,
            tokens,
            code,
            match_of: Vec::new(),
            depth: Vec::new(),
            test_mask: Vec::new(),
            line_starts,
            allows: BTreeMap::new(),
            fn_spans: Vec::new(),
        };
        f.build_tree();
        f.build_test_mask();
        f.build_allows();
        f.build_fn_spans();
        f
    }

    /// Locate every `fn` definition: keyword, name, and body range. A
    /// `fn` token immediately followed by `(` is a fn-pointer type, not a
    /// definition, and is skipped. The body `{` is the first brace at the
    /// keyword's own nesting depth (generics and parameter lists nest
    /// deeper or use unmatched `<`/`>`, which the delimiter tree ignores);
    /// a `;` first means a body-less trait declaration.
    fn build_fn_spans(&mut self) {
        let n = self.code.len();
        let mut spans = Vec::new();
        for kw in 0..n {
            if !self.is_ident(kw, "fn") || kw + 1 >= n || self.ckind(kw + 1) != TokenKind::Ident {
                continue;
            }
            let d = self.depth[kw];
            let (mut open, mut close) = (None, None);
            let mut end = kw + 1;
            let mut j = kw + 2;
            while j < n {
                if self.depth[j] < d {
                    break;
                }
                if self.depth[j] == d {
                    if self.is_punct(j, ";") {
                        end = j;
                        break;
                    }
                    if self.is_punct(j, "{") {
                        open = Some(j);
                        close = self.match_of[j];
                        end = close.unwrap_or(n - 1);
                        break;
                    }
                }
                end = j;
                j += 1;
            }
            spans.push(FnSpan {
                kw,
                name_ci: kw + 1,
                open,
                close,
                end,
            });
        }
        self.fn_spans = spans;
    }

    /// Every `fn` definition in the file, in source order.
    #[must_use]
    pub fn fn_spans(&self) -> &[FnSpan] {
        &self.fn_spans
    }

    /// Name of the innermost `fn` whose definition contains code token
    /// `ci` (None at file scope). Nested fns shadow their parent.
    #[must_use]
    pub fn enclosing_fn(&self, ci: usize) -> Option<&str> {
        let mut best: Option<&FnSpan> = None;
        for s in &self.fn_spans {
            if s.kw <= ci && ci <= s.end {
                best = match best {
                    Some(b) if b.kw >= s.kw => Some(b),
                    _ => Some(s),
                };
            }
        }
        best.map(|s| self.ctext(s.name_ci))
    }

    fn build_tree(&mut self) {
        let n = self.code.len();
        self.match_of = vec![None; n];
        self.depth = vec![0; n];
        let mut stack: Vec<usize> = Vec::new();
        for ci in 0..n {
            match self.ctext(ci) {
                "(" | "[" | "{" => {
                    self.depth[ci] = stack.len();
                    stack.push(ci);
                }
                ")" | "]" | "}" => {
                    if let Some(open) = stack.pop() {
                        self.match_of[open] = Some(ci);
                        self.match_of[ci] = Some(open);
                    }
                    self.depth[ci] = stack.len();
                }
                _ => self.depth[ci] = stack.len(),
            }
        }
    }

    /// Mark every token belonging to a `#[cfg(test)]`-gated item: the
    /// attribute itself, any further attributes stacked below it, and the
    /// item through its closing `}` (or `;` for brace-less items).
    fn build_test_mask(&mut self) {
        let n = self.code.len();
        self.test_mask = vec![false; n];
        let mut ci = 0usize;
        while ci + 1 < n {
            if !(self.is_punct(ci, "#") && self.is_punct(ci + 1, "[")) {
                ci += 1;
                continue;
            }
            let Some(close) = self.match_of[ci + 1] else {
                ci += 1;
                continue;
            };
            if !self.attr_is_cfg_test(ci + 2, close) {
                ci = close + 1;
                continue;
            }
            // Skip any further stacked attributes.
            let mut item = close + 1;
            while item + 1 < n && self.is_punct(item, "#") && self.is_punct(item + 1, "[") {
                match self.match_of[item + 1] {
                    Some(c) => item = c + 1,
                    None => break,
                }
            }
            // The item runs through the matching `}` of its first
            // same-depth `{`, or through a terminating `;`.
            let item_depth = self.depth.get(item).copied().unwrap_or(0);
            let mut end = item;
            let mut j = item;
            while j < n {
                if self.depth[j] == item_depth {
                    if self.is_punct(j, "{") {
                        end = self.match_of[j].unwrap_or(n - 1);
                        break;
                    }
                    if self.is_punct(j, ";") {
                        end = j;
                        break;
                    }
                }
                if self.depth[j] < item_depth {
                    end = j;
                    break;
                }
                end = j;
                j += 1;
            }
            for m in &mut self.test_mask[ci..=end.min(n - 1)] {
                *m = true;
            }
            ci = end + 1;
        }
    }

    /// Does the attribute body `[from, to)` spell a test gate? Accepts
    /// `cfg(test)` and compound forms like `cfg(all(test, …))`.
    fn attr_is_cfg_test(&self, from: usize, to: usize) -> bool {
        if from >= to || !self.is_ident(from, "cfg") {
            return false;
        }
        (from + 1..to).any(|ci| self.is_ident(ci, "test"))
    }

    fn build_allows(&mut self) {
        for t in &self.tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let body = t.text(&self.text);
            let mut rules: Vec<(String, String)> = Vec::new();
            let mut rest = body;
            while let Some(at) = rest.find(ALLOW_MARKER) {
                rest = &rest[at + ALLOW_MARKER.len()..];
                // Parse a comma-separated list of rule names. A candidate
                // with no letter (e.g. the `--` justification separator)
                // ends the list rather than joining it.
                let mut names: Vec<String> = Vec::new();
                loop {
                    let trimmed = rest.trim_start();
                    let name: String = trimmed
                        .chars()
                        .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-')
                        .collect();
                    if name.is_empty() || !name.bytes().any(|b| b.is_ascii_lowercase()) {
                        break;
                    }
                    rest = &trimmed[name.len()..];
                    names.push(name);
                    match rest.trim_start().strip_prefix(',') {
                        Some(after) => rest = after,
                        None => break,
                    }
                }
                // Everything up to the next marker (or the comment's end)
                // is this marker's justification, shared by its rules.
                let j_end = rest.find(ALLOW_MARKER).unwrap_or(rest.len());
                let just = clean_justification(&rest[..j_end]);
                for name in names {
                    rules.push((name, just.clone()));
                }
            }
            if rules.is_empty() {
                continue;
            }
            let (first, _) = self.offset_line_col(t.start);
            let (last, _) = self.offset_line_col(t.end.saturating_sub(1).max(t.start));
            for line in first..=last {
                self.allows
                    .entry(line)
                    .or_default()
                    .extend(rules.iter().cloned());
            }
        }
    }

    // ---- code-view accessors -------------------------------------------

    /// Number of code (non-trivia) tokens.
    #[must_use]
    pub fn n_code(&self) -> usize {
        self.code.len()
    }

    /// The code token at `ci`.
    #[must_use]
    pub fn ctok(&self, ci: usize) -> Token {
        self.tokens[self.code[ci]]
    }

    /// Text of the code token at `ci`.
    #[must_use]
    pub fn ctext(&self, ci: usize) -> &str {
        self.tokens[self.code[ci]].text(&self.text)
    }

    /// Kind of the code token at `ci`.
    #[must_use]
    pub fn ckind(&self, ci: usize) -> TokenKind {
        self.tokens[self.code[ci]].kind
    }

    /// Is `ci` an identifier with exactly this text?
    #[must_use]
    pub fn is_ident(&self, ci: usize, s: &str) -> bool {
        ci < self.code.len() && self.ckind(ci) == TokenKind::Ident && self.ctext(ci) == s
    }

    /// Is `ci` punctuation with exactly this text?
    #[must_use]
    pub fn is_punct(&self, ci: usize, s: &str) -> bool {
        ci < self.code.len() && self.ckind(ci) == TokenKind::Punct && self.ctext(ci) == s
    }

    /// Nesting depth of the code token at `ci`.
    #[must_use]
    pub fn cdepth(&self, ci: usize) -> usize {
        self.depth[ci]
    }

    /// Matching delimiter of the code token at `ci`, when it is one.
    #[must_use]
    pub fn cmatch(&self, ci: usize) -> Option<usize> {
        self.match_of.get(ci).copied().flatten()
    }

    /// Is the code token at `ci` inside a `#[cfg(test)]`-gated item?
    #[must_use]
    pub fn in_test(&self, ci: usize) -> bool {
        self.test_mask.get(ci).copied().unwrap_or(false)
    }

    /// The raw-stream token index of code token `ci` (for doc-comment
    /// lookback, which must see trivia).
    #[must_use]
    pub fn raw_index(&self, ci: usize) -> usize {
        self.code[ci]
    }

    // ---- positions and lines -------------------------------------------

    /// 1-based `(line, col)` of a byte offset.
    #[must_use]
    pub fn offset_line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// 1-based `(line, col)` of the code token at `ci`.
    #[must_use]
    pub fn cpos(&self, ci: usize) -> (usize, usize) {
        self.offset_line_col(self.ctok(ci).start)
    }

    /// The trimmed text of a 1-based line, truncated for display.
    #[must_use]
    pub fn line_snippet(&self, line: usize) -> String {
        let Some(&start) = self.line_starts.get(line - 1) else {
            return String::new();
        };
        let end = self
            .line_starts
            .get(line)
            .map_or(self.text.len(), |&e| e.saturating_sub(1));
        let mut s = self.text.get(start..end).unwrap_or("").trim().to_string();
        if s.len() > 160 {
            let mut cut = 160;
            while cut > 0 && !s.is_char_boundary(cut) {
                cut -= 1;
            }
            s.truncate(cut);
            s.push('…');
        }
        s
    }

    /// Is `rule` allowed (escape hatch) for a finding on 1-based `line`?
    /// The marker may sit on the finding's line or the line directly
    /// above.
    #[must_use]
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .filter(|&&l| l > 0)
            .any(|l| {
                self.allows
                    .get(l)
                    .is_some_and(|rules| rules.iter().any(|(r, _)| r == rule))
            })
    }

    /// The justification attached to an `xtask-allow` marker covering
    /// `rule` on 1-based `line` (or the line above): `None` when no
    /// marker covers the rule, `Some("")` when a marker exists but
    /// carries no free text after the rule list. The exact line wins
    /// over the line above — a trailing marker on the previous statement
    /// never lends its justification downward past a closer marker.
    /// Rules with a mandatory sanctioning policy (taint) reject the
    /// empty case.
    #[must_use]
    pub fn allow_justification(&self, line: usize, rule: &str) -> Option<&str> {
        for l in [line, line.saturating_sub(1)] {
            if l == 0 {
                continue;
            }
            let Some(rules) = self.allows.get(&l) else {
                continue;
            };
            let mut found: Option<&str> = None;
            for (r, just) in rules {
                if r != rule {
                    continue;
                }
                if !just.is_empty() {
                    return Some(just);
                }
                found = Some("");
            }
            if found.is_some() {
                return found;
            }
        }
        None
    }

    // ---- statement structure -------------------------------------------

    /// The inclusive code-index range of the statement containing `ci`,
    /// bounded at the token's own nesting depth: backwards past the
    /// nearest `;`/`{`/`}` at that depth, forwards up to (and including)
    /// a terminating `;`, stopping *before* a block opener so a loop
    /// header or `if` condition scans without its body.
    #[must_use]
    pub fn stmt_range(&self, ci: usize) -> (usize, usize) {
        let d = self.depth[ci];
        let mut s = ci;
        while s > 0 {
            let p = s - 1;
            if self.depth[p] < d
                || (self.depth[p] == d
                    && (self.is_punct(p, ";") || self.is_punct(p, "{") || self.is_punct(p, "}")))
            {
                break;
            }
            s = p;
        }
        let mut e = ci;
        while e + 1 < self.code.len() {
            let q = e + 1;
            if self.depth[q] < d || (self.depth[q] == d && self.is_punct(q, "{")) {
                break;
            }
            if self.depth[q] == d && self.is_punct(q, ";") {
                e = q;
                break;
            }
            e = q;
        }
        (s, e)
    }

    /// Does any code token in the inclusive range satisfy `pred`?
    #[must_use]
    pub fn range_any(&self, range: (usize, usize), pred: impl FnMut(usize) -> bool) -> bool {
        (range.0..=range.1.min(self.code.len().saturating_sub(1))).any(pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("test.rs".into(), src.to_string())
    }

    #[test]
    fn delimiters_match_and_depths_nest() {
        let f = file("fn a() { b(c[0]); }");
        // code tokens: fn a ( ) { b ( c [ 0 ] ) ; }
        assert_eq!(f.cmatch(2), Some(3));
        assert_eq!(f.cmatch(4), Some(13));
        assert_eq!(f.cdepth(0), 0); // fn
        assert_eq!(f.cdepth(5), 1); // b
        assert_eq!(f.cdepth(9), 3); // 0
    }

    #[test]
    fn cfg_test_mask_covers_module_and_resumes_after() {
        let f = file(
            "fn prod1() {}\n\
             #[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n\
             fn prod2() { y.unwrap(); }\n",
        );
        let mut masked = Vec::new();
        let mut unmasked = Vec::new();
        for ci in 0..f.n_code() {
            if f.is_ident(ci, "unwrap") {
                if f.in_test(ci) {
                    masked.push(ci);
                } else {
                    unmasked.push(ci);
                }
            }
        }
        assert_eq!(masked.len(), 1, "test-module unwrap is masked");
        assert_eq!(unmasked.len(), 1, "code after the test module is scanned");
    }

    #[test]
    fn cfg_test_mask_handles_stacked_attributes_and_compound_cfg() {
        let f = file("#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nfn t() { p(); }\n");
        for ci in 0..f.n_code() {
            assert!(f.in_test(ci), "token {} `{}` unmasked", ci, f.ctext(ci));
        }
        let g = file("#[cfg(feature = \"fast\")]\nfn not_test() { p(); }\n");
        assert!((0..g.n_code()).all(|ci| !g.in_test(ci)));
    }

    #[test]
    fn allow_markers_cover_line_and_line_above() {
        let f = file(
            "let a = 1; // xtask-allow: float-eq\n\
             // xtask-allow: hash-iter-order, cast-truncation\n\
             let b = 2;\n",
        );
        assert!(f.allowed(1, "float-eq"));
        assert!(!f.allowed(1, "hash-iter-order"));
        assert!(f.allowed(3, "hash-iter-order"), "line-above marker");
        assert!(f.allowed(3, "cast-truncation"), "comma-separated list");
        assert!(!f.allowed(3, "float-eq"));
    }

    #[test]
    fn allow_markers_carry_justifications() {
        let f = file(
            "let a = x.lock(); // xtask-allow: taint -- cache stores pure values\n\
             let b = y.lock(); // xtask-allow: taint\n\
             /* xtask-allow: taint, lock-order -- one guard, no nesting */\n\
             let c = z.lock();\n",
        );
        assert_eq!(
            f.allow_justification(1, "taint"),
            Some("cache stores pure values"),
            "free text after `--` is the justification"
        );
        assert_eq!(
            f.allow_justification(2, "taint"),
            Some(""),
            "marker without text is allowed-but-unjustified"
        );
        assert_eq!(f.allow_justification(2, "float-eq"), None, "wrong rule");
        assert_eq!(
            f.allow_justification(4, "lock-order"),
            Some("one guard, no nesting"),
            "block comment justification shared across the rule list"
        );
        assert_eq!(
            f.allow_justification(4, "taint"),
            Some("one guard, no nesting")
        );
        assert!(
            f.allowed(1, "taint") && f.allowed(2, "taint"),
            "justification never changes plain allowed()"
        );
    }

    #[test]
    fn statement_ranges_stop_at_boundaries() {
        let f = file("fn a() { let x = m.iter().sum(); x.sort(); }");
        // Find `iter` and check its statement spans let..;
        let iter_ci = (0..f.n_code()).find(|&ci| f.is_ident(ci, "iter")).unwrap();
        let (s, e) = f.stmt_range(iter_ci);
        assert!(f.is_ident(s, "let"));
        assert!(f.is_punct(e, ";"));
        assert!(f.range_any((s, e), |ci| f.is_ident(ci, "sum")));
        assert!(!f.range_any((s, e), |ci| f.is_ident(ci, "sort")));
    }

    #[test]
    fn for_header_statement_stops_before_body() {
        let f = file("fn a() { for k in map.keys() { body(); } }");
        let for_ci = (0..f.n_code()).find(|&ci| f.is_ident(ci, "for")).unwrap();
        let (s, e) = f.stmt_range(for_ci);
        assert_eq!(s, for_ci);
        assert!(f.range_any((s, e), |ci| f.is_ident(ci, "keys")));
        assert!(!f.range_any((s, e), |ci| f.is_ident(ci, "body")));
    }

    #[test]
    fn fn_spans_cover_bodies_and_nesting() {
        let f = file(
            "fn outer() { fn inner() { x(); } inner(); }\n\
             trait T { fn decl(&self); }\n\
             type F = fn(u32) -> u32;\n",
        );
        let names: Vec<&str> = f.fn_spans().iter().map(|s| f.ctext(s.name_ci)).collect();
        assert_eq!(names, ["outer", "inner", "decl"], "fn-pointer type skipped");
        let x_ci = (0..f.n_code()).find(|&ci| f.is_ident(ci, "x")).unwrap();
        assert_eq!(f.enclosing_fn(x_ci), Some("inner"), "innermost wins");
        let call_ci = (x_ci + 1..f.n_code())
            .find(|&ci| f.is_ident(ci, "inner") && f.is_punct(ci + 1, "("))
            .unwrap();
        assert_eq!(f.enclosing_fn(call_ci), Some("outer"));
        assert_eq!(f.enclosing_fn(0), Some("outer"), "kw belongs to its fn");
        let decl = f.fn_spans().iter().find(|s| f.ctext(s.name_ci) == "decl");
        assert!(decl.is_some_and(|s| s.open.is_none()), "body-less decl");
    }

    #[test]
    fn positions_are_one_based() {
        let f = file("a\n  bb\n");
        let (l, c) = f.cpos(1);
        assert_eq!((l, c), (2, 3));
        assert_eq!(f.line_snippet(2), "bb");
    }
}
