// Lint policy: see [workspace.lints] in the root Cargo.toml.
// Unit tests are allowed the ergonomic panicking shortcuts the library
// itself forbids; the policy targets production code paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! catalint — token-level determinism & concurrency analyzer.
//!
//! This crate is the engine behind `cargo xtask lint`. It replaces the
//! original line/substring pass with a small hand-rolled Rust lexer
//! ([`lexer`]) and a per-file token-tree model ([`scan`]), so rules see
//! *code*, never lookalike text inside string literals or comments.
//!
//! The pipeline per run:
//!
//! 1. [`discover`] walks the workspace for `.rs` files (deterministic,
//!    sorted order; skips `target/`, `.git/`, this crate's fixtures and
//!    any `golden` data directories);
//! 2. each file is lexed and indexed into a [`scan::SourceFile`];
//! 3. every enabled rule in [`rules`] runs over the token stream and
//!    emits structured [`diag::Diagnostic`] records;
//! 4. the optional [`baseline`] ratchet grandfathers known debt;
//! 5. the [`diag::Report`] renders human-readable text and, via the
//!    insertion-ordered `catapult_obs::json` serializer, the `--json`
//!    artifact CI uploads.
//!
//! Zero dependencies outside the workspace, by policy: the analyzer must
//! never constrain what it analyzes.

pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scan;
pub mod symbols;
pub mod taint;
pub mod timing;
pub mod xrules;

use diag::Report;
use rules::FileCtx;
use scan::SourceFile;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Duration;
use symbols::Workspace;
use timing::RuleTimer;

/// Top-level directories scanned for Rust sources.
const SCAN_ROOTS: &[&str] = &["src", "crates", "shims", "tests", "examples", "benches"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "golden", "fixtures"];

/// Workspace-relative paths (forward slashes) of every `.rs` file to
/// scan, in sorted (deterministic) order.
pub fn discover(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Crate roots among `files`: per `src/` directory, `lib.rs` when
/// present, else `main.rs`. These are the files `lint-header` checks.
#[must_use]
pub fn crate_roots(files: &[String]) -> BTreeSet<&str> {
    let mut by_dir: std::collections::BTreeMap<&str, (&str, Option<&str>, Option<&str>)> =
        std::collections::BTreeMap::new();
    for rel in files {
        let Some((dir, name)) = rel.rsplit_once('/') else {
            continue;
        };
        if !(dir == "src" || dir.ends_with("/src")) {
            continue;
        }
        let slot = by_dir.entry(dir).or_insert((dir, None, None));
        if name == "lib.rs" {
            slot.1 = Some(rel.as_str());
        } else if name == "main.rs" {
            slot.2 = Some(rel.as_str());
        }
    }
    by_dir
        .values()
        .filter_map(|&(_, lib, main)| lib.or(main))
        .collect()
}

/// Every rule name — file-level, interprocedural, then taint — in
/// registry order.
pub fn all_rules() -> impl Iterator<Item = &'static rules::RuleInfo> {
    rules::RULES
        .iter()
        .chain(xrules::XRULES.iter())
        .chain(taint::TAINT_RULES.iter())
}

/// The set of enabled rule names for a `--rule` filter (empty filter →
/// every rule). Returns an error naming any unknown rule.
pub fn enabled_rules(filter: &[String]) -> Result<BTreeSet<&'static str>, String> {
    if filter.is_empty() {
        return Ok(all_rules().map(|r| r.name).collect());
    }
    let mut on = BTreeSet::new();
    for name in filter {
        match rules::rule_named(name)
            .or_else(|| xrules::xrule_named(name))
            .or_else(|| taint::taint_rule_named(name))
        {
            Some(info) => {
                on.insert(info.name);
            }
            None => {
                let known: Vec<&str> = all_rules().map(|r| r.name).collect();
                return Err(format!(
                    "unknown rule `{name}` (known rules: {})",
                    known.join(", ")
                ));
            }
        }
    }
    Ok(on)
}

/// A full analysis: the finalized lint report plus the workspace symbol
/// index / call graph it ran on (for `--callgraph` exports and tests).
#[derive(Debug)]
pub struct Analysis {
    /// The finalized report (no baseline applied — callers layer
    /// [`baseline::Baseline::apply`] on top).
    pub report: Report,
    /// The workspace index the interprocedural rules consumed.
    pub workspace: Workspace,
    /// Per-rule wall-clock totals in rule-name order (empty unless the
    /// analysis was run with timing; never part of the JSON report).
    pub timings: Vec<(&'static str, Duration)>,
}

/// Run the enabled rules over the workspace at `root`: the per-file
/// token rules stream over each source, then the symbol index and call
/// graph are built once and the interprocedural rules (taint included)
/// run on top.
pub fn analyze(root: &Path, enabled: &BTreeSet<&'static str>) -> std::io::Result<Analysis> {
    analyze_timed(root, enabled, false)
}

/// [`analyze`] with optional per-rule wall-clock accounting.
pub fn analyze_timed(
    root: &Path,
    enabled: &BTreeSet<&'static str>,
    timing: bool,
) -> std::io::Result<Analysis> {
    let files = discover(root)?;
    let roots = crate_roots(&files);
    let mut report = Report {
        rules_run: enabled.iter().copied().collect(),
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut timer = RuleTimer::new(timing);
    let mut parsed = Vec::with_capacity(files.len());
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))?;
        let file = SourceFile::parse(rel.clone(), text);
        let ctx = FileCtx {
            root,
            is_crate_root: roots.contains(rel.as_str()),
        };
        rules::check_file_timed(&file, &ctx, enabled, &mut report.findings, &mut timer);
        parsed.push(file);
    }
    let workspace = Workspace::build(parsed);
    xrules::check_workspace_timed(&workspace, enabled, &mut report.findings, &mut timer);
    timer.time("taint", || {
        taint::check_workspace(&workspace, enabled, &mut report.findings);
    });
    report.finalize();
    Ok(Analysis {
        report,
        workspace,
        timings: timer.finish(),
    })
}

/// Run the enabled rules and return just the report (see [`analyze`]).
pub fn run(root: &Path, enabled: &BTreeSet<&'static str>) -> std::io::Result<Report> {
    analyze(root, enabled).map(|a| a.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_roots_prefer_lib_over_main() {
        let files: Vec<String> = [
            "crates/a/src/lib.rs",
            "crates/a/src/main.rs",
            "crates/b/src/main.rs",
            "crates/b/src/other.rs",
            "src/lib.rs",
            "tests/integration.rs",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
        let roots = crate_roots(&files);
        assert!(roots.contains("crates/a/src/lib.rs"));
        assert!(!roots.contains("crates/a/src/main.rs"));
        assert!(roots.contains("crates/b/src/main.rs"));
        assert!(roots.contains("src/lib.rs"));
        assert!(!roots.contains("tests/integration.rs"));
    }

    #[test]
    fn rule_filter_validates_names() {
        assert_eq!(enabled_rules(&[]).map(|s| s.len()), Ok(all_rules().count()));
        let one = enabled_rules(&["float-eq".to_string()]).expect("known rule");
        assert_eq!(one.len(), 1);
        let x = enabled_rules(&["budget-threading".to_string()]).expect("xrule name");
        assert_eq!(x.len(), 1);
        assert!(enabled_rules(&["bogus".to_string()])
            .unwrap_err()
            .contains("unknown rule"));
    }
}
