//! A zero-dependency Rust lexer producing a gapless token stream.
//!
//! The lexer exists so the lint rules can reason about *code* tokens and
//! never be fooled by lookalike text inside string literals or comments —
//! the failure mode of the line-based `grep` pass this crate replaced.
//! It handles the parts of Rust's lexical grammar that matter for that
//! guarantee:
//!
//! - raw strings (`r"…"`, `r#"…"#`, any hash depth) and their byte/C
//!   variants (`b"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`),
//! - nested block comments (`/* /* */ */`),
//! - lifetimes vs. char literals (`'a` vs. `'a'` vs. `'\u{1F}'`),
//! - raw identifiers (`r#match`),
//! - numeric literals with underscores, base prefixes, exponents, and
//!   type suffixes (`1_000`, `0xFF_u32`, `1.5e-3`, `1f64`),
//! - multi-character operators (`==`, `::`, `..=`, `<<=`, …) emitted as
//!   single `Punct` tokens.
//!
//! Every byte of the input belongs to exactly one token: spans are
//! contiguous, non-overlapping, and cover `0..len`. The round-trip test
//! (`tests/lexer_roundtrip.rs`) re-emits the spans and asserts byte
//! identity against the original source for every file in the workspace.
//! Malformed input (unterminated strings/comments) never panics; the
//! remainder of the file becomes one final token so the tiling invariant
//! still holds.

/// Classification of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Runs of whitespace (spaces, tabs, newlines).
    Whitespace,
    /// `// …` to end of line (doc variants `///`/`//!` included); the
    /// trailing newline is *not* part of the token.
    LineComment,
    /// `/* … */`, nested; doc variants `/**`/`/*!` included.
    BlockComment,
    /// Identifiers and keywords (including raw identifiers `r#ident`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `b'\n'`, `'\u{1F642}'`.
    CharLit,
    /// A string literal in any flavor: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    StrLit,
    /// An integer literal: `42`, `0xFF_u32`, `0b1010`.
    Int,
    /// A float literal: `1.0`, `2.`, `1e-9`, `3f64`.
    Float,
    /// Punctuation; multi-character operators are one token.
    Punct,
    /// Anything the lexer does not recognize (kept spanned so the token
    /// stream still tiles the file).
    Unknown,
}

/// One lexed token: a classification plus its byte span in the source.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    #[must_use]
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True for whitespace and comments — tokens the rules skip over.
    #[must_use]
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lex `src` into a gapless, non-overlapping token stream covering every
/// byte. Never panics: unrecognized or unterminated constructs are
/// spanned as [`TokenKind::Unknown`] / best-effort literals.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let kind = self.next_kind();
            // Defensive: any lexer bug that fails to advance would loop
            // forever; consume one char and mark it Unknown instead.
            if self.pos == start {
                self.bump_char();
                out.push(Token {
                    kind: TokenKind::Unknown,
                    start,
                    end: self.pos,
                });
                continue;
            }
            out.push(Token {
                kind,
                start,
                end: self.pos,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advance past one full `char` (multi-byte safe; no-op at EOF, so
    /// a truncated escape like `'\` at end of input cannot push a token
    /// span past the source).
    fn bump_char(&mut self) {
        if self.pos >= self.bytes.len() {
            return;
        }
        let mut next = self.pos + 1;
        while next < self.bytes.len() && !self.src.is_char_boundary(next) {
            next += 1;
        }
        self.pos = next;
    }

    fn next_kind(&mut self) -> TokenKind {
        let Some(b) = self.peek(0) else {
            return TokenKind::Unknown;
        };
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => self.whitespace(),
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'r' | b'b' | b'c' if self.string_prefix().is_some() => self.prefixed_literal(),
            b'"' => self.string(),
            b'\'' => self.lifetime_or_char(),
            b'0'..=b'9' => self.number(),
            _ if is_ident_start(b) || b >= 0x80 => self.ident_like(),
            _ => self.punct(),
        }
    }

    fn whitespace(&mut self) -> TokenKind {
        while matches!(self.peek(0), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
        TokenKind::Whitespace
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump_char();
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => self.bump_char(),
                (None, _) => break, // unterminated: consume to EOF
            }
        }
        TokenKind::BlockComment
    }

    /// If the cursor sits on a literal prefix (`r`, `b`, `c`, `br`, `cr`,
    /// `b'`…) that actually introduces a string/char literal, return the
    /// byte length of the prefix (not counting `#`s or the quote).
    fn string_prefix(&self) -> Option<usize> {
        let rest = &self.bytes[self.pos..];
        let raw_quote = |from: usize| {
            // `#`* then `"` introduces a raw string body.
            let mut i = from;
            while rest.get(i) == Some(&b'#') {
                i += 1;
            }
            rest.get(i) == Some(&b'"')
        };
        match rest {
            [b'r', ..] if raw_quote(1) => Some(1),
            [b'b' | b'c', b'r', ..] if raw_quote(2) => Some(2),
            [b'b' | b'c', b'"', ..] => Some(1),
            [b'b', b'\'', ..] => Some(1),
            _ => None,
        }
    }

    /// Lex a literal with a prefix: raw/byte/C strings or a byte char.
    fn prefixed_literal(&mut self) -> TokenKind {
        let prefix = self.string_prefix().unwrap_or(1);
        let raw = self.bytes[self.pos..self.pos + prefix].contains(&b'r');
        self.pos += prefix;
        match self.peek(0) {
            Some(b'\'') => {
                // `b'x'` byte char literal.
                self.pos += 1;
                self.char_body();
                TokenKind::CharLit
            }
            _ if raw => self.raw_string(),
            _ => self.string(),
        }
    }

    /// Lex a raw string starting at the `#`s or the quote.
    fn raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) == Some(b'"') {
            self.pos += 1;
        }
        // Scan for `"` followed by `hashes` hash marks.
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + hashes;
                    return TokenKind::StrLit;
                }
            }
            self.bump_char();
        }
        TokenKind::StrLit // unterminated: consumed to EOF
    }

    /// Lex a normal (escaped) string starting at the opening quote.
    fn string(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.pos += 1;
                    self.bump_char(); // skip escaped char (incl. `\"`)
                }
                b'"' => {
                    self.pos += 1;
                    return TokenKind::StrLit;
                }
                _ => self.bump_char(),
            }
        }
        TokenKind::StrLit // unterminated
    }

    /// Consume a char-literal body after the opening `'`, including the
    /// closing quote: one (possibly escaped) char then `'`.
    fn char_body(&mut self) {
        match self.peek(0) {
            Some(b'\\') => {
                self.pos += 1;
                if self.peek(0) == Some(b'u') {
                    // `\u{…}`: consume through the closing brace.
                    while let Some(b) = self.peek(0) {
                        self.pos += 1;
                        if b == b'}' {
                            break;
                        }
                    }
                } else {
                    self.bump_char();
                }
            }
            Some(_) => self.bump_char(),
            None => return,
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
    }

    /// Disambiguate `'a` (lifetime) from `'a'` / `'\n'` (char literal).
    fn lifetime_or_char(&mut self) -> TokenKind {
        self.pos += 1; // the opening `'`
        match self.peek(0) {
            // `'\…'` is always a char literal.
            Some(b'\\') => {
                self.char_body();
                TokenKind::CharLit
            }
            Some(b) if is_ident_start(b) => {
                // Consume the identifier; a trailing `'` makes it a char
                // literal (`'a'`), otherwise it is a lifetime (`'static`).
                let mut ahead = 0usize;
                while self
                    .peek(ahead)
                    .is_some_and(|b| is_ident_continue(b) || b >= 0x80)
                {
                    ahead += 1;
                }
                if self.peek(ahead) == Some(b'\'') {
                    self.char_body();
                    TokenKind::CharLit
                } else {
                    self.pos += ahead;
                    TokenKind::Lifetime
                }
            }
            // `'('`, `' '`, `'"'`, … — a single non-ident char.
            Some(_) => {
                self.char_body();
                TokenKind::CharLit
            }
            None => TokenKind::Unknown,
        }
    }

    fn number(&mut self) -> TokenKind {
        let radix_prefixed = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
        if radix_prefixed {
            self.pos += 2;
            // Hex digits, underscores, and any type suffix (`u32`, …).
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
            return TokenKind::Int;
        }
        let mut float = false;
        self.digits();
        // A `.` continues the literal as a float only when what follows
        // cannot be a method/field (`1.max(2)`), a range (`1..n`), or a
        // second dot; `1.` and `1.5` are floats.
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(b'.') => {}                   // range `1..`
                Some(b) if is_ident_start(b) => {} // `1.max(…)`
                Some(b) if b.is_ascii_digit() => {
                    float = true;
                    self.pos += 1;
                    self.digits();
                }
                _ => {
                    float = true; // trailing-dot float `1.`
                    self.pos += 1;
                }
            }
        }
        // Exponent: `e`/`E`, optional sign, at least one digit.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
            if self.peek(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
                float = true;
                self.pos += 1 + sign;
                self.digits();
            }
        }
        // Type suffix: `u32`, `f64`, `usize`, … (also absorbs `_` runs).
        let suffix_start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix.starts_with('f') {
            float = true; // `1f64`, `2.5f32`
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn digits(&mut self) {
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_digit() || b == b'_')
        {
            self.pos += 1;
        }
    }

    fn ident_like(&mut self) -> TokenKind {
        // Raw identifier `r#ident` (the raw-string case was dispatched
        // before this point, so `r#` here always introduces an ident).
        if self.peek(0) == Some(b'r') && self.peek(1) == Some(b'#') {
            self.pos += 2;
        }
        while self
            .peek(0)
            .is_some_and(|b| is_ident_continue(b) || b >= 0x80)
        {
            self.bump_char();
        }
        TokenKind::Ident
    }

    fn punct(&mut self) -> TokenKind {
        let rest = &self.src[self.pos..];
        for op in OPERATORS {
            if rest.starts_with(op) {
                self.pos += op.len();
                return TokenKind::Punct;
            }
        }
        self.bump_char();
        TokenKind::Punct
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn tiles(src: &str) {
        let toks = lex(src);
        let mut at = 0usize;
        for t in &toks {
            assert_eq!(t.start, at, "gap/overlap at {at} in {src:?}");
            assert!(t.end > t.start, "empty token at {at} in {src:?}");
            at = t.end;
        }
        assert_eq!(at, src.len(), "uncovered tail in {src:?}");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("&'a str 'x' '\\n' 'static b'z'"),
            vec![
                (TokenKind::Punct, "&"),
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Ident, "str"),
                (TokenKind::CharLit, "'x'"),
                (TokenKind::CharLit, "'\\n'"),
                (TokenKind::Lifetime, "'static"),
                (TokenKind::CharLit, "b'z'"),
            ]
        );
        tiles("&'a str 'x' '\\n' 'static b'z'");
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r####"r"a" r#"b"# r##"c "# d"## b"e" br#"f"#"####;
        let got = kinds(src);
        assert!(got.iter().all(|(k, _)| *k == TokenKind::StrLit), "{got:?}");
        assert_eq!(got.len(), 5);
        assert_eq!(got[2].1, r###"r##"c "# d"##"###);
        tiles(src);
    }

    #[test]
    fn raw_ident_is_not_raw_string() {
        assert_eq!(
            kinds("r#match r#\"s\"#"),
            vec![
                (TokenKind::Ident, "r#match"),
                (TokenKind::StrLit, "r#\"s\"#"),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still */ b";
        assert_eq!(
            kinds(src),
            vec![(TokenKind::Ident, "a"), (TokenKind::Ident, "b")]
        );
        tiles(src);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        assert_eq!(
            kinds(r#""a \" panic!() \\" x"#),
            vec![
                (TokenKind::StrLit, r#""a \" panic!() \\""#),
                (TokenKind::Ident, "x"),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 1_000 0xFF_u32 1.5 2. 1e9 1.5e-3 3f64 7usize"),
            vec![
                (TokenKind::Int, "1"),
                (TokenKind::Int, "1_000"),
                (TokenKind::Int, "0xFF_u32"),
                (TokenKind::Float, "1.5"),
                (TokenKind::Float, "2."),
                (TokenKind::Float, "1e9"),
                (TokenKind::Float, "1.5e-3"),
                (TokenKind::Float, "3f64"),
                (TokenKind::Int, "7usize"),
            ]
        );
    }

    #[test]
    fn ranges_and_method_calls_are_not_floats() {
        assert_eq!(
            kinds("1..9 0..=n v[1].x"),
            vec![
                (TokenKind::Int, "1"),
                (TokenKind::Punct, ".."),
                (TokenKind::Int, "9"),
                (TokenKind::Int, "0"),
                (TokenKind::Punct, "..="),
                (TokenKind::Ident, "n"),
                (TokenKind::Ident, "v"),
                (TokenKind::Punct, "["),
                (TokenKind::Int, "1"),
                (TokenKind::Punct, "]"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "x"),
            ]
        );
    }

    #[test]
    fn multichar_operators() {
        assert_eq!(
            kinds("a == b != c <= d >= e :: f -> g => h <<= i"),
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::Punct, "=="),
                (TokenKind::Ident, "b"),
                (TokenKind::Punct, "!="),
                (TokenKind::Ident, "c"),
                (TokenKind::Punct, "<="),
                (TokenKind::Ident, "d"),
                (TokenKind::Punct, ">="),
                (TokenKind::Ident, "e"),
                (TokenKind::Punct, "::"),
                (TokenKind::Ident, "f"),
                (TokenKind::Punct, "->"),
                (TokenKind::Ident, "g"),
                (TokenKind::Punct, "=>"),
                (TokenKind::Ident, "h"),
                (TokenKind::Punct, "<<="),
                (TokenKind::Ident, "i"),
            ]
        );
    }

    #[test]
    fn unterminated_constructs_never_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "1."] {
            tiles(src);
        }
    }

    #[test]
    fn unicode_content_round_trips() {
        for src in ["let s = \"γ-validity — ≤ η\"; // ccov × lcov ÷ cog", "'é'"] {
            tiles(src);
        }
    }
}
