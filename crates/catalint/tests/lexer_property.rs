//! Generator-based property tests for the lexer.
//!
//! A hand-rolled xorshift PRNG (fixed seeds — runs are reproducible by
//! construction) builds randomized sources around the lexer's hardest
//! ambiguities: raw strings at arbitrary hash depth whose bodies embed
//! shallower `"#…` sequences, arbitrarily nested block comments,
//! lifetime-vs-char-literal splits, and the float/range family
//! (`1.` / `1..2` / `1.0e3` / `1.max(2)`). Every generated source must
//! re-tile byte-identically: the token spans cover the input with no
//! gaps or overlaps, and concatenating the token texts reproduces the
//! input exactly. Lexing is also checked to be a pure function of the
//! bytes (two lexes agree token-for-token).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catalint::lexer::{lex, TokenKind};

/// xorshift64 — deterministic, dependency-free randomness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish draw in `0..n`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The tiling invariant: gapless, full-coverage, byte-identical rebuild.
fn assert_tiles(src: &str, what: &str) {
    let tokens = lex(src);
    let mut pos = 0usize;
    let mut rebuilt = String::new();
    for t in &tokens {
        assert_eq!(
            t.start, pos,
            "gap or overlap at byte {pos} (token {:?}) in {what}: {src:?}",
            t.kind
        );
        rebuilt.push_str(t.text(src));
        pos = t.end;
    }
    assert_eq!(
        pos,
        src.len(),
        "token coverage ends early in {what}: {src:?}"
    );
    assert_eq!(rebuilt, src, "round-trip mismatch in {what}");

    let again = lex(src);
    assert_eq!(tokens.len(), again.len(), "lexing is not deterministic");
    for (a, b) in tokens.iter().zip(again.iter()) {
        assert!(
            a.kind == b.kind && a.start == b.start && a.end == b.end,
            "token mismatch between identical lexes in {what}"
        );
    }
}

/// A raw string at hash depth `depth` whose body embeds `"#…` runs of
/// every strictly shallower depth — the closer must only match at the
/// full depth.
fn gen_raw_string(rng: &mut Rng, depth: usize) -> String {
    let hashes = "#".repeat(depth);
    let mut body = String::from("raw ");
    for inner in 0..depth {
        body.push('"');
        body.push_str(&"#".repeat(inner));
        body.push(' ');
    }
    if rng.below(2) == 0 {
        body.push_str("trailing \\ backslash is literal");
    }
    format!("r{hashes}\"{body}\"{hashes}")
}

/// A block comment nested `depth` levels, with line-comment decoys inside.
fn gen_nested_comment(rng: &mut Rng, depth: usize) -> String {
    let mut s = String::new();
    for _ in 0..depth {
        s.push_str("/* level ");
    }
    if rng.below(2) == 0 {
        s.push_str("// not a line comment here ");
    }
    for _ in 0..depth {
        s.push_str(" */");
    }
    s
}

/// Lifetime-vs-char ambiguities.
fn gen_lifetime_or_char(rng: &mut Rng) -> String {
    let cases = [
        "&'a str",
        "'x'",
        "'\\''",
        "'\\n'",
        "b'q'",
        "<'long_lifetime>",
        "'_",
        "x: &'static str",
    ];
    cases[rng.below(cases.len())].to_string()
}

/// Float/range ambiguities.
fn gen_float_or_range(rng: &mut Rng) -> String {
    let a = rng.below(100);
    let b = rng.below(100);
    match rng.below(6) {
        0 => format!("{a}."),
        1 => format!("{a}..{b}"),
        2 => format!("{a}..={b}"),
        3 => format!("{a}.{b}e{}", rng.below(9)),
        4 => format!("{a}.max({b})"),
        _ => format!("{a}.0f64"),
    }
}

fn gen_snippet(rng: &mut Rng) -> String {
    match rng.below(6) {
        0 => {
            let depth = rng.below(7);
            gen_raw_string(rng, depth)
        }
        1 => {
            let depth = 1 + rng.below(5);
            gen_nested_comment(rng, depth)
        }
        2 => gen_lifetime_or_char(rng),
        3 => gen_float_or_range(rng),
        4 => format!("ident_{}", rng.below(1000)),
        _ => "let x = \"str with \\\" escape\";".to_string(),
    }
}

#[test]
fn random_token_soup_retiles_byte_identically() {
    let mut rng = Rng::new(0x5eed_cafe_f00d_0001);
    for case in 0..300 {
        let mut src = String::new();
        for _ in 0..(1 + rng.below(20)) {
            src.push_str(&gen_snippet(&mut rng));
            src.push_str([" ", "\n", "\t", ""][rng.below(4)]);
        }
        assert_tiles(&src, &format!("soup case {case}"));
    }
}

#[test]
fn raw_strings_lex_as_one_token_at_every_depth() {
    let mut rng = Rng::new(0x5eed_cafe_f00d_0002);
    for depth in 0..8 {
        for rep in 0..10 {
            let raw = gen_raw_string(&mut rng, depth);
            let src = format!("let s = {raw} ;");
            assert_tiles(&src, &format!("raw depth {depth} rep {rep}"));
            let tokens = lex(&src);
            let strs: Vec<_> = tokens
                .iter()
                .filter(|t| t.kind == TokenKind::StrLit)
                .collect();
            assert_eq!(
                strs.len(),
                1,
                "raw string at depth {depth} must be one StrLit: {src:?}"
            );
            assert_eq!(strs[0].text(&src), raw, "span covers the whole literal");
        }
    }
}

#[test]
fn nested_comments_lex_as_one_token_at_every_depth() {
    let mut rng = Rng::new(0x5eed_cafe_f00d_0003);
    for depth in 1..8 {
        let comment = gen_nested_comment(&mut rng, depth);
        let src = format!("before {comment} after");
        assert_tiles(&src, &format!("comment depth {depth}"));
        let tokens = lex(&src);
        let blocks: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::BlockComment)
            .collect();
        assert_eq!(
            blocks.len(),
            1,
            "nesting depth {depth} must close into one token: {src:?}"
        );
        assert_eq!(blocks[0].text(&src), comment);
    }
}

#[test]
fn truncated_generations_still_tile() {
    // Chop every generated snippet at a random byte (on a char
    // boundary): unterminated raw strings, comments, and char literals
    // must still tile to the end of input.
    let mut rng = Rng::new(0x5eed_cafe_f00d_0004);
    for case in 0..200 {
        let full = gen_snippet(&mut rng);
        let mut cut = rng.below(full.len() + 1);
        while !full.is_char_boundary(cut) {
            cut -= 1;
        }
        assert_tiles(&full[..cut], &format!("truncated case {case}"));
    }
}
