//! The lexer's contract: token spans tile the source byte-identically —
//! no gaps, no overlaps, full coverage — for every fixture and for every
//! real source file in this workspace.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catalint::lexer::{lex, TokenKind};
use std::path::{Path, PathBuf};

fn assert_tiles(src: &str, what: &str) {
    let tokens = lex(src);
    let mut pos = 0usize;
    let mut rebuilt = String::new();
    for t in &tokens {
        assert_eq!(
            t.start, pos,
            "gap or overlap at byte {pos} (token {:?}) in {what}",
            t.kind
        );
        assert!(t.end > t.start || src.is_empty(), "empty token in {what}");
        rebuilt.push_str(t.text(src));
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "token coverage ends early in {what}");
    assert_eq!(rebuilt, src, "round-trip mismatch in {what}");
}

fn workspace_root() -> PathBuf {
    // crates/catalint → workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn every_workspace_source_file_round_trips() {
    let root = workspace_root();
    let files = catalint::discover(&root).expect("discover");
    assert!(
        files.len() > 50,
        "workspace scan looks wrong: only {} files",
        files.len()
    );
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel)).expect("read");
        assert_tiles(&text, rel);
    }
}

#[test]
fn every_fixture_round_trips() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut n = 0;
    for rule_dir in std::fs::read_dir(&dir).expect("fixtures dir") {
        let rule_dir = rule_dir.expect("entry").path();
        for file in std::fs::read_dir(&rule_dir).expect("rule dir") {
            let path = file.expect("entry").path();
            let text = std::fs::read_to_string(&path).expect("read");
            assert_tiles(&text, &path.display().to_string());
            n += 1;
        }
    }
    assert_eq!(
        n, 58,
        "14 file rules x (fires + clean) + 4 xrules x (fires + clean) \
         + 11 taint pairs"
    );
}

#[test]
fn pathological_shapes_round_trip() {
    let cases = [
        "let s = r##\"raw \"# inside\"## ;",
        "/* outer /* nested */ still outer */ fn f() {}",
        "let c = 'a'; let lt: &'a str = x; let esc = '\\'';",
        "let f = 1.; let r = 1..2; let m = 1.max(2);",
        "let b = b\"bytes\"; let rb = br#\"raw bytes\"#;",
        "fn f() { /* unterminated",
        "let s = \"unterminated",
        "let weird = ©; // non-ascii punct survives as Unknown",
        "",
    ];
    for (i, src) in cases.iter().enumerate() {
        assert_tiles(src, &format!("case {i}"));
    }
}

#[test]
fn trivia_classification_is_exact() {
    let src = "// line\n/* block */ fn f(x: &'a str) -> char { 'x' }\n";
    let tokens = lex(src);
    let kinds: Vec<TokenKind> = tokens
        .iter()
        .filter(|t| !t.is_trivia())
        .map(|t| t.kind)
        .collect();
    assert_eq!(kinds[0], TokenKind::Ident, "fn");
    assert!(kinds.contains(&TokenKind::Lifetime));
    assert!(kinds.contains(&TokenKind::CharLit));
    assert!(!kinds.contains(&TokenKind::LineComment));
    assert!(!kinds.contains(&TokenKind::BlockComment));
}
