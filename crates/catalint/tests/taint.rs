//! Fixture tests for the interprocedural nondeterminism-taint rule.
//!
//! Each fixture under `tests/fixtures/taint/` is a miniature multi-file
//! workspace (`//@ file: <rel>` headers), paired `_fires`/`_clean` so
//! both the firing shape and its correctly-written twin stay pinned:
//! every nondeterminism source kind, the struct-field sink embedding,
//! the order-sanitizer kill, the checkpoint wire sink, and both halves
//! of the sanctioning policy (justified allow suppresses with an audit
//! diagnostic; a bare marker is itself a finding).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catalint::diag::{Diagnostic, Suppression};
use catalint::scan::SourceFile;
use catalint::symbols::Workspace;
use catalint::taint::{self, TaintGraph};
use std::collections::BTreeSet;

/// Parse a fixture into a [`Workspace`] of virtual files.
fn fixture_workspace(name: &str) -> Workspace {
    let path = format!("{}/tests/fixtures/taint/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let mut files = Vec::new();
    let mut rel: Option<String> = None;
    let mut body = String::new();
    for line in text.lines() {
        if let Some(next) = line.strip_prefix("//@ file: ") {
            if let Some(r) = rel.take() {
                files.push(SourceFile::parse(r, std::mem::take(&mut body)));
            }
            rel = Some(next.trim().to_string());
        } else {
            body.push_str(line);
            body.push('\n');
        }
    }
    let r = rel.expect("fixture declares at least one `//@ file:` header");
    files.push(SourceFile::parse(r, body));
    Workspace::build(files)
}

/// Run the taint rule over a fixture.
fn run_taint(fixture: &str) -> Vec<Diagnostic> {
    let ws = fixture_workspace(fixture);
    let enabled: BTreeSet<&'static str> = ["taint"].into_iter().collect();
    let mut out = Vec::new();
    taint::check_workspace(&ws, &enabled, &mut out);
    out
}

fn active(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags
        .iter()
        .filter(|d| d.suppressed == Suppression::None)
        .collect()
}

fn messages(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| format!("{}:{} [{}] {}", d.path, d.line, d.enclosing_fn, d.message))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Assert a `_clean` fixture produces no findings at all.
fn assert_clean(fixture: &str) {
    let diags = run_taint(fixture);
    assert!(
        diags.is_empty(),
        "{fixture} should be silent, got:\n{}",
        messages(&diags)
    );
}

#[test]
fn instant_into_selection_result_fires() {
    let diags = run_taint("instant_fires.rs");
    let act = active(&diags);
    assert_eq!(act.len(), 1, "findings:\n{}", messages(&diags));
    let d = act[0];
    assert!(
        d.message.contains("returns `SelectionResult`"),
        "{}",
        d.message
    );
    assert!(d.message.contains("Instant::now()"), "{}", d.message);
    assert!(d.message.contains("time nondeterminism"), "{}", d.message);
    assert_eq!(d.enclosing_fn, "select_patterns");
}

#[test]
fn instant_clean_twin_is_silent() {
    assert_clean("instant_clean.rs");
}

#[test]
fn hash_iteration_flows_interprocedurally() {
    let diags = run_taint("hash_iter_fires.rs");
    let act = active(&diags);
    assert_eq!(act.len(), 1, "findings:\n{}", messages(&diags));
    let d = act[0];
    assert!(
        d.message.contains("HashMap/HashSet iteration"),
        "{}",
        d.message
    );
    assert!(
        d.message.contains("path rank_edges -> edge_frequencies"),
        "witness path: {}",
        d.message
    );
    assert!(
        d.message.contains("crates/core/src/freq.rs:"),
        "source location: {}",
        d.message
    );
}

#[test]
fn hash_iteration_sorted_at_source_is_silent() {
    assert_clean("hash_iter_clean.rs");
}

#[test]
fn env_read_into_manifest_fires() {
    let diags = run_taint("env_fires.rs");
    let act = active(&diags);
    assert_eq!(act.len(), 1, "findings:\n{}", messages(&diags));
    assert!(
        act[0].message.contains("CATAPULT_THREADS"),
        "{}",
        act[0].message
    );
    assert!(
        act[0].message.contains("env nondeterminism"),
        "{}",
        act[0].message
    );
}

#[test]
fn env_read_in_exempt_shim_is_silent() {
    assert_clean("env_clean.rs");
}

#[test]
fn unseeded_rng_fires_seeded_does_not() {
    let diags = run_taint("rng_fires.rs");
    let act = active(&diags);
    assert_eq!(act.len(), 1, "findings:\n{}", messages(&diags));
    assert!(
        act[0].message.contains("`thread_rng`"),
        "{}",
        act[0].message
    );
    assert!(
        act[0].message.contains("path sample_patterns -> pick_seed"),
        "{}",
        act[0].message
    );
    assert_clean("rng_clean.rs");
}

#[test]
fn raw_mutex_accumulation_fires() {
    let diags = run_taint("mutex_fires.rs");
    let act = active(&diags);
    assert_eq!(act.len(), 1, "findings:\n{}", messages(&diags));
    assert!(
        act[0].message.contains("Mutex-guarded accumulation order"),
        "{}",
        act[0].message
    );
    assert!(
        act[0].message.contains("lock-order nondeterminism"),
        "{}",
        act[0].message
    );
}

#[test]
fn sorted_mutex_drain_is_silent() {
    assert_clean("mutex_clean.rs");
}

#[test]
fn struct_field_embedding_makes_wrapper_a_sink() {
    // Acceptance fixture: `Bundle { sel: SelectionResult }` inherits the
    // sink obligation, and the flow crosses two files and two hops.
    let diags = run_taint("struct_field_fires.rs");
    let act = active(&diags);
    assert_eq!(act.len(), 1, "findings:\n{}", messages(&diags));
    let d = act[0];
    assert!(d.message.contains("returns `Bundle`"), "{}", d.message);
    assert!(
        d.message.contains("path bundle_up -> build_note -> stamp"),
        "witness path: {}",
        d.message
    );
    assert!(d.message.contains("SystemTime::now()"), "{}", d.message);
    assert!(
        d.message.contains("crates/core/src/deep.rs:"),
        "source location: {}",
        d.message
    );
}

#[test]
fn struct_field_clean_twin_is_silent() {
    assert_clean("struct_field_clean.rs");
}

#[test]
fn order_sanitizer_kills_the_propagation_hop() {
    // Acceptance pair: the same hash-order taint reaches the report in
    // `_fires`; a `sort_unstable` on the receiving binding kills the hop
    // in `_clean`.
    let diags = run_taint("sanitizer_fires.rs");
    let act = active(&diags);
    assert_eq!(act.len(), 1, "findings:\n{}", messages(&diags));
    assert!(
        act[0].message.contains("path summarize -> label_counts"),
        "{}",
        act[0].message
    );
    assert_clean("sanitizer_clean.rs");
}

#[test]
fn checkpoint_wire_writer_is_a_sink() {
    let diags = run_taint("wire_sink_fires.rs");
    let act = active(&diags);
    assert_eq!(act.len(), 1, "findings:\n{}", messages(&diags));
    let d = act[0];
    assert!(
        d.message.contains("writes the checkpoint wire format"),
        "{}",
        d.message
    );
    assert!(
        d.message.contains("path encode_state -> seed_salt"),
        "{}",
        d.message
    );
    assert_clean("wire_sink_clean.rs");
}

#[test]
fn thread_topology_fires_parameter_does_not() {
    let diags = run_taint("parallelism_fires.rs");
    let act = active(&diags);
    assert_eq!(act.len(), 1, "findings:\n{}", messages(&diags));
    assert!(
        act[0].message.contains("`available_parallelism`"),
        "{}",
        act[0].message
    );
    assert!(
        act[0].message.contains("thread nondeterminism"),
        "{}",
        act[0].message
    );
    assert_clean("parallelism_clean.rs");
}

#[test]
fn bare_allow_marker_is_itself_a_finding() {
    let diags = run_taint("allow_unjustified_fires.rs");
    let act = active(&diags);
    assert_eq!(act.len(), 1, "findings:\n{}", messages(&diags));
    assert!(
        act[0].message.contains("requires a written justification"),
        "{}",
        act[0].message
    );
}

#[test]
fn justified_allow_suppresses_with_an_audit_diagnostic() {
    let diags = run_taint("allow_justified_clean.rs");
    assert!(
        active(&diags).is_empty(),
        "justified allow must not fail the build:\n{}",
        messages(&diags)
    );
    let audits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.suppressed == Suppression::Allowed)
        .collect();
    assert_eq!(audits.len(), 1, "findings:\n{}", messages(&diags));
    assert!(
        audits[0]
            .message
            .contains("sanctioned nondeterminism source"),
        "{}",
        audits[0].message
    );
    assert!(
        audits[0]
            .message
            .contains("wall-clock feeds the progress meter only"),
        "the justification text is preserved: {}",
        audits[0].message
    );
}

#[test]
fn random_state_fires_btree_does_not() {
    let diags = run_taint("random_state_fires.rs");
    let act = active(&diags);
    assert_eq!(act.len(), 1, "findings:\n{}", messages(&diags));
    assert!(act[0].message.contains("RandomState"), "{}", act[0].message);
    assert_clean("random_state_clean.rs");
}

#[test]
fn taint_graph_exports_are_byte_deterministic() {
    let ws = fixture_workspace("struct_field_fires.rs");
    let g1 = TaintGraph::compute(&ws);
    let g2 = TaintGraph::compute(&ws);
    assert_eq!(
        g1.to_json(&ws).render(),
        g2.to_json(&ws).render(),
        "JSON export must be byte-identical across computes"
    );
    assert_eq!(g1.to_dot(&ws), g2.to_dot(&ws));

    let json = g1.to_json(&ws).render();
    assert!(json.starts_with("{\n  \"schema_version\": 1"));
    assert!(json.contains("\"what\": \"SystemTime::now()\""));
    assert!(json.contains("\"obligation\": \"returns `Bundle`\""));
    let dot = g1.to_dot(&ws);
    assert!(dot.starts_with("digraph taint {"));
    assert!(dot.contains("[label=\"time\"]"), "{dot}");
}

#[test]
fn findings_are_deterministic_across_runs() {
    let a = messages(&run_taint("sanitizer_fires.rs"));
    let b = messages(&run_taint("sanitizer_fires.rs"));
    assert_eq!(a, b);
}
