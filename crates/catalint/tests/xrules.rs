//! Fixture tests for the interprocedural rules.
//!
//! Each fixture under `tests/fixtures/xrules/` is a miniature multi-file
//! workspace: `//@ file: <rel>` headers split it into virtual sources
//! whose paths place them in the directories the rules scope to (kernel
//! files, pipeline crates). `_fires` fixtures must produce exactly the
//! expected findings; `_clean` twins exercise the same shapes written
//! correctly and must stay silent — the pairing keeps each rule's
//! false-positive and false-negative edges pinned.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catalint::diag::Diagnostic;
use catalint::scan::SourceFile;
use catalint::symbols::Workspace;
use catalint::xrules;
use std::collections::BTreeSet;

/// Parse a fixture into a [`Workspace`] of virtual files.
fn fixture_workspace(name: &str) -> Workspace {
    let path = format!(
        "{}/tests/fixtures/xrules/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let mut files = Vec::new();
    let mut rel: Option<String> = None;
    let mut body = String::new();
    for line in text.lines() {
        if let Some(next) = line.strip_prefix("//@ file: ") {
            if let Some(r) = rel.take() {
                files.push(SourceFile::parse(r, std::mem::take(&mut body)));
            }
            rel = Some(next.trim().to_string());
        } else {
            body.push_str(line);
            body.push('\n');
        }
    }
    let r = rel.expect("fixture declares at least one `//@ file:` header");
    files.push(SourceFile::parse(r, body));
    Workspace::build(files)
}

/// Run one interprocedural rule over a fixture.
fn run_rule(fixture: &str, rule: &'static str) -> Vec<Diagnostic> {
    let ws = fixture_workspace(fixture);
    let enabled: BTreeSet<&'static str> = [rule].into_iter().collect();
    let mut out = Vec::new();
    xrules::check_workspace(&ws, &enabled, &mut out);
    out
}

fn messages(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| format!("{}:{} [{}] {}", d.path, d.line, d.enclosing_fn, d.message))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn budget_threading_fires_on_bare_and_unthreaded_calls() {
    let diags = run_rule("budget_threading_fires.rs", "budget-threading");
    assert_eq!(diags.len(), 2, "findings:\n{}", messages(&diags));
    let bare = diags
        .iter()
        .find(|d| d.enclosing_fn == "score_unbounded")
        .expect("bare-kernel finding");
    assert!(
        bare.message.contains("cannot accept a SearchBudget"),
        "{}",
        bare.message
    );
    let unthreaded = diags
        .iter()
        .find(|d| d.enclosing_fn == "score_raw_cap")
        .expect("unthreaded finding");
    assert!(
        unthreaded
            .message
            .contains("path: score_raw_cap -> mcs_with_budget"),
        "witness path names the hop: {}",
        unthreaded.message
    );
}

#[test]
fn budget_threading_is_silent_when_budgets_are_threaded() {
    let diags = run_rule("budget_threading_clean.rs", "budget-threading");
    assert!(
        diags.is_empty(),
        "unexpected findings:\n{}",
        messages(&diags)
    );
}

#[test]
fn panic_reachability_follows_helper_chains_into_kernels() {
    let diags = run_rule("panic_reachability_fires.rs", "panic-reachability");
    assert_eq!(diags.len(), 1, "findings:\n{}", messages(&diags));
    let d = &diags[0];
    assert_eq!(d.path, "crates/graph/src/iso.rs");
    assert_eq!(d.enclosing_fn, "find_embedding");
    assert!(
        d.message.contains("find_embedding -> mid -> pick"),
        "witness path shows the chain: {}",
        d.message
    );
    assert!(d.message.contains(".unwrap()"), "{}", d.message);
}

#[test]
fn panic_reachability_is_silent_on_total_helpers() {
    let diags = run_rule("panic_reachability_clean.rs", "panic-reachability");
    assert!(
        diags.is_empty(),
        "unexpected findings:\n{}",
        messages(&diags)
    );
}

#[test]
fn completeness_flow_flags_discarded_tags() {
    let diags = run_rule("completeness_flow_fires.rs", "completeness-flow");
    assert_eq!(diags.len(), 4, "findings:\n{}", messages(&diags));
    let by_fn = |name: &str| diags.iter().filter(|d| d.enclosing_fn == name).count();
    assert_eq!(by_fn("warm_cache"), 1, "bare statement discard");
    assert_eq!(by_fn("warm_quietly"), 1, "`let _` discard");
    assert_eq!(by_fn("total_distance"), 2, "both `.distance` projections");
}

#[test]
fn completeness_flow_is_silent_when_the_tag_is_consumed() {
    let diags = run_rule("completeness_flow_clean.rs", "completeness-flow");
    assert!(
        diags.is_empty(),
        "unexpected findings:\n{}",
        messages(&diags)
    );
}

#[test]
fn lock_order_xfn_finds_cross_function_cycles_and_reentry() {
    let diags = run_rule("lock_order_xfn_fires.rs", "lock-order-xfn");
    assert_eq!(diags.len(), 2, "findings:\n{}", messages(&diags));
    let cycle = diags
        .iter()
        .find(|d| d.message.contains("lock-order cycle"))
        .expect("cycle finding");
    assert!(
        cycle.message.contains("REGISTRY") && cycle.message.contains("JOURNAL"),
        "{}",
        cycle.message
    );
    let reentry = diags
        .iter()
        .find(|d| d.message.contains("re-entrant"))
        .expect("re-entrancy finding");
    assert_eq!(reentry.enclosing_fn, "compact");
}

#[test]
fn lock_order_xfn_is_silent_under_a_global_order() {
    let diags = run_rule("lock_order_xfn_clean.rs", "lock-order-xfn");
    assert!(
        diags.is_empty(),
        "unexpected findings:\n{}",
        messages(&diags)
    );
}
