//! Whole-workspace call-graph properties over the *real* repository:
//! determinism of the exported artifact and resolution of the paths the
//! budget-threading rule depends on (CLI entry points must reach the
//! iso/mcs/ged kernels through resolved edges, or the rule is blind).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::BTreeSet;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/catalint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn callgraph_json_is_byte_identical_across_scans() {
    let root = repo_root();
    let none = BTreeSet::new();
    let a = catalint::analyze(&root, &none).expect("first scan");
    let b = catalint::analyze(&root, &none).expect("second scan");
    let (ja, jb) = (
        a.workspace.callgraph_json().render(),
        b.workspace.callgraph_json().render(),
    );
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "call-graph export must be deterministic");
    assert!(ja.contains("\"schema_version\""));
}

#[test]
fn kernel_budget_paths_resolve_from_cli_entry_points() {
    let root = repo_root();
    let ws = catalint::analyze(&root, &BTreeSet::new())
        .expect("scan")
        .workspace;

    // Forward closure over resolved edges from every CLI-crate def.
    let mut seen: BTreeSet<usize> = ws
        .defs
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.in_test && ws.files[d.file].rel.starts_with("src/"))
        .map(|(i, _)| i)
        .collect();
    assert!(!seen.is_empty(), "no CLI entry points found under src/");
    let mut stack: Vec<usize> = seen.iter().copied().collect();
    while let Some(id) = stack.pop() {
        for &si in ws.calls_of(id) {
            if let Some(t) = catalint::xrules::resolved_target(&ws.calls[si]) {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
    }

    // Budget-carrying type names, via the same struct-embedding fixpoint
    // budget-threading uses (SearchBudget riding inside config structs).
    let mut carrying: BTreeSet<String> = ["SearchBudget", "BudgetMeter"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    loop {
        let mut grew = false;
        for s in &ws.structs {
            if !carrying.contains(&s.name)
                && s.fields
                    .iter()
                    .any(|f| f.type_idents.iter().any(|t| carrying.contains(t)))
            {
                carrying.insert(s.name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    for kernel in [
        "crates/graph/src/iso.rs",
        "crates/graph/src/mcs.rs",
        "crates/graph/src/ged.rs",
    ] {
        let reached: Vec<usize> = seen
            .iter()
            .copied()
            .filter(|&id| ws.files[ws.defs[id].file].rel == kernel)
            .collect();
        assert!(
            !reached.is_empty(),
            "no resolved call path from CLI entry points into {kernel}"
        );
        assert!(
            reached.iter().any(|&id| ws.sig_mentions(id, &carrying)),
            "no budget-threading path into {kernel}: reached only {:?}",
            reached
                .iter()
                .map(|&id| ws.defs[id].name.as_str())
                .collect::<Vec<_>>()
        );
    }
}
