//! Every rule has a firing and a clean fixture, and the suppression
//! machinery (inline allows) works end to end.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catalint::diag::{Diagnostic, Suppression};
use catalint::rules::{check_file, FileCtx, RULES};
use catalint::scan::SourceFile;
use std::collections::BTreeSet;
use std::path::Path;

/// A workspace-relative path that puts a fixture inside the rule's scope.
fn scoped_rel(rule: &str) -> &'static str {
    match rule {
        "kernel-no-panic" => "crates/graph/src/iso.rs",
        "doc-coverage" => "crates/graph/src/fixture.rs",
        "float-eq" => "crates/core/src/score.rs",
        "lint-header" => "crates/fixture/src/lib.rs",
        "cast-truncation" => "crates/graph/src/ged.rs",
        _ => "crates/core/src/fixture.rs",
    }
}

fn run_source(rule: &'static str, rel: &str, text: String) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel.to_string(), text);
    let mut enabled = BTreeSet::new();
    enabled.insert(rule);
    let ctx = FileCtx {
        root: Path::new(env!("CARGO_MANIFEST_DIR")),
        is_crate_root: rule == "lint-header",
    };
    let mut out = Vec::new();
    check_file(&file, &ctx, &enabled, &mut out);
    out
}

fn run_fixture(rule: &'static str, which: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(format!("{which}.rs"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    run_source(rule, scoped_rel(rule), text)
}

#[test]
fn every_rule_has_a_firing_fixture() {
    for rule in RULES {
        let found = run_fixture(rule.name, "fires");
        assert!(
            found
                .iter()
                .any(|d| d.rule == rule.name && d.suppressed == Suppression::None),
            "fixture for `{}` does not fire: {found:?}",
            rule.name
        );
        assert!(
            found.iter().all(|d| d.rule == rule.name),
            "cross-rule finding in `{}` fixture: {found:?}",
            rule.name
        );
        for d in &found {
            assert!(d.line >= 1 && d.col >= 1, "positions are 1-based: {d:?}");
            assert!(!d.snippet.is_empty(), "snippet captured: {d:?}");
        }
    }
}

#[test]
fn every_rule_has_a_clean_fixture() {
    for rule in RULES {
        let found = run_fixture(rule.name, "clean");
        assert!(
            found.is_empty(),
            "clean fixture for `{}` fired: {found:?}",
            rule.name
        );
    }
}

/// The regression class that motivated the lexer: rule needles inside
/// string literals and block comments must never fire (the line-based
/// pass tripped on all three of these).
#[test]
fn string_and_comment_lookalikes_never_fire() {
    let cases: [(&'static str, &str); 5] = [
        (
            "kernel-no-panic",
            "fn f() -> u32 { let s = \"x.unwrap()\"; s.len() as u32 }\n",
        ),
        (
            "kernel-no-panic",
            "/* panic!(\"no\") */ fn f() -> u32 { 0 }\n",
        ),
        (
            "float-eq",
            "fn f(x: f64) -> bool { let d = \"x == 1.0\"; !d.is_empty() && x < 1.0 }\n",
        ),
        (
            "consume-completeness",
            "fn f() -> usize { \"contains(q, g)\".len() }\n",
        ),
        (
            "consume-completeness",
            "// contains(q, g) in a comment\nfn f() {}\n",
        ),
    ];
    for (rule, src) in cases {
        let found = run_source(rule, scoped_rel(rule), src.to_string());
        assert!(
            found.is_empty(),
            "[{rule}] fired on lookalike: {found:?}\nsource: {src}"
        );
    }
}

/// A violation *after* a string containing `//` must still fire — the
/// old pass lost the rest of the line after a stripped fake comment.
#[test]
fn violation_after_comment_lookalike_string_still_fires() {
    let src = "fn f(x: Option<u32>) -> u32 { let s = \"// fake\"; s.len() as u32 + x.unwrap() }\n";
    let found = run_source(
        "kernel-no-panic",
        scoped_rel("kernel-no-panic"),
        src.to_string(),
    );
    assert_eq!(found.len(), 1, "exactly the real unwrap: {found:?}");
    assert_eq!(found[0].suppressed, Suppression::None);
}

#[test]
fn inline_allow_suppresses_but_is_recorded() {
    let src =
        "fn f(x: Option<u32>) -> u32 {\n    // xtask-allow: kernel-no-panic\n    x.unwrap()\n}\n";
    let found = run_source(
        "kernel-no-panic",
        scoped_rel("kernel-no-panic"),
        src.to_string(),
    );
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].suppressed, Suppression::Allowed);

    let wrong_rule =
        "fn f(x: Option<u32>) -> u32 {\n    // xtask-allow: float-eq\n    x.unwrap()\n}\n";
    let found = run_source(
        "kernel-no-panic",
        scoped_rel("kernel-no-panic"),
        wrong_rule.to_string(),
    );
    assert_eq!(
        found[0].suppressed,
        Suppression::None,
        "allow must name the rule"
    );
}

#[test]
fn out_of_scope_paths_are_not_checked() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let found = run_source(
        "kernel-no-panic",
        "crates/eval/src/basic.rs",
        src.to_string(),
    );
    assert!(
        found.is_empty(),
        "kernel rule outside kernel files: {found:?}"
    );

    let cast = "fn f(i: u64) -> u32 { i as u32 }\n";
    let found = run_source(
        "cast-truncation",
        "crates/cluster/src/kmeans.rs",
        cast.to_string(),
    );
    assert!(
        found.is_empty(),
        "cast rule outside kernel/index files: {found:?}"
    );
}
