fn lookalike() -> &'static str {
    "/// a doc comment inside a string is not documentation"
}

pub fn undocumented() -> u32 {
    lookalike().len() as u32
}
