//! Clean: every public item is documented one way or another.

/// Line-documented.
pub fn documented() -> u32 {
    1
}

/** Block-documented. */
pub struct AlsoDocumented;

#[doc = "Attribute-documented."]
pub const X: u32 = 1;

/// Documented despite the attribute stack in between.
#[allow(dead_code)]
#[inline]
pub fn stacked() -> u32 {
    2
}

// `pub fn` inside a string must not register as an item:
fn helper() -> &'static str {
    "pub fn not_an_item() {}"
}

pub(crate) fn crate_internal() -> &'static str {
    helper()
}
