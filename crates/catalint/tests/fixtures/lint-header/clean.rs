// Lint policy: see [workspace.lints] in the root Cargo.toml.

//! A crate root carrying the marker line.

fn nothing() {}
