//! A crate root without the lint-policy marker line.

fn nothing() {}
