//! Clean: comparators go through `total_cmp` (or are integer `cmp`).
fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

fn best(xs: &[(u32, f64)]) -> Option<&(u32, f64)> {
    xs.iter().max_by(|a, b| a.1.total_cmp(&b.1))
}

fn by_id(xs: &mut [(u32, f64)]) {
    xs.sort_by(|a, b| a.0.cmp(&b.0));
}
