fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

fn best(xs: &[(u32, f64)]) -> Option<&(u32, f64)> {
    xs.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
}
