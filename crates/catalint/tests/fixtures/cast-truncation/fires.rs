fn narrow(i: u64) -> u32 {
    let s = "i as u8 in a string";
    let _ = s;
    i as u32
}
