//! Clean: widening conversions, `From` impls, and float casts only.
// "as u32" in a comment must not fire
fn widen(i: u32) -> u64 {
    u64::from(i)
}

fn to_float(i: u32) -> f64 {
    f64::from(i)
}

fn ratio(n: u64, d: u64) -> f64 {
    n as f64 / d as f64
}
