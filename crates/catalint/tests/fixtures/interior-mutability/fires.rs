use std::sync::Mutex;

static GLOBAL: Mutex<u32> = Mutex::new(0);

fn bump() {
    if let Ok(mut g) = GLOBAL.lock() {
        *g += 1;
    }
}
