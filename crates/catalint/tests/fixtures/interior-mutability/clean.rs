//! Clean: `'static` lifetimes are not `static` items, and type names in
//! comments/strings are invisible to the lexer. Mutex in a comment.
fn local(s: &'static str) -> usize {
    let msg = "static GLOBAL: Mutex<u32> = Mutex::new(0);";
    s.len() + msg.len()
}

fn borrowed<T: Send + 'static>(t: T) -> T {
    t
}
