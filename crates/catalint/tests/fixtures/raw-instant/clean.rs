//! Clean: `Instant::now()` appears only in a comment and a string.
// Instant::now() must go through catapult_obs
fn stamp() -> usize {
    let s = "Instant::now()";
    s.len()
}
