fn stamp() -> std::time::Instant {
    let s = "Instant::now() in a string";
    let _ = s;
    std::time::Instant::now()
}
