use std::sync::Mutex;

fn transfer(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let x = a.lock().unwrap_or_else(|e| e.into_inner());
    let y = b.lock().unwrap_or_else(|e| e.into_inner());
    *x + *y
}
