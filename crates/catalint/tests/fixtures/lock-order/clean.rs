//! Clean: at most one lock per fn body; `.lock()` pairs appear only in
//! comments. a.lock(); b.lock();
use std::sync::Mutex;

fn read_a(a: &Mutex<u32>) -> u32 {
    *a.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_b(b: &Mutex<u32>) -> u32 {
    let s = "a.lock(); b.lock();";
    *b.lock().unwrap_or_else(|e| e.into_inner()) + s.len() as u32
}
