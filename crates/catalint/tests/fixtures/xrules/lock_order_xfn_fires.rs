//@ file: src/locks.rs
use std::sync::Mutex;

pub static REGISTRY: Mutex<u32> = Mutex::new(0);
pub static JOURNAL: Mutex<u32> = Mutex::new(0);

/// Holds REGISTRY, then calls a helper that takes JOURNAL: orders
/// REGISTRY before JOURNAL.
pub fn flush() {
    let g = REGISTRY.lock();
    append();
    drop(g);
}

fn append() {
    let j = JOURNAL.lock();
    drop(j);
}

/// Holds JOURNAL, then calls a helper that takes REGISTRY: the opposite
/// order, visible only across function boundaries.
pub fn rotate() {
    let j = JOURNAL.lock();
    reindex();
    drop(j);
}

fn reindex() {
    let g = REGISTRY.lock();
    drop(g);
}

/// Re-entrant: holds REGISTRY and calls back into a path that acquires
/// REGISTRY again.
pub fn compact() {
    let g = REGISTRY.lock();
    reindex();
    drop(g);
}
