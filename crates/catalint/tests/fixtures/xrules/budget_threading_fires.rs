//@ file: crates/graph/src/mcs.rs
pub struct SearchBudget {
    pub nodes: u64,
}

/// Bare convenience: pins an unbounded budget internally, with no way
/// for the caller to pass one.
pub fn mcs_similarity(a: u32, b: u32) -> f64 {
    search(a, b, &SearchBudget { nodes: u64::MAX })
}

/// Budgeted entry point.
pub fn mcs_with_budget(a: u32, b: u32, budget: &SearchBudget) -> f64 {
    search(a, b, budget)
}

fn search(a: u32, b: u32, budget: &SearchBudget) -> f64 {
    let _ = budget.nodes;
    0.0
}

//@ file: crates/eval/src/run.rs
use catapult_graph::mcs::{mcs_similarity, mcs_with_budget};

/// Fires (bare): enters the unbudgetable kernel convenience.
pub fn score_unbounded(a: u32, b: u32) -> f64 {
    mcs_similarity(a, b)
}

/// Fires (unthreaded): reaches the budgeted kernel but neither receives
/// nor constructs any budget-carrying value.
pub fn score_raw_cap(a: u32, b: u32, cap: u64) -> f64 {
    let _ = cap;
    mcs_with_budget(a, b, make(cap))
}

fn make(cap: u64) -> f64 {
    cap as f64
}
