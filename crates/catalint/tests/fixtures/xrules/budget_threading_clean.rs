//@ file: crates/graph/src/mcs.rs
pub struct SearchBudget {
    pub nodes: u64,
}

pub fn mcs_with_budget(a: u32, b: u32, budget: &SearchBudget) -> f64 {
    search(a, b, budget.nodes)
}

fn search(a: u32, b: u32, cap: u64) -> f64 {
    0.0
}

/// Polynomial helper: free pub fn with no budgeted search underneath,
/// so calling it bare is fine (the `ged_lower_bound` shape).
pub fn mcs_size_bound(a: u32, b: u32) -> u32 {
    a.min(b)
}

//@ file: crates/eval/src/run.rs
use catapult_graph::mcs::{mcs_size_bound, mcs_with_budget, SearchBudget};

/// Clean: receives the budget in its signature and threads it through.
pub fn score(a: u32, b: u32, budget: &SearchBudget) -> f64 {
    mcs_with_budget(a, b, budget)
}

/// Clean: constructs a budget locally, so callers chose this cap.
pub fn score_default(a: u32, b: u32) -> f64 {
    let budget = SearchBudget { nodes: 10_000 };
    mcs_with_budget(a, b, &budget)
}

/// Clean: a polynomial kernel helper needs no budget.
pub fn prune(a: u32, b: u32) -> u32 {
    mcs_size_bound(a, b)
}
