//@ file: crates/graph/src/helpers.rs
/// Total: no panic anywhere.
pub fn pick(x: Option<u32>) -> Option<u32> {
    x
}

pub fn mid(x: Option<u32>) -> Option<u32> {
    pick(x)
}

//@ file: crates/graph/src/iso.rs
use crate::helpers::mid;

/// Kernel fn whose helper chain degrades instead of panicking.
pub fn find_embedding(x: Option<u32>) -> Option<u32> {
    mid(x)
}
