//@ file: crates/graph/src/ged.rs
pub struct Completeness {
    pub exact: bool,
}

pub struct GedResult {
    pub distance: u32,
    pub completeness: Completeness,
}

pub fn ged_compute(a: u32) -> GedResult {
    make(a)
}

fn make(a: u32) -> GedResult {
    loop {}
}

//@ file: crates/eval/src/measures.rs
use catapult_graph::ged::ged_compute;

/// Clean: the tag is read in the same statement.
pub fn distance_checked(a: u32) -> u32 {
    let r = ged_compute(a);
    if r.completeness.exact {
        r.distance
    } else {
        0
    }
}

/// Clean: tail expression — the tagged value propagates to the caller.
pub fn forward(a: u32) -> GedResult {
    ged_compute(a)
}

/// Clean: explicit return keeps the tag.
pub fn forward_return(a: u32) -> GedResult {
    return ged_compute(a);
}
