//@ file: crates/graph/src/ged.rs
pub struct Completeness {
    pub exact: bool,
}

/// Tagged result type (picked up by the struct-embedding fixpoint).
pub struct GedResult {
    pub distance: u32,
    pub completeness: Completeness,
}

pub fn ged_compute(a: u32) -> GedResult {
    make(a)
}

fn make(a: u32) -> GedResult {
    loop {}
}

//@ file: crates/eval/src/measures.rs
use catapult_graph::ged::ged_compute;

/// Fires: the tagged result (and its tag) is discarded outright.
pub fn warm_cache(a: u32) {
    ged_compute(a);
}

/// Fires: the result is bound to `_`.
pub fn warm_quietly(a: u32) {
    let _ = ged_compute(a);
}

/// Fires: only `.distance` is projected out; the tag is dropped.
pub fn total_distance(a: u32, b: u32) -> u32 {
    let mut sum = 0;
    sum += ged_compute(a).distance;
    sum += ged_compute(b).distance;
    sum
}
