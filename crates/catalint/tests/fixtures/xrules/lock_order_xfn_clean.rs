//@ file: src/locks.rs
use std::sync::Mutex;

pub static REGISTRY: Mutex<u32> = Mutex::new(0);
pub static JOURNAL: Mutex<u32> = Mutex::new(0);

/// Same order everywhere: REGISTRY strictly before JOURNAL.
pub fn flush() {
    let g = REGISTRY.lock();
    append();
    drop(g);
}

fn append() {
    let j = JOURNAL.lock();
    drop(j);
}

/// Both locks inline, same global order.
pub fn snapshot() {
    let g = REGISTRY.lock();
    let j = JOURNAL.lock();
    drop(j);
    drop(g);
}

/// Takes JOURNAL alone — no ordering edge at all.
pub fn tail() {
    let j = JOURNAL.lock();
    drop(j);
}
