//@ file: crates/graph/src/helpers.rs
/// Panics directly.
pub fn pick(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Reaches the panic one hop down (same module resolution).
pub fn mid(x: Option<u32>) -> u32 {
    pick(x)
}

//@ file: crates/graph/src/iso.rs
use crate::helpers::mid;

/// Kernel fn transitively reaching `.unwrap()` through a helper chain
/// the per-file kernel rule cannot see.
pub fn find_embedding(x: Option<u32>) -> u32 {
    mid(x)
}
