// The comparison after the string is real and must fire.
pub fn score_gate(x: f64) -> bool {
    let s = "// 1.0 == 1.0 in a string";
    !s.is_empty() && x == 1.0
}
