//! Clean: float-equality lookalikes in comments and strings, plus the
//! sanctioned epsilon comparison.
// a comment saying x == 1.0 must not fire
pub fn score_gate(x: f64) -> bool {
    let doc = "x == 1.0";
    !doc.is_empty() && (x - 1.0).abs() < 1e-9
}

pub fn integer_eq(n: u32) -> bool {
    n == 1
}
