//@ file: crates/ckpt/src/wire.rs
fn seed_salt() -> u8 {
    let t = std::time::Instant::now();
    (t.elapsed().subsec_nanos() & 0xff) as u8
}

pub fn encode_state(out: &mut Vec<u8>) {
    let salt = seed_salt();
    out.push(salt);
}
