//@ file: crates/core/src/chunks.rs
pub struct PipelineReport {
    pub chunks: usize,
}

pub fn plan_chunks(items: usize, workers: usize) -> PipelineReport {
    PipelineReport {
        chunks: items / workers.max(1),
    }
}
