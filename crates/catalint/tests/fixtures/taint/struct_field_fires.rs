//@ file: crates/core/src/bundle.rs
pub struct SelectionResult {
    pub patterns: Vec<u32>,
}

pub struct Bundle {
    pub sel: SelectionResult,
    pub note: String,
}
//@ file: crates/core/src/deep.rs
pub fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

pub fn build_note() -> String {
    format!("run at {}", stamp())
}
//@ file: crates/core/src/pipeline.rs
pub fn bundle_up(patterns: Vec<u32>) -> Bundle {
    Bundle {
        sel: SelectionResult { patterns },
        note: build_note(),
    }
}
