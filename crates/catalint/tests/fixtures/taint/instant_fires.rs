//@ file: crates/core/src/select.rs
pub struct SelectionResult {
    pub patterns: Vec<u32>,
    pub elapsed_ms: u64,
}

pub fn select_patterns(budget_ms: u64) -> SelectionResult {
    let t0 = std::time::Instant::now();
    let patterns = vec![budget_ms as u32];
    SelectionResult {
        patterns,
        elapsed_ms: t0.elapsed().as_millis() as u64,
    }
}
