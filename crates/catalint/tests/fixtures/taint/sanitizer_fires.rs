//@ file: crates/core/src/histo.rs
use std::collections::HashMap;

pub fn label_counts(labels: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (l, c) in counts.iter() {
        out.push((*l, *c));
    }
    out
}
//@ file: crates/core/src/report.rs
pub struct PipelineReport {
    pub counts: Vec<(u32, usize)>,
}

pub fn summarize(labels: &[u32]) -> PipelineReport {
    let counts = label_counts(labels);
    PipelineReport { counts }
}
