//@ file: crates/core/src/freq.rs
use std::collections::HashMap;

pub fn edge_frequencies(edges: &[u32]) -> Vec<(u32, usize)> {
    let mut freq: HashMap<u32, usize> = HashMap::new();
    for &e in edges {
        *freq.entry(e).or_insert(0) += 1;
    }
    let mut out: Vec<(u32, usize)> = freq.iter().map(|(e, c)| (*e, *c)).collect();
    out.sort_unstable();
    out
}
//@ file: crates/core/src/select.rs
pub struct SelectionResult {
    pub ranked: Vec<(u32, usize)>,
}

pub fn rank_edges(edges: &[u32]) -> SelectionResult {
    SelectionResult {
        ranked: edge_frequencies(edges),
    }
}
