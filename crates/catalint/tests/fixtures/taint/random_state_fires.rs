//@ file: crates/core/src/keyed.rs
pub struct SelectionResult {
    pub patterns: Vec<u32>,
}

pub fn keyed_patterns(xs: &[u32]) -> SelectionResult {
    let state = std::collections::hash_map::RandomState::new();
    let mut patterns: Vec<u32> = xs.to_vec();
    patterns.dedup_by_key(|x| {
        use std::hash::{BuildHasher, Hasher};
        let mut h = state.build_hasher();
        h.write_u32(*x);
        h.finish()
    });
    SelectionResult { patterns }
}
