//@ file: crates/core/src/sample.rs
pub struct SelectionResult {
    pub picks: Vec<u32>,
}

fn pick_seed() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn sample_patterns(n: u32) -> SelectionResult {
    let seed = pick_seed();
    let picks = (0..n).map(|i| i ^ (seed as u32)).collect();
    SelectionResult { picks }
}
