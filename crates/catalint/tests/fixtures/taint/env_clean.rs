//@ file: crates/core/src/manifest.rs
pub struct RunManifest {
    pub threads: String,
}

pub fn build_manifest(threads: usize) -> RunManifest {
    RunManifest {
        threads: threads.to_string(),
    }
}
//@ file: shims/rayon/src/lib.rs
pub fn configured_threads() -> Option<String> {
    std::env::var("CATAPULT_THREADS").ok()
}
