//@ file: crates/cluster/src/collect.rs
use std::sync::Mutex;

pub struct SelectionResult {
    pub order: Vec<u32>,
}

pub fn drain_results(shared: &Mutex<Vec<u32>>) -> SelectionResult {
    let mut guard = shared.lock().unwrap();
    let order = std::mem::take(&mut *guard);
    SelectionResult { order }
}
