//@ file: crates/core/src/manifest.rs
pub struct RunManifest {
    pub threads: String,
}

pub fn build_manifest() -> RunManifest {
    let threads = std::env::var("CATAPULT_THREADS").unwrap_or_default();
    RunManifest { threads }
}
