//@ file: crates/ckpt/src/wire.rs
pub fn encode_state(out: &mut Vec<u8>, salt: u8) {
    out.push(salt);
}

pub fn decode_state(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied()
}
