//@ file: crates/core/src/sample.rs
pub struct SelectionResult {
    pub picks: Vec<u32>,
}

fn pick_seed(run_seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(run_seed);
    rng.next_u64()
}

pub fn sample_patterns(n: u32, run_seed: u64) -> SelectionResult {
    let seed = pick_seed(run_seed);
    let picks = (0..n).map(|i| i ^ (seed as u32)).collect();
    SelectionResult { picks }
}
