//@ file: crates/core/src/bundle.rs
pub struct SelectionResult {
    pub patterns: Vec<u32>,
}

pub struct Bundle {
    pub sel: SelectionResult,
    pub note: String,
}
//@ file: crates/core/src/deep.rs
pub fn build_note(run_seed: u64) -> String {
    format!("run seed {run_seed}")
}
//@ file: crates/core/src/pipeline.rs
pub fn bundle_up(patterns: Vec<u32>, run_seed: u64) -> Bundle {
    Bundle {
        sel: SelectionResult { patterns },
        note: build_note(run_seed),
    }
}
