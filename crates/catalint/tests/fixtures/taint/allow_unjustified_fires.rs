//@ file: crates/core/src/progress.rs
pub fn now_ms() -> u64 {
    // xtask-allow: taint
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
