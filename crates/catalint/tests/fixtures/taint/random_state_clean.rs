//@ file: crates/core/src/keyed.rs
pub struct SelectionResult {
    pub patterns: Vec<u32>,
}

pub fn keyed_patterns(xs: &[u32]) -> SelectionResult {
    let set: std::collections::BTreeSet<u32> = xs.iter().copied().collect();
    SelectionResult {
        patterns: set.into_iter().collect(),
    }
}
