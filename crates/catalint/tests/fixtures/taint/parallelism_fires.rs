//@ file: crates/core/src/chunks.rs
pub struct PipelineReport {
    pub chunks: usize,
}

pub fn plan_chunks(items: usize) -> PipelineReport {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    PipelineReport {
        chunks: items / workers,
    }
}
