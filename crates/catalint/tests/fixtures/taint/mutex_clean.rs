//@ file: crates/cluster/src/collect.rs
use std::sync::Mutex;

pub struct SelectionResult {
    pub order: Vec<u32>,
}

pub fn drain_results(shared: &Mutex<Vec<u32>>) -> SelectionResult {
    let mut order = shared.lock().unwrap().clone();
    order.sort_unstable();
    SelectionResult { order }
}
