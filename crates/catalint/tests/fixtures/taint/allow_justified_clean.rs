//@ file: crates/core/src/progress.rs
pub struct SelectionResult {
    pub patterns: Vec<u32>,
}

pub fn now_ms() -> u64 {
    // xtask-allow: taint -- wall-clock feeds the progress meter only; the catalog never sees it
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}

pub fn select_with_progress(patterns: Vec<u32>) -> SelectionResult {
    let _heartbeat = now_ms();
    SelectionResult { patterns }
}
