//@ file: crates/core/src/select.rs
pub struct SelectionResult {
    pub patterns: Vec<u32>,
    pub budget_ms: u64,
}

pub fn select_patterns(budget_ms: u64) -> SelectionResult {
    let patterns = vec![budget_ms as u32];
    SelectionResult {
        patterns,
        budget_ms,
    }
}
