//! Clean: spawn lookalikes in comments and strings only.
// thread::spawn(|| …) mentioned in a comment
fn launch() -> usize {
    let s = "thread::spawn(|| 1)";
    s.len()
}
