fn launch() -> u32 {
    let s = "thread::spawn in a string";
    let h = std::thread::spawn(move || s.len() as u32);
    h.join().unwrap_or(0)
}
