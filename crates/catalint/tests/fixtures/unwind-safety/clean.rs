//! Clean: unwind handling appears only in comments, strings, and tests.
// catch_unwind belongs in shims/rayon and crates/ckpt
fn f() -> usize {
    let s = "std::panic::catch_unwind";
    s.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_isolate_panics() {
        let r = std::panic::catch_unwind(|| 1);
        assert!(r.is_ok());
    }
}
