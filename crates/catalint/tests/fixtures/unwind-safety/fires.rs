fn shielded() -> bool {
    let s = "catch_unwind in a string never fires";
    let _ = s;
    std::panic::catch_unwind(|| ()).is_ok()
}
