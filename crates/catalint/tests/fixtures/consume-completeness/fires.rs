// The free-function call after the string is real and must fire.
fn pipeline(q: &str, g: &str) -> bool {
    let s = "// contains(in a string)";
    !s.is_empty() && contains(q, g)
}

fn contains(_q: &str, _g: &str) -> bool {
    true
}
