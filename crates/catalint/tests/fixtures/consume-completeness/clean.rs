//! Clean: method calls, definitions, `_tagged` variants, and lookalikes
//! in strings/comments must not fire.
// are_isomorphic(a, b) in a comment is fine
fn pipeline(v: &[u32]) -> bool {
    let s = "are_isomorphic(a, b); find_embedding(q, g)";
    v.contains(&1) && !s.is_empty()
}

fn contains_tagged(_q: &str, _g: &str) -> bool {
    true
}

fn uses_tagged(q: &str, g: &str) -> bool {
    contains_tagged(q, g)
}
