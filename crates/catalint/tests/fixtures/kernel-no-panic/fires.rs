// A real violation that follows a string containing `//` — the old
// line-based pass lost track of the line here; the lexer must not.
fn kernel(x: Option<u32>) -> u32 {
    let s = "// not a comment";
    let v = x.unwrap();
    if v > 10 && s.is_empty() {
        panic!("boom");
    }
    v
}
