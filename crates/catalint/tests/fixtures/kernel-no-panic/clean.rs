//! Clean: panic/unwrap lookalikes live only in strings, comments, and
//! `#[cfg(test)]` code — none of them may fire.
// a comment mentioning x.unwrap() and panic!("no") must not fire
/* block comment: x.unwrap(); panic!("no");
   /* nested block comment: .unwrap() */ still inside */
fn kernel(x: Option<u32>) -> u32 {
    let msg = "call .unwrap() or panic!(now)";
    let raw = r#"panic!("in a raw string").unwrap()"#;
    let _ = (msg, raw);
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = Some(1).unwrap();
        if v != 1 {
            panic!("tests may panic");
        }
    }
}
