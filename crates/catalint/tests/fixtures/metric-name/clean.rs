//! Clean: well-formed metric names and lookalikes in strings.
fn record(rec: &mut Recorder) {
    rec.counter("mining.iso.calls").incr(1);
    rec.histogram("scoring.greedy.probes_per_call").record(2);
    flight::event("flight.span.open", "mining", 1);
    catapult_obs::warn("the blessed stderr path");
    let doc = ".counter(\"bad\")"; // a string, not a call
    let msg = "eprintln!(\"fake\")"; // a string, not a macro call
    let _ = (doc, msg);
}

struct Recorder;
