//! Clean: well-formed metric names and lookalikes in strings.
fn record(rec: &mut Recorder) {
    rec.counter("mining.iso.calls").incr(1);
    rec.histogram("scoring.greedy.probes_per_call").record(2);
    let doc = ".counter(\"bad\")"; // a string, not a call
    let _ = doc;
}

struct Recorder;
