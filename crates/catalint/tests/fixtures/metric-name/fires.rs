fn record(rec: &mut Recorder) {
    rec.counter("badname").incr(1);
    rec.histogram("Two.Part").record(2);
}

struct Recorder;
