fn record(rec: &mut Recorder) {
    rec.counter("badname").incr(1);
    rec.histogram("Two.Part").record(2);
    flight::event("badflightname", "", 0);
    eprintln!("33% done"); // raw progress output belongs to the meter
}

struct Recorder;
