use std::collections::HashMap;

fn leak_order(m: &HashMap<String, u32>) -> Vec<String> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(k.clone());
    }
    out
}

fn leak_chain(scores: HashMap<u32, f64>) -> f64 {
    scores.values().fold(0.0, |acc, v| acc * 0.5 + v)
}
