//! Clean: every hash iteration feeds an order-insensitive sink, an
//! ordering collect, or an immediate sort.
use std::collections::{BTreeMap, HashMap};

fn sorted_view(m: &HashMap<String, u32>) -> BTreeMap<String, u32> {
    m.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<_, _>>()
}

fn collect_then_sort(m: &HashMap<String, u32>) -> Vec<String> {
    let mut keys: Vec<String> = m.keys().cloned().collect();
    keys.sort();
    keys
}

fn membership(m: &HashMap<String, u32>) -> bool {
    m.keys().any(|k| k.is_empty())
}

fn size(m: &HashMap<String, u32>) -> usize {
    m.iter().count()
}
