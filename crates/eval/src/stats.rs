//! Small statistics helpers: Kendall rank correlation (Exp 10), means,
//! standard deviations.

/// Kendall rank correlation coefficient (τ-b, tie-corrected) between two
/// equal-length score sequences.
///
/// Exp 10 correlates the "actual" human ranking of patterns with the
/// rankings induced by the candidate cognitive-load measures F1–F3.
/// Returns a value in [-1, 1]; 0 for degenerate inputs (all ties).
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sequences must align");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i].total_cmp(&a[j]);
            let db = b[i].total_cmp(&b[j]);
            use std::cmp::Ordering::*;
            match (da, db) {
                (Equal, Equal) => {}
                (Equal, _) => ties_a += 1,
                (_, Equal) => ties_b += 1,
                (x, y) if x == y => concordant += 1,
                _ => discordant += 1,
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than 2 values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Maximum; 0 for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_disagreement() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((kendall_tau(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_are_corrected() {
        let a = [1.0, 1.0, 2.0];
        let b = [1.0, 2.0, 3.0];
        let tau = kendall_tau(&a, &b);
        assert!(tau > 0.0 && tau < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 0.0);
        assert_eq!(kendall_tau(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn partial_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 3.0, 2.0, 4.0]; // one swap: 5 concordant, 1 discordant
        assert!((kendall_tau(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(max(&[1.0, 7.0, 3.0]), 7.0);
    }
}
