//! # catapult-eval
//!
//! Evaluation machinery reproducing the paper's §6 measures:
//!
//! * [`steps`] — the visual query formulation step model (`step_total`,
//!   `step_P` via greedy MWIS over pattern embeddings, μ);
//! * [`mwis`] — greedy maximum weighted independent set [33];
//! * [`measures`] — scov/lcov of pattern sets, MP, μ variants, diversity
//!   and cognitive-load summaries;
//! * [`gui`] — the simulated PubChem / eMolecules pattern panels (Exp 3);
//! * [`userstudy`] — the simulated user study (Exp 4);
//! * [`cogload`] — the simulated Exp 10 ranking study with Kendall τ;
//! * [`session`] — an executable GUI-session model that replays
//!   formulations as canvas actions (validating the step accounting);
//! * [`basic`] — top-m basic patterns (labeled edges / 2-paths, §3.2
//!   remark);
//! * [`stats`] — Kendall τ and summary statistics.

// Lint policy: see [workspace.lints] in the root Cargo.toml.
#![warn(missing_docs)]
// Unit tests are allowed the ergonomic panicking shortcuts the library
// itself forbids; the policy targets production code paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod basic;
pub mod cogload;
pub mod gui;
pub mod measures;
pub mod mwis;
pub mod session;
pub mod stats;
pub mod steps;
pub mod userstudy;

pub use measures::WorkloadEvaluation;
pub use steps::{
    formulate, formulate_unlabeled, formulate_unlabeled_with, step_total, Formulation, RelabelModel,
};
