//! Greedy maximum weighted independent set (§6.1, [33]).
//!
//! Finding the collection of non-overlapping pattern embeddings that
//! maximally covers a query is modelled as MWIS over embeddings (vertices)
//! with vertex-overlap conflicts (edges) and weight = number of covered
//! query vertices. We use the GWMIN greedy of Sakai et al. [33]: repeatedly
//! take the vertex maximizing `w(v) / (deg(v) + 1)` and delete its closed
//! neighborhood; GWMIN guarantees a `Σ w(v)/(deg(v)+1)` lower bound.

/// An MWIS instance: `weights[i]` and a symmetric conflict list per vertex.
#[derive(Clone, Debug)]
pub struct ConflictGraph {
    /// Vertex weights.
    pub weights: Vec<f64>,
    /// Adjacency (conflicts); must be symmetric.
    pub conflicts: Vec<Vec<usize>>,
}

impl ConflictGraph {
    /// Build an instance from weights and symmetric conflict pairs.
    pub fn new(weights: Vec<f64>, pairs: &[(usize, usize)]) -> Self {
        let mut conflicts = vec![Vec::new(); weights.len()];
        for &(a, b) in pairs {
            conflicts[a].push(b);
            conflicts[b].push(a);
        }
        ConflictGraph { weights, conflicts }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// GWMIN greedy MWIS. Returns selected vertex indices (ascending).
pub fn greedy_mwis(g: &ConflictGraph) -> Vec<usize> {
    let n = g.len();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = g.conflicts.iter().map(Vec::len).collect();
    let mut selected = Vec::new();
    loop {
        // argmax w(v) / (deg(v) + 1) over alive vertices; deterministic
        // tie-break on index.
        let mut best: Option<(f64, usize)> = None;
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            let score = g.weights[v] / (degree[v] + 1) as f64;
            match best {
                Some((s, _)) if s >= score => {}
                _ => best = Some((score, v)),
            }
        }
        let Some((_, v)) = best else { break };
        selected.push(v);
        alive[v] = false;
        for &u in &g.conflicts[v] {
            if alive[u] {
                alive[u] = false;
                for &w in &g.conflicts[u] {
                    if alive[w] {
                        degree[w] = degree[w].saturating_sub(1);
                    }
                }
            }
        }
    }
    selected.sort_unstable();
    selected
}

/// Verify a vertex set is independent (no conflict edge inside). Used by
/// tests and debug assertions.
pub fn is_independent(g: &ConflictGraph, set: &[usize]) -> bool {
    let in_set: std::collections::HashSet<usize> = set.iter().copied().collect();
    set.iter()
        .all(|&v| g.conflicts[v].iter().all(|u| !in_set.contains(u)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_vertices_all_selected() {
        let g = ConflictGraph::new(vec![1.0, 2.0, 3.0], &[]);
        let s = greedy_mwis(&g);
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn conflict_pair_takes_heavier() {
        let g = ConflictGraph::new(vec![1.0, 5.0], &[(0, 1)]);
        let s = greedy_mwis(&g);
        assert_eq!(s, vec![1]);
        assert!(is_independent(&g, &s));
    }

    #[test]
    fn path_conflicts() {
        // Path 0-1-2 with weights 1, 1.5, 1: ends beat the middle
        // (0 and 2 together weigh 2).
        let g = ConflictGraph::new(vec![1.0, 1.5, 1.0], &[(0, 1), (1, 2)]);
        let s = greedy_mwis(&g);
        assert!(is_independent(&g, &s));
        let w: f64 = s.iter().map(|&v| g.weights[v]).sum();
        assert!((w - 2.0).abs() < 1e-12, "selected {s:?} weight {w}");
    }

    #[test]
    fn gwmin_bound_holds() {
        // Weight of the greedy solution ≥ Σ w(v)/(deg(v)+1).
        let g = ConflictGraph::new(
            vec![3.0, 2.0, 2.0, 4.0, 1.0],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
        );
        let s = greedy_mwis(&g);
        assert!(is_independent(&g, &s));
        let bound: f64 = (0..g.len())
            .map(|v| g.weights[v] / (g.conflicts[v].len() + 1) as f64)
            .sum();
        let w: f64 = s.iter().map(|&v| g.weights[v]).sum();
        assert!(w >= bound - 1e-9, "w {w} < bound {bound}");
    }

    #[test]
    fn empty_instance() {
        let g = ConflictGraph::new(vec![], &[]);
        assert!(greedy_mwis(&g).is_empty());
    }
}
