//! The visual query formulation step model (§6.1).
//!
//! * Edge-at-a-time construction of a query `Q` takes
//!   `step_total = |V_Q| + |E_Q|` steps (each vertex or edge addition is
//!   one step).
//! * With a canned pattern set `P`, the best formulation uses a maximal
//!   collection `P_Q` of non-overlapping pattern embeddings (a bag —
//!   a pattern may be used several times), found as a greedy maximum
//!   weighted independent set over embeddings [33] with weight = number of
//!   covered vertices. Then
//!   `step_P = |P_Q| + |V_Q \ V_{P_Q}| + |E_Q \ E_{P_Q}|`.
//! * The reduction ratio is `μ = (step_total − step_P) / step_total`.
//!
//! For *unlabeled* GUI patterns (PubChem/eMolecules, Exp 3) the paper
//! relabels queries to a common label before matching and then charges one
//! extra step per pattern vertex for relabeling (the optimistic 1-step
//! labelling model): `step_P(gui) += |V_Pl|`.

use crate::mwis::{greedy_mwis, ConflictGraph};
use catapult_graph::iso::embeddings;
use catapult_graph::{Graph, Label, VertexId};

/// Cap on embeddings enumerated per pattern (dedup happens afterwards);
/// prevents pathological blowup on symmetric patterns.
pub const DEFAULT_EMBEDDING_CAP: usize = 400;

/// One usable (deduplicated) pattern occurrence in the query.
#[derive(Clone, Debug)]
pub struct Occurrence {
    /// Index of the pattern in the pattern set.
    pub pattern: usize,
    /// Covered query vertices (sorted).
    pub vertices: Vec<VertexId>,
    /// Covered query edge ids (sorted).
    pub edges: Vec<u32>,
}

/// Result of formulating one query with a pattern set.
#[derive(Clone, Debug)]
pub struct Formulation {
    /// The chosen non-overlapping occurrences (the bag `P_Q`).
    pub used: Vec<Occurrence>,
    /// `step_P` under the §6.1 model.
    pub steps: usize,
    /// `step_total` for the same query.
    pub steps_edge_at_a_time: usize,
}

impl Formulation {
    /// Reduction ratio `μ = (step_total − step_P) / step_total`.
    pub fn reduction_ratio(&self) -> f64 {
        if self.steps_edge_at_a_time == 0 {
            return 0.0;
        }
        (self.steps_edge_at_a_time as f64 - self.steps as f64) / self.steps_edge_at_a_time as f64
    }

    /// Whether any canned pattern was usable at all.
    pub fn used_any_pattern(&self) -> bool {
        !self.used.is_empty()
    }
}

/// `step_total = |V_Q| + |E_Q|`.
pub fn step_total(q: &Graph) -> usize {
    q.vertex_count() + q.edge_count()
}

/// Enumerate deduplicated pattern occurrences in `q`.
///
/// Embeddings of one pattern that cover the same vertex set and edge set
/// (automorphic images) collapse to one occurrence.
pub fn occurrences(q: &Graph, patterns: &[Graph], cap: usize) -> Vec<Occurrence> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (pi, p) in patterns.iter().enumerate() {
        if p.edge_count() == 0 || p.edge_count() > q.edge_count() {
            continue;
        }
        // Occurrence mining for step accounting: a tripped enumeration
        // just misses some pattern placements, inflating step_P slightly
        // (conservative for the GUI-benefit claims of §6.1).
        // xtask-allow: consume-completeness, budget-threading
        for emb in embeddings(q, p, cap) {
            let mut vertices: Vec<VertexId> = emb.clone();
            vertices.sort_unstable();
            // `embeddings` yields genuine subgraph embeddings, so every
            // pattern edge has an image edge in the query.
            #[allow(clippy::expect_used)]
            let mut edges: Vec<u32> = p
                .edges()
                .map(|(_, e)| {
                    q.find_edge(emb[e.u.index()], emb[e.v.index()])
                        .expect("embedding preserves edges")
                        .0
                })
                .collect();
            edges.sort_unstable();
            edges.dedup();
            if seen.insert((pi, vertices.clone(), edges.clone())) {
                out.push(Occurrence {
                    pattern: pi,
                    vertices,
                    edges,
                });
            }
        }
    }
    out
}

/// Recover a concrete embedding (pattern-vertex → query-vertex) realizing
/// an [`Occurrence`]: the mapping whose vertex and edge footprints equal
/// the occurrence's. Used by [`crate::session::replay`] to bind dragged
/// pattern vertices to query vertices.
pub fn occurrence_embedding(q: &Graph, p: &Graph, occ: &Occurrence) -> Option<Vec<VertexId>> {
    let mut found = None;
    // Replay binding is best-effort: the occurrence was produced by the
    // same enumeration, so re-finding it under the same default cap can
    // only miss if the first pass already did — GUI replay degrades, no
    // metric is affected. xtask-allow: completeness-flow
    catapult_graph::iso::for_each_embedding(
        q,
        p,
        catapult_graph::iso::MatchOptions::default(),
        |emb| {
            let mut vs: Vec<VertexId> = emb.to_vec();
            vs.sort_unstable();
            if vs != occ.vertices {
                return std::ops::ControlFlow::Continue(());
            }
            let mut es: Vec<u32> = p
                .edges()
                .filter_map(|(_, e)| q.find_edge(emb[e.u.index()], emb[e.v.index()]))
                .map(|e| e.0)
                .collect();
            es.sort_unstable();
            es.dedup();
            if es == occ.edges {
                found = Some(emb.to_vec());
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        },
    );
    found
}

/// Formulate `q` with pattern set `patterns` under the §6.1 model.
pub fn formulate(q: &Graph, patterns: &[Graph], cap: usize) -> Formulation {
    let occs = occurrences(q, patterns, cap);
    let weights: Vec<f64> = occs.iter().map(|o| o.vertices.len() as f64).collect();
    // Conflicts: vertex overlap.
    let mut pairs = Vec::new();
    for i in 0..occs.len() {
        for j in (i + 1)..occs.len() {
            if overlaps(&occs[i].vertices, &occs[j].vertices) {
                pairs.push((i, j));
            }
        }
    }
    let chosen = greedy_mwis(&ConflictGraph::new(weights, &pairs));
    let used: Vec<Occurrence> = chosen.into_iter().map(|i| occs[i].clone()).collect();
    let covered_vertices: usize = used.iter().map(|o| o.vertices.len()).sum();
    let covered_edges: usize = used.iter().map(|o| o.edges.len()).sum();
    let steps =
        used.len() + (q.vertex_count() - covered_vertices) + (q.edge_count() - covered_edges);
    Formulation {
        used,
        steps,
        steps_edge_at_a_time: step_total(q),
    }
}

fn overlaps(a: &[VertexId], b: &[VertexId]) -> bool {
    // Both sorted.
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Relabel every vertex of `g` to `label` (the Exp 3 vertex-relabelling
/// preparation for unlabeled GUI patterns).
pub fn relabel_uniform(g: &Graph, label: Label) -> Graph {
    let labels = vec![label; g.vertex_count()];
    let edges: Vec<(u32, u32)> = g.edges().map(|(_, e)| (e.u.0, e.v.0)).collect();
    Graph::from_parts(&labels, &edges)
}

/// How vertex relabelling is charged when unlabeled GUI patterns are used
/// (Exp 3). The paper describes both models and evaluates with the
/// optimistic 1-step variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RelabelModel {
    /// 1-step labelling: the right label is already selected; one click
    /// per vertex (`step += |V_Pl|`). The paper's (GUI-favouring) choice.
    #[default]
    OneStep,
    /// 2-step labelling: selecting a vertex's label costs an extra step
    /// whenever it differs from the previously selected label; within one
    /// pattern instance vertices are labeled grouped by target label, so
    /// each distinct label in the instance costs one extra selection step.
    TwoStep,
}

/// Formulate `q` with *unlabeled* patterns per the Exp 3 model: match on
/// topology only, then charge one extra (1-step-labelling, optimistic)
/// relabel step per vertex of every used pattern instance.
pub fn formulate_unlabeled(q: &Graph, unlabeled_patterns: &[Graph], cap: usize) -> Formulation {
    formulate_unlabeled_with(q, unlabeled_patterns, cap, RelabelModel::OneStep)
}

/// As [`formulate_unlabeled`], with an explicit [`RelabelModel`].
pub fn formulate_unlabeled_with(
    q: &Graph,
    unlabeled_patterns: &[Graph],
    cap: usize,
    model: RelabelModel,
) -> Formulation {
    let blank = Label(u32::MAX - 1);
    let q_blank = relabel_uniform(q, blank);
    let pats: Vec<Graph> = unlabeled_patterns
        .iter()
        .map(|p| relabel_uniform(p, blank))
        .collect();
    let mut f = formulate(&q_blank, &pats, cap);
    let pattern_vertices: usize = f.used.iter().map(|o| o.vertices.len()).sum();
    f.steps += pattern_vertices;
    if model == RelabelModel::TwoStep {
        // One extra label-selection step per distinct target label per
        // pattern instance.
        for occ in &f.used {
            let mut labels: Vec<Label> = occ.vertices.iter().map(|&v| q.label(v)).collect();
            labels.sort_unstable();
            labels.dedup();
            f.steps += labels.len();
        }
    }
    // step_total is unchanged: edge-at-a-time on the labeled query.
    f.steps_edge_at_a_time = step_total(q);
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn path(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &edges)
    }

    fn cycle(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn no_patterns_means_edge_at_a_time() {
        let q = cycle(5);
        let f = formulate(&q, &[], 100);
        assert_eq!(f.steps, 10); // 5 vertices + 5 edges
        assert_eq!(f.steps, f.steps_edge_at_a_time);
        assert_eq!(f.reduction_ratio(), 0.0);
        assert!(!f.used_any_pattern());
    }

    #[test]
    fn exact_pattern_is_one_step() {
        let q = cycle(5);
        let f = formulate(&q, &[cycle(5)], 100);
        assert_eq!(f.steps, 1);
        assert!((f.reduction_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn tmad_style_example() {
        // §1 example shape: query = two copies of a pattern joined by one
        // edge → 3 steps (2 pattern drags + 1 edge).
        // Build: two stars N-C(-O)-N joined N..N? Simpler: two triangles
        // connected by one bridge edge.
        let mut q = Graph::new();
        for _ in 0..6 {
            q.add_vertex(l(0));
        }
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            q.add_edge(VertexId(a), VertexId(b)).unwrap();
        }
        q.add_edge(VertexId(2), VertexId(3)).unwrap();
        let tri = cycle(3);
        let f = formulate(&q, &[tri], 200);
        assert_eq!(f.used.len(), 2, "pattern used twice");
        assert_eq!(f.steps, 3); // 2 drags + 1 connecting edge
        let expected_mu = (13.0 - 3.0) / 13.0;
        assert!((f.reduction_ratio() - expected_mu).abs() < 1e-12);
    }

    #[test]
    fn steps_never_exceed_edge_at_a_time() {
        let q = cycle(6);
        let sets: Vec<Vec<Graph>> = vec![
            vec![path(3)],
            vec![path(4), cycle(3)],
            vec![cycle(6), path(2)],
        ];
        for pats in sets {
            let f = formulate(&q, &pats, 200);
            assert!(f.steps <= f.steps_edge_at_a_time);
            assert!(f.reduction_ratio() >= 0.0);
        }
    }

    #[test]
    fn chosen_occurrences_do_not_overlap() {
        let q = path(9);
        let f = formulate(&q, &[path(3)], 300);
        let mut seen = std::collections::HashSet::new();
        for o in &f.used {
            for v in &o.vertices {
                assert!(seen.insert(*v), "vertex reused");
            }
        }
    }

    #[test]
    fn labels_matter_for_matching() {
        let q = Graph::from_parts(&[l(1), l(2), l(3)], &[(0, 1), (1, 2)]);
        let wrong = Graph::from_parts(&[l(5), l(6), l(7)], &[(0, 1), (1, 2)]);
        let f = formulate(&q, std::slice::from_ref(&wrong), 100);
        assert!(!f.used_any_pattern());
        // ... but the unlabeled model matches and charges relabel steps.
        let fu = formulate_unlabeled(&q, &[relabel_uniform(&wrong, l(0))], 100);
        assert!(fu.used_any_pattern());
        // 1 drag + 3 relabels = 4 < 5 (= 3 vertices + 2 edges).
        assert_eq!(fu.steps, 4);
        assert_eq!(fu.steps_edge_at_a_time, 5);
    }

    #[test]
    fn unlabeled_model_can_lose_to_labeled() {
        // With relabeling costs, unlabeled patterns are weaker than exact
        // labeled patterns — the Exp 3 headline effect.
        let q = Graph::from_parts(&[l(1), l(2), l(3), l(4)], &[(0, 1), (1, 2), (2, 3)]);
        let labeled = q.clone();
        let f_lab = formulate(&q, &[labeled], 100);
        let f_unl = formulate_unlabeled(&q, &[relabel_uniform(&q, l(0))], 100);
        assert!(f_lab.steps < f_unl.steps);
    }

    #[test]
    fn two_step_model_charges_label_selections() {
        // Query: a path with 2 distinct labels; unlabeled 2-edge pattern.
        let q = Graph::from_parts(&[l(1), l(2), l(1)], &[(0, 1), (1, 2)]);
        let pat = relabel_uniform(&q, l(0));
        let one =
            formulate_unlabeled_with(&q, std::slice::from_ref(&pat), 100, RelabelModel::OneStep);
        let two =
            formulate_unlabeled_with(&q, std::slice::from_ref(&pat), 100, RelabelModel::TwoStep);
        assert!(one.used_any_pattern());
        // 2 distinct labels in the instance → exactly 2 extra steps.
        assert_eq!(two.steps, one.steps + 2);
    }

    use catapult_graph::VertexId;
}
