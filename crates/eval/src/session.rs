//! A visual query-construction session: the GUI model behind the step
//! counts.
//!
//! §6.1's `step_P` is an *accounting* of formulation steps; this module
//! makes the accounting executable. A [`Session`] holds a query
//! construction canvas (the paper's QCC) and a pattern panel, and applies
//! [`Action`]s — drag a canned pattern, add a vertex, add an edge, relabel
//! a vertex — exactly like the interactions of §1's Example 1.1.
//! [`replay`] converts a [`Formulation`] into an action script and runs
//! it, proving that `formulate`'s claimed step count corresponds to a real
//! action sequence that reconstructs the query on the canvas.

use crate::steps::Formulation;
use catapult_graph::iso::are_isomorphic;
use catapult_graph::{Graph, GraphError, Label, VertexId};

/// One user interaction on the canvas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Drag panel pattern `pattern` onto the canvas (pattern-at-a-time
    /// mode); its vertices and edges materialize in one step.
    DragPattern {
        /// Index into the session's panel.
        pattern: usize,
    },
    /// Add a single labeled vertex (edge-at-a-time mode).
    AddVertex(Label),
    /// Draw an edge between two canvas vertices.
    AddEdge(VertexId, VertexId),
    /// Relabel a canvas vertex (the unlabeled-pattern workflow of Exp 3).
    Relabel(VertexId, Label),
}

/// Errors from applying an action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// Panel index out of range.
    UnknownPattern(usize),
    /// Canvas vertex id out of range.
    UnknownVertex(VertexId),
    /// The edge is invalid (self-loop / duplicate).
    BadEdge(GraphError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownPattern(i) => write!(f, "no panel pattern {i}"),
            SessionError::UnknownVertex(v) => write!(f, "no canvas vertex {v:?}"),
            SessionError::BadEdge(e) => write!(f, "invalid edge: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A live query-construction session.
#[derive(Clone, Debug)]
pub struct Session {
    panel: Vec<Graph>,
    canvas: Graph,
    steps: usize,
    log: Vec<Action>,
}

impl Session {
    /// Open a session over a pattern panel.
    pub fn new(panel: Vec<Graph>) -> Self {
        Session {
            panel,
            canvas: Graph::new(),
            steps: 0,
            log: Vec::new(),
        }
    }

    /// The canvas in its current state.
    pub fn canvas(&self) -> &Graph {
        &self.canvas
    }

    /// Steps taken so far (each action is one step, per §6.1).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The action log.
    pub fn log(&self) -> &[Action] {
        &self.log
    }

    /// Apply one action. On success returns the canvas vertices created by
    /// the action (empty for edges/relabels).
    pub fn apply(&mut self, action: Action) -> Result<Vec<VertexId>, SessionError> {
        let created = match &action {
            Action::DragPattern { pattern } => {
                let p = self
                    .panel
                    .get(*pattern)
                    .ok_or(SessionError::UnknownPattern(*pattern))?
                    .clone();
                let mut created = Vec::with_capacity(p.vertex_count());
                for v in p.vertices() {
                    created.push(self.canvas.add_vertex(p.label(v)));
                }
                for (_, e) in p.edges() {
                    self.canvas
                        .add_edge(created[e.u.index()], created[e.v.index()])
                        .map_err(SessionError::BadEdge)?;
                }
                created
            }
            Action::AddVertex(l) => vec![self.canvas.add_vertex(*l)],
            Action::AddEdge(a, b) => {
                for v in [a, b] {
                    if v.index() >= self.canvas.vertex_count() {
                        return Err(SessionError::UnknownVertex(*v));
                    }
                }
                self.canvas
                    .add_edge(*a, *b)
                    .map_err(SessionError::BadEdge)?;
                Vec::new()
            }
            Action::Relabel(v, l) => {
                if v.index() >= self.canvas.vertex_count() {
                    return Err(SessionError::UnknownVertex(*v));
                }
                // Rebuild with the new label (Graph is append-only by
                // design; sessions are small so this is fine).
                let mut labels: Vec<Label> = self.canvas.labels().to_vec();
                labels[v.index()] = *l;
                let edges: Vec<(u32, u32)> =
                    self.canvas.edges().map(|(_, e)| (e.u.0, e.v.0)).collect();
                self.canvas = Graph::from_parts(&labels, &edges);
                Vec::new()
            }
        };
        self.steps += 1;
        self.log.push(action);
        Ok(created)
    }

    /// Whether the canvas is isomorphic to `target` — the session built
    /// the query.
    pub fn completed(&self, target: &Graph) -> bool {
        // Canvas graphs are interactive-query sized (§1); the default
        // 10M-node cap cannot trip on them.
        are_isomorphic(&self.canvas, target) // xtask-allow: consume-completeness, budget-threading
    }
}

/// Replay a [`Formulation`] of `query` as an executable action script.
///
/// Returns the finished session; the caller can check
/// `session.steps() == formulation.steps` and
/// `session.completed(query)` — which [`replay`]'s tests and the
/// integration suite do, closing the loop between the §6.1 accounting and
/// actual GUI behaviour.
pub fn replay(
    query: &Graph,
    panel: &[Graph],
    formulation: &Formulation,
) -> Result<Session, SessionError> {
    let mut session = Session::new(panel.to_vec());
    // canvas vertex per query vertex.
    let mut image: Vec<Option<VertexId>> = vec![None; query.vertex_count()];
    // 1. Drag each chosen occurrence; its embedding fixes the canvas image
    //    of the covered query vertices.
    for occ in &formulation.used {
        let created = session.apply(Action::DragPattern {
            pattern: occ.pattern,
        })?;
        // `occ.vertices` is sorted; the pattern's embedding maps pattern
        // vertex i → embedding[i]. We need the specific correspondence:
        // re-find it by matching the dragged pattern onto the query region.
        let p = &panel[occ.pattern];
        #[allow(clippy::expect_used)]
        // Occurrences originate from `embeddings`, so re-finding one cannot fail.
        let embedding = crate::steps::occurrence_embedding(query, p, occ)
            .expect("occurrence came from an embedding");
        for (pv, qv) in embedding.iter().enumerate() {
            image[qv.index()] = Some(created[pv]);
        }
    }
    // 2. Add uncovered vertices.
    for v in query.vertices() {
        if image[v.index()].is_none() {
            let created = session.apply(Action::AddVertex(query.label(v)))?;
            image[v.index()] = Some(created[0]);
        }
    }
    // 3. Add uncovered edges.
    let covered_edges: std::collections::HashSet<u32> = formulation
        .used
        .iter()
        .flat_map(|o| o.edges.iter().copied())
        .collect();
    for (eid, e) in query.edges() {
        if covered_edges.contains(&eid.0) {
            continue;
        }
        // Steps 1-2 placed every query vertex into `image`, so both lookups
        // succeed for any well-formed formulation.
        #[allow(clippy::expect_used)]
        let (a, b) = (
            image[e.u.index()].expect("all vertices placed"),
            image[e.v.index()].expect("all vertices placed"),
        );
        session.apply(Action::AddEdge(a, b))?;
    }
    Ok(session)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steps::{formulate, DEFAULT_EMBEDDING_CAP};

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn cycle(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        Graph::from_parts(&labels, &edges)
    }

    fn path(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn manual_edge_at_a_time_session() {
        let mut s = Session::new(vec![]);
        let a = s.apply(Action::AddVertex(l(1))).unwrap()[0];
        let b = s.apply(Action::AddVertex(l(2))).unwrap()[0];
        s.apply(Action::AddEdge(a, b)).unwrap();
        assert_eq!(s.steps(), 3);
        let target = Graph::from_parts(&[l(1), l(2)], &[(0, 1)]);
        assert!(s.completed(&target));
    }

    #[test]
    fn drag_pattern_is_one_step() {
        let mut s = Session::new(vec![cycle(5)]);
        s.apply(Action::DragPattern { pattern: 0 }).unwrap();
        assert_eq!(s.steps(), 1);
        assert!(s.completed(&cycle(5)));
    }

    #[test]
    fn relabel_changes_label() {
        let mut s = Session::new(vec![]);
        let v = s.apply(Action::AddVertex(l(0))).unwrap()[0];
        s.apply(Action::Relabel(v, l(7))).unwrap();
        assert_eq!(s.canvas().label(v), l(7));
        assert_eq!(s.steps(), 2);
    }

    #[test]
    fn errors_do_not_advance_steps() {
        let mut s = Session::new(vec![]);
        assert!(s.apply(Action::DragPattern { pattern: 3 }).is_err());
        assert!(s.apply(Action::AddEdge(VertexId(0), VertexId(1))).is_err());
        assert_eq!(s.steps(), 0);
    }

    #[test]
    fn replay_reconstructs_query_with_claimed_steps() {
        // Two triangles joined by a bridge, formulated with a triangle
        // pattern: the §1 Example 1.1 shape.
        let mut q = Graph::new();
        for _ in 0..6 {
            q.add_vertex(l(0));
        }
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            q.add_edge(VertexId(a), VertexId(b)).unwrap();
        }
        let panel = vec![cycle(3)];
        let f = formulate(&q, &panel, DEFAULT_EMBEDDING_CAP);
        assert_eq!(f.steps, 3);
        let session = replay(&q, &panel, &f).unwrap();
        assert_eq!(session.steps(), f.steps);
        assert!(session.completed(&q));
    }

    #[test]
    fn replay_handles_partial_coverage() {
        // A 7-path with a 3-edge pattern: one drag + manual remainder.
        let q = path(8);
        let panel = vec![path(4)];
        let f = formulate(&q, &panel, DEFAULT_EMBEDDING_CAP);
        let session = replay(&q, &panel, &f).unwrap();
        assert_eq!(session.steps(), f.steps);
        assert!(session.completed(&q));
        assert!(session.steps() < crate::steps::step_total(&q));
    }

    #[test]
    fn replay_with_empty_panel_is_edge_at_a_time() {
        let q = cycle(4);
        let f = formulate(&q, &[], DEFAULT_EMBEDDING_CAP);
        let session = replay(&q, &[], &f).unwrap();
        assert_eq!(session.steps(), crate::steps::step_total(&q));
        assert!(session.completed(&q));
    }
}
