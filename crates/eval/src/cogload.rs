//! Simulated cognitive-load ranking study (Exp 10, Fig. 18).
//!
//! The paper asks 15 participants to decide `p ⊆ Q` for pattern/query
//! pairs, ranks patterns by decision time, and correlates (Kendall τ) that
//! "actual" ranking with the rankings induced by three candidate measures:
//! F1 = |E|·ρ (density-based, the paper's choice), F2 = 2|E|
//! (degree-based), F3 = 2|E|/|V| (average degree). It finds F1 (≈ 0.8)
//! ≻ F3 (≈ 0.78) ≫ F2 (≈ 0.28), and that cliques take longest due to edge
//! crossings [25].
//!
//! Our simulated participant implements the published mechanism: decision
//! time = base + α · (exact crossings in a circular layout) + β · |V| +
//! lognormal noise. Crossings — not raw edge count — drive the time, which
//! is precisely why the density-sensitive F1 correlates and the pure
//! edge-count F2 does not.

use crate::stats::{kendall_tau, mean};
use catapult_graph::layout::best_effort_crossings;
use catapult_graph::metrics::{cognitive_load, cognitive_load_f2, cognitive_load_f3};
use catapult_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One participant's simulated decision time for one pattern (seconds).
pub fn simulate_decision_time(pattern: &Graph, rng: &mut StdRng) -> f64 {
    let crossings = best_effort_crossings(pattern) as f64;
    let vertices = pattern.vertex_count() as f64;
    // Crossing-dominated per [25]: a long sparse pattern reads quickly, a
    // small dense one slowly — this is exactly the regime where the
    // edge-count measure F2 fails and the density measure F1 succeeds.
    let base = 2.0;
    let deterministic = base + 1.6 * crossings + 0.08 * vertices;
    let z = standard_normal(rng);
    deterministic * (0.2 * z).exp()
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Average rank of each pattern across simulated participants, following
/// the paper's protocol (rank per participant, then average ranks — not
/// times — to avoid outlier-driven rank reversal).
pub fn simulated_actual_ranking(patterns: &[Graph], participants: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = patterns.len();
    let mut rank_sums = vec![0.0f64; n];
    for _ in 0..participants {
        let times: Vec<f64> = patterns
            .iter()
            .map(|p| simulate_decision_time(p, &mut rng))
            .collect();
        // Rank = position when sorted ascending by time.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| times[a].total_cmp(&times[b]));
        for (rank, &i) in order.iter().enumerate() {
            rank_sums[i] += rank as f64;
        }
    }
    rank_sums.iter().map(|s| s / participants as f64).collect()
}

/// Kendall τ of the simulated actual ranking against F1/F2/F3 for one
/// pattern set.
#[derive(Clone, Copy, Debug)]
pub struct CogLoadCorrelation {
    /// τ(actual, F1) — the paper's density measure.
    pub f1: f64,
    /// τ(actual, F2) — degree sum.
    pub f2: f64,
    /// τ(actual, F3) — average degree.
    pub f3: f64,
}

/// Run the Exp 10 protocol on one pattern set.
pub fn correlate(patterns: &[Graph], participants: usize, seed: u64) -> CogLoadCorrelation {
    let actual = simulated_actual_ranking(patterns, participants, seed);
    let f1: Vec<f64> = patterns.iter().map(cognitive_load).collect();
    let f2: Vec<f64> = patterns.iter().map(cognitive_load_f2).collect();
    let f3: Vec<f64> = patterns.iter().map(cognitive_load_f3).collect();
    CogLoadCorrelation {
        f1: kendall_tau(&actual, &f1),
        f2: kendall_tau(&actual, &f2),
        f3: kendall_tau(&actual, &f3),
    }
}

/// Average correlations over several repetitions (different participant
/// pools), as the paper averages over datasets.
pub fn correlate_repeated(
    patterns: &[Graph],
    participants: usize,
    repetitions: usize,
    seed: u64,
) -> CogLoadCorrelation {
    let runs: Vec<CogLoadCorrelation> = (0..repetitions)
        .map(|r| correlate(patterns, participants, seed.wrapping_add(r as u64)))
        .collect();
    CogLoadCorrelation {
        f1: mean(&runs.iter().map(|c| c.f1).collect::<Vec<_>>()),
        f2: mean(&runs.iter().map(|c| c.f2).collect::<Vec<_>>()),
        f3: mean(&runs.iter().map(|c| c.f3).collect::<Vec<_>>()),
    }
}

/// The Exp 10 stimulus set shape: patterns of varied topology and load,
/// |V| ∈ [4, 13], |E| ∈ [3, 13], including a clique (the paper's
/// slowest stimulus).
pub fn exp10_stimuli() -> Vec<Graph> {
    use catapult_graph::{Label, VertexId};
    let l = Label(0);
    let path = |n: usize| {
        let labels = vec![l; n];
        let e: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &e)
    };
    let cycle = |n: usize| {
        let labels = vec![l; n];
        let mut e: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        e.push((n as u32 - 1, 0));
        Graph::from_parts(&labels, &e)
    };
    let clique = |n: u32| {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(l);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                // `i < j < n` are distinct in-bounds vertices visited once.
                let _ = g.add_edge(VertexId(i), VertexId(j));
            }
        }
        g
    };
    let star9 = {
        let labels = vec![l; 9];
        let e: Vec<(u32, u32)> = (1..9u32).map(|i| (0, i)).collect();
        Graph::from_parts(&labels, &e)
    };
    let wheel5 = {
        // 5-cycle plus hub: dense, many crossings.
        let mut g = cycle(5);
        let hub = g.add_vertex(l);
        for i in 0..5u32 {
            // Every spoke targets the fresh hub, so the insert cannot fail.
            let _ = g.add_edge(VertexId(i), hub);
        }
        g
    };
    // Large sparse (fast) vs small dense (slow) stimuli — the contrast
    // that separates F1/F3 from F2.
    vec![path(13), cycle(12), star9, clique(4), clique(5), wheel5]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stimuli_are_in_paper_ranges() {
        for p in exp10_stimuli() {
            assert!((3..=13).contains(&p.edge_count()), "|E|={}", p.edge_count());
            assert!((4..=13).contains(&p.vertex_count()));
        }
    }

    #[test]
    fn f1_beats_f2_like_the_paper() {
        let stimuli = exp10_stimuli();
        let c = correlate_repeated(&stimuli, 15, 10, 42);
        assert!(c.f1 > c.f2, "F1 {:.2} must beat F2 {:.2}", c.f1, c.f2);
        assert!(c.f1 > 0.4, "F1 correlation too weak: {:.2}", c.f1);
    }

    #[test]
    fn clique_is_slowest_on_average() {
        let stimuli = exp10_stimuli();
        let actual = simulated_actual_ranking(&stimuli, 30, 7);
        // K5 is index 4 — the densest, crossing-heaviest stimulus must rank
        // slower than the long path (index 0), despite having fewer edges.
        let clique_rank = actual[4];
        let path_rank = actual[0];
        assert!(
            clique_rank > path_rank,
            "clique rank {clique_rank} vs path {path_rank}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let stimuli = exp10_stimuli();
        let a = correlate(&stimuli, 15, 1);
        let b = correlate(&stimuli, 15, 1);
        assert_eq!(a.f1, b.f1);
        assert_eq!(a.f2, b.f2);
    }

    #[test]
    fn rankings_average_over_participants() {
        let stimuli = exp10_stimuli();
        let r = simulated_actual_ranking(&stimuli, 15, 3);
        assert_eq!(r.len(), stimuli.len());
        // Ranks average to (n-1)/2 overall.
        let avg: f64 = r.iter().sum::<f64>() / r.len() as f64;
        assert!((avg - 2.5).abs() < 1e-9);
    }
}
