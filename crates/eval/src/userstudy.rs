//! Simulated user study (Exp 4, Fig. 10 + Table 1).
//!
//! The paper measures query formulation time (QFT) and step counts for 25
//! human volunteers formulating 5 queries per GUI. Humans are not available
//! to a reproduction harness, so we simulate the published mechanism: QFT
//! is driven by the number and kind of formulation steps (drag a pattern,
//! add a vertex, add an edge, relabel a vertex) plus a visual-search time
//! for locating a suitable pattern in the panel — which grows with the
//! panel size and the patterns' cognitive load, per the §3.1 discussion and
//! Exp 10's finding that decision time tracks the density measure F1.
//! Per-user variability is lognormal noise. See DESIGN.md §3.

use crate::steps::Formulation;
use catapult_graph::metrics::cognitive_load;
use catapult_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-action base times (seconds). Values are representative HCI action
/// times; only *relative* QFT comparisons are meaningful (DESIGN.md §3).
#[derive(Clone, Copy, Debug)]
pub struct ActionTimes {
    /// Dragging a canned pattern onto the canvas.
    pub pattern_drag: f64,
    /// Adding one vertex (includes choosing its label).
    pub vertex_add: f64,
    /// Drawing one edge.
    pub edge_add: f64,
    /// Relabeling one vertex (the 1-step labelling of Exp 3).
    pub relabel: f64,
    /// Base visual-search time for one pattern lookup in the panel.
    pub search_base: f64,
}

impl Default for ActionTimes {
    fn default() -> Self {
        ActionTimes {
            pattern_drag: 2.5,
            vertex_add: 1.8,
            edge_add: 2.2,
            relabel: 1.5,
            search_base: 0.9,
        }
    }
}

/// One simulated user's QFT for one formulated query.
///
/// `relabel_steps` is the number of steps inside `formulation.steps` that
/// are vertex relabels (non-zero only for the unlabeled-GUI model); the
/// remaining non-pattern steps split into vertex and edge additions
/// proportionally to the uncovered counts.
pub fn simulate_qft(
    formulation: &Formulation,
    panel: &[Graph],
    relabel_steps: usize,
    times: &ActionTimes,
    rng: &mut StdRng,
) -> f64 {
    let pattern_steps = formulation.used.len();
    // Manual (vertex/edge) steps: the step model's total minus pattern
    // drags and relabels; charged at the mean of the two action times
    // (the exact vertex/edge split does not change any relative result).
    let manual_steps = formulation
        .steps
        .saturating_sub(pattern_steps + relabel_steps);
    let manual_cost = (times.vertex_add + times.edge_add) / 2.0;

    // Visual search: each pattern use requires scanning the panel; harder
    // (denser) panels take longer. Exp 10: time grows with F1.
    let panel_cog = if panel.is_empty() {
        0.0
    } else {
        panel.iter().map(cognitive_load).sum::<f64>() / panel.len() as f64
    };
    let search = times.search_base * (panel.len() as f64).sqrt() * (1.0 + panel_cog / 4.0);

    let deterministic = pattern_steps as f64 * (times.pattern_drag + search)
        + manual_steps as f64 * manual_cost
        + relabel_steps as f64 * times.relabel;
    // Lognormal user noise, σ = 0.15.
    let noise: f64 = {
        let z: f64 = sample_standard_normal(rng);
        (0.15 * z).exp()
    };
    deterministic * noise
}

/// Box–Muller standard normal sample.
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Aggregate of a simulated study cell (one query × one GUI).
#[derive(Clone, Copy, Debug)]
pub struct StudyCell {
    /// Mean QFT across simulated participants (seconds).
    pub mean_qft: f64,
    /// Steps taken (deterministic, from the step model).
    pub steps: usize,
}

/// Simulate `participants` users formulating one query.
pub fn run_cell(
    formulation: &Formulation,
    panel: &[Graph],
    relabel_steps: usize,
    participants: usize,
    seed: u64,
) -> StudyCell {
    let times = ActionTimes::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let total: f64 = (0..participants)
        .map(|_| simulate_qft(formulation, panel, relabel_steps, &times, &mut rng))
        .sum();
    StudyCell {
        mean_qft: total / participants.max(1) as f64,
        steps: formulation.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steps::{formulate, formulate_unlabeled, relabel_uniform};
    use catapult_graph::Label;

    fn cycle(n: usize) -> Graph {
        let labels = vec![Label(1); n];
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn fewer_steps_means_less_time() {
        let q = cycle(6);
        let with_pattern = formulate(&q, &[cycle(6)], 100);
        let without = formulate(&q, &[], 100);
        let panel = vec![cycle(6)];
        let fast = run_cell(&with_pattern, &panel, 0, 10, 1);
        let slow = run_cell(&without, &[], 0, 10, 1);
        assert!(fast.mean_qft < slow.mean_qft);
        assert!(fast.steps < slow.steps);
    }

    #[test]
    fn relabeling_costs_time() {
        // An unlabeled panel (needs 6 relabels) must be slower than a
        // labeled panel with the same structural pattern.
        let q = cycle(6);
        let labeled_panel = vec![cycle(6)];
        let f_lab = formulate(&q, &labeled_panel, 100);
        let unlabeled_panel = vec![relabel_uniform(&cycle(6), Label(0))];
        let f_unl = formulate_unlabeled(&q, &unlabeled_panel, 100);
        let lab = run_cell(&f_lab, &labeled_panel, 0, 10, 2);
        let unl = run_cell(&f_unl, &unlabeled_panel, 6, 10, 2);
        assert!(unl.mean_qft > lab.mean_qft);
        assert!(unl.steps > lab.steps);
    }

    #[test]
    fn bigger_panels_search_slower() {
        let q = cycle(6);
        let f = formulate(&q, &[cycle(6)], 100);
        let small_panel = vec![cycle(6)];
        let big_panel: Vec<Graph> = (3..15).map(cycle).collect();
        let small = run_cell(&f, &small_panel, 0, 20, 3);
        let big = run_cell(&f, &big_panel, 0, 20, 3);
        assert!(big.mean_qft > small.mean_qft);
    }

    #[test]
    fn deterministic_under_seed() {
        let q = cycle(5);
        let f = formulate(&q, &[cycle(5)], 100);
        let panel = vec![cycle(5)];
        let a = run_cell(&f, &panel, 0, 5, 7);
        let b = run_cell(&f, &panel, 0, 5, 7);
        assert_eq!(a.mean_qft, b.mean_qft);
    }
}
