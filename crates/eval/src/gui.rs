//! Simulated commercial GUI pattern sets (Exp 3).
//!
//! The paper extracts the size-[3,8] canned patterns exposed by the
//! PubChem sketcher (12 patterns, 11 unlabeled) and the eMolecules/Reaxys
//! sketcher (6 unlabeled patterns) and evaluates them under the
//! vertex-relabelling step model. The concrete pattern shapes are the
//! standard chemistry-sketcher inventory: small rings (C3–C8), short
//! chains, a branch motif, and fused ring systems. We reproduce sets of
//! the same cardinality, size range, and character (all unlabeled).

use catapult_graph::{Graph, Label, VertexId};

/// The common "blank" label carried by unlabeled GUI patterns.
pub const BLANK: Label = Label(0);

fn cycle(n: usize) -> Graph {
    let labels = vec![BLANK; n];
    let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    edges.push((n as u32 - 1, 0));
    Graph::from_parts(&labels, &edges)
}

fn chain(edges: usize) -> Graph {
    let labels = vec![BLANK; edges + 1];
    let e: Vec<(u32, u32)> = (0..edges as u32).map(|i| (i, i + 1)).collect();
    Graph::from_parts(&labels, &e)
}

fn star(leaves: usize) -> Graph {
    let labels = vec![BLANK; leaves + 1];
    let e: Vec<(u32, u32)> = (1..=leaves as u32).map(|i| (0, i)).collect();
    Graph::from_parts(&labels, &e)
}

/// Two squares sharing an edge (bicyclo fused system, 7 edges).
fn fused_squares() -> Graph {
    Graph::from_parts(
        &[BLANK; 6],
        &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (5, 3)],
    )
}

/// Hexagon with a pendant bond (toluene-like skeleton, 7 edges).
fn hexagon_pendant() -> Graph {
    let mut g = cycle(6);
    let v = g.add_vertex(BLANK);
    // The pendant bond targets a fresh vertex, so the insert cannot fail.
    let _ = g.add_edge(VertexId(0), v);
    g
}

/// Pentagon fused with a triangle (5 + 3 sharing an edge → 6 edges).
fn fused_pentagon_triangle() -> Graph {
    Graph::from_parts(
        &[BLANK; 6],
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 5), (5, 1)],
    )
}

/// The simulated PubChem GUI pattern set: 12 unlabeled patterns, sizes
/// 3–8 edges (rings C3–C8, chains, a branch, fused systems).
pub fn pubchem_gui_patterns() -> Vec<Graph> {
    vec![
        cycle(3),
        cycle(4),
        cycle(5),
        cycle(6),
        cycle(7),
        cycle(8),
        chain(3),
        chain(4),
        chain(5),
        star(3),
        fused_squares(),
        hexagon_pendant(),
    ]
}

/// The simulated eMolecules GUI pattern set: 6 unlabeled patterns, sizes
/// 3–8 edges. All ring templates — chemistry sketchers expose ring
/// systems as canned patterns while chains are drawn bond-by-bond, which
/// is also what the paper's high eMol missed-percentage (29.4%) implies:
/// tree-shaped queries find no usable pattern in that panel.
pub fn emol_gui_patterns() -> Vec<Graph> {
    vec![
        cycle(3),
        cycle(4),
        cycle(5),
        cycle(6),
        cycle(8),
        fused_pentagon_triangle(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::components::is_connected;
    use catapult_graph::iso::are_isomorphic;

    #[test]
    fn pubchem_set_shape() {
        let pats = pubchem_gui_patterns();
        assert_eq!(pats.len(), 12);
        for p in &pats {
            assert!(is_connected(p));
            assert!((3..=8).contains(&p.edge_count()), "size {}", p.edge_count());
            assert!(p.labels().iter().all(|&l| l == BLANK));
        }
    }

    #[test]
    fn emol_set_shape() {
        let pats = emol_gui_patterns();
        assert_eq!(pats.len(), 6);
        for p in &pats {
            assert!(is_connected(p));
            assert!((3..=8).contains(&p.edge_count()));
        }
    }

    #[test]
    fn no_duplicates_within_sets() {
        for pats in [pubchem_gui_patterns(), emol_gui_patterns()] {
            for i in 0..pats.len() {
                for j in (i + 1)..pats.len() {
                    assert!(!are_isomorphic(&pats[i], &pats[j]), "dup at {i},{j}");
                }
            }
        }
    }

    #[test]
    fn fused_systems_have_cycles() {
        let f = fused_squares();
        assert!(f.edge_count() >= f.vertex_count());
        let g = fused_pentagon_triangle();
        assert!(g.edge_count() >= g.vertex_count());
    }
}
