//! Aggregate performance measures of §6.1:
//! subgraph/label coverage of a pattern set, missed percentage (MP),
//! reduction ratios (μ and the relative μ_G / μ_F / μ_DS), and pattern-set
//! diversity / cognitive-load summaries.

use crate::steps::{formulate, Formulation, DEFAULT_EMBEDDING_CAP};
use catapult_graph::ged::ged_with_budget;
use catapult_graph::iso::contains;
use catapult_graph::metrics::cognitive_load;
use catapult_graph::{Graph, SearchBudget};
use rayon::prelude::*;

/// `scov(P, D)`: fraction of data graphs containing at least one pattern.
pub fn subgraph_coverage(patterns: &[Graph], db: &[Graph]) -> f64 {
    if db.is_empty() {
        return 0.0;
    }
    let covered = db
        .par_iter()
        // Offline evaluation measure under the default node cap: a
        // tripped probe only lowers the reported coverage (a conservative
        // estimate), never correctness.
        .filter(|g| patterns.iter().any(|p| contains(g, p))) // xtask-allow: consume-completeness, budget-threading
        .count();
    covered as f64 / db.len() as f64
}

/// `lcov(P, D)`: fraction of data graphs containing at least one edge
/// whose label occurs in the pattern set.
pub fn label_coverage(patterns: &[Graph], db: &[Graph]) -> f64 {
    let labels = catapult_mining::edges::pattern_set_edge_labels(patterns);
    catapult_mining::edges::label_coverage(db, &labels)
}

/// Per-query formulation results over a workload.
#[derive(Clone, Debug)]
pub struct WorkloadEvaluation {
    /// One formulation per query.
    pub formulations: Vec<Formulation>,
}

impl WorkloadEvaluation {
    /// Evaluate `patterns` over `queries` with the §6.1 step model.
    pub fn evaluate(patterns: &[Graph], queries: &[Graph]) -> Self {
        Self::evaluate_recorded(patterns, queries, &catapult_obs::Recorder::disabled())
    }

    /// [`evaluate`](Self::evaluate) under an observability recorder: wraps
    /// the workload sweep in an `evaluate` span and reports workload sizes
    /// and total formulation steps as `eval.workload.*` counters.
    pub fn evaluate_recorded(
        patterns: &[Graph],
        queries: &[Graph],
        recorder: &catapult_obs::Recorder,
    ) -> Self {
        let _span = recorder.span("evaluate");
        // Progress accounting (`--progress` ETA): one item per query.
        // `Counter` is an atomic cell, so bumping it from the parallel
        // map is commutative and cannot perturb the ordered results.
        let items_done = recorder.counter("evaluate.items.done");
        recorder
            .counter("evaluate.items.total")
            .add(queries.len() as u64);
        // Parallel audit: `formulate` is a pure function of its arguments
        // and the shim collects in input order, so `formulations[i]` always
        // belongs to `queries[i]` regardless of thread count.
        let formulations: Vec<Formulation> = queries
            .par_iter()
            .map(|q| {
                let f = formulate(q, patterns, DEFAULT_EMBEDDING_CAP);
                items_done.incr();
                f
            })
            .collect();
        if recorder.is_enabled() {
            recorder
                .counter("eval.workload.queries")
                .add(queries.len() as u64);
            recorder
                .counter("eval.workload.patterns")
                .add(patterns.len() as u64);
            recorder
                .counter("eval.workload.steps")
                .add(formulations.iter().map(|f| f.steps as u64).sum());
        }
        WorkloadEvaluation { formulations }
    }

    /// Missed percentage `MP = |Q_M| / |Q| × 100` — queries containing no
    /// canned pattern at all.
    pub fn missed_percentage(&self) -> f64 {
        if self.formulations.is_empty() {
            return 0.0;
        }
        let missed = self
            .formulations
            .iter()
            .filter(|f| !f.used_any_pattern())
            .count();
        missed as f64 / self.formulations.len() as f64 * 100.0
    }

    /// Mean reduction ratio μ over the workload.
    pub fn mean_reduction(&self) -> f64 {
        crate::stats::mean(
            &self
                .formulations
                .iter()
                .map(Formulation::reduction_ratio)
                .collect::<Vec<_>>(),
        )
    }

    /// Maximum reduction ratio μ over the workload.
    pub fn max_reduction(&self) -> f64 {
        crate::stats::max(
            &self
                .formulations
                .iter()
                .map(Formulation::reduction_ratio)
                .collect::<Vec<_>>(),
        )
    }

    /// Total `step_P` across the workload.
    pub fn total_steps(&self) -> usize {
        self.formulations.iter().map(|f| f.steps).sum()
    }
}

/// Relative reduction of `ours` versus `baseline` step counts:
/// `μ_rel = (step_baseline − step_ours) / step_baseline` (used for μ_G in
/// Exp 3, μ_F in Exp 9 and μ_DS in Exp 6). Positive means `ours` is
/// better; may be negative.
pub fn relative_reduction(baseline_steps: usize, our_steps: usize) -> f64 {
    if baseline_steps == 0 {
        return 0.0;
    }
    (baseline_steps as f64 - our_steps as f64) / baseline_steps as f64
}

/// Mean per-query relative reduction between two evaluations of the same
/// workload.
pub fn mean_relative_reduction(baseline: &WorkloadEvaluation, ours: &WorkloadEvaluation) -> f64 {
    assert_eq!(baseline.formulations.len(), ours.formulations.len());
    let ratios: Vec<f64> = baseline
        .formulations
        .iter()
        .zip(&ours.formulations)
        .map(|(b, o)| relative_reduction(b.steps, o.steps))
        .collect();
    crate::stats::mean(&ratios)
}

/// Max per-query relative reduction between two evaluations.
pub fn max_relative_reduction(baseline: &WorkloadEvaluation, ours: &WorkloadEvaluation) -> f64 {
    baseline
        .formulations
        .iter()
        .zip(&ours.formulations)
        .map(|(b, o)| relative_reduction(b.steps, o.steps))
        .fold(f64::MIN, f64::max)
}

/// Pattern-set diversity: mean over patterns of `min GED` to the others
/// (the paper reports e.g. div 7.4 / 9 for its sets). 0 for sets of < 2.
pub fn mean_diversity(patterns: &[Graph]) -> f64 {
    if patterns.len() < 2 {
        return 0.0;
    }
    let mins: Vec<f64> = (0..patterns.len())
        .into_par_iter()
        .map(|i| {
            (0..patterns.len())
                .filter(|&j| j != i)
                .map(|j| {
                    let budget = SearchBudget::nodes(30_000);
                    ged_with_budget(&patterns[i], &patterns[j], budget).distance as f64
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    crate::stats::mean(&mins)
}

/// Mean cognitive load (F1) of a pattern set.
pub fn mean_cog(patterns: &[Graph]) -> f64 {
    if patterns.is_empty() {
        return 0.0;
    }
    crate::stats::mean(&patterns.iter().map(cognitive_load).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn cycle(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        Graph::from_parts(&labels, &edges)
    }

    fn path(n: usize) -> Graph {
        let labels = vec![l(0); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &edges)
    }

    #[test]
    fn coverage_measures() {
        let db = vec![cycle(5), cycle(6), path(4)];
        let p = vec![cycle(5)];
        assert!((subgraph_coverage(&p, &db) - 1.0 / 3.0).abs() < 1e-12);
        // All graphs share the (0,0) edge label.
        assert!((label_coverage(&p, &db) - 1.0).abs() < 1e-12);
        assert_eq!(subgraph_coverage(&p, &[]), 0.0);
    }

    #[test]
    fn workload_metrics() {
        let queries = vec![cycle(5), path(6)];
        let patterns = vec![cycle(5)];
        let ev = WorkloadEvaluation::evaluate(&patterns, &queries);
        assert!((ev.missed_percentage() - 50.0).abs() < 1e-12);
        assert!(ev.max_reduction() > 0.8);
        assert!(ev.mean_reduction() > 0.0);
        assert!(ev.total_steps() > 0);
    }

    #[test]
    fn relative_reduction_signs() {
        assert!((relative_reduction(10, 5) - 0.5).abs() < 1e-12);
        assert!(relative_reduction(5, 10) < 0.0);
        assert_eq!(relative_reduction(0, 5), 0.0);
    }

    #[test]
    fn diversity_of_identical_patterns_is_zero() {
        let p = vec![cycle(4), cycle(4)];
        assert_eq!(mean_diversity(&p), 0.0);
        let q = vec![cycle(3), path(8)];
        assert!(mean_diversity(&q) > 3.0);
        assert_eq!(mean_diversity(&[cycle(3)]), 0.0);
    }

    #[test]
    fn mean_relative_reduction_pairs_queries() {
        let queries = vec![cycle(6), cycle(6)];
        let good = WorkloadEvaluation::evaluate(&[cycle(6)], &queries);
        let bad = WorkloadEvaluation::evaluate(&[path(2)], &queries);
        let rel = mean_relative_reduction(&bad, &good);
        assert!(rel > 0.0, "good patterns should reduce steps: {rel}");
        assert!(max_relative_reduction(&bad, &good) >= rel);
    }

    #[test]
    fn mean_cog_sanity() {
        assert_eq!(mean_cog(&[]), 0.0);
        assert!(mean_cog(&[cycle(6)]) > 0.0);
    }
}
