//! Basic patterns (the §3.2 remark / [23]).
//!
//! Canned patterns have size ≥ 3 edges; *basic patterns* — labeled edges
//! and 2-paths — are provided separately on the GUI and "computed after
//! the generation of canned patterns. Specifically, … select top-m basic
//! patterns based on their support." This module mines exactly those.

use catapult_graph::iso::contains;
use catapult_graph::{Graph, Label};
use std::collections::BTreeMap;

/// A basic pattern with its support.
#[derive(Clone, Debug)]
pub struct BasicPattern {
    /// The pattern: one labeled edge or one labeled 2-path.
    pub pattern: Graph,
    /// Number of data graphs containing it.
    pub support: usize,
}

/// Distinct labeled 2-paths `a–b–c` (unordered ends) present in `g`.
fn two_paths_of(g: &Graph) -> Vec<(Label, Label, Label)> {
    let mut out = Vec::new();
    for mid in g.vertices() {
        let nbrs = g.neighbors(mid);
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                let (a, c) = (g.label(nbrs[i].0), g.label(nbrs[j].0));
                let (a, c) = if a <= c { (a, c) } else { (c, a) };
                out.push((a, g.label(mid), c));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Mine the top-`m` basic patterns of `db` by support: labeled edges and
/// labeled 2-paths, ranked together, deterministic tie-break on labels.
pub fn top_basic_patterns(db: &[Graph], m: usize) -> Vec<BasicPattern> {
    // BTreeMaps, deliberately: the ranking below breaks support ties on
    // (sorted_labels, edge_count), which does NOT distinguish the two
    // orientations of an asymmetric 2-path — hash iteration order would
    // leak straight through `truncate(m)`.
    let mut edge_support: BTreeMap<(Label, Label), usize> = BTreeMap::new();
    let mut path_support: BTreeMap<(Label, Label, Label), usize> = BTreeMap::new();
    for g in db {
        for el in g.edge_label_set() {
            *edge_support.entry((el.0, el.1)).or_insert(0) += 1;
        }
        for p in two_paths_of(g) {
            *path_support.entry(p).or_insert(0) += 1;
        }
    }
    let mut all: Vec<BasicPattern> = Vec::new();
    for ((a, b), support) in edge_support {
        all.push(BasicPattern {
            pattern: Graph::from_parts(&[a, b], &[(0, 1)]),
            support,
        });
    }
    for ((a, mid, c), support) in path_support {
        all.push(BasicPattern {
            pattern: Graph::from_parts(&[a, mid, c], &[(0, 1), (1, 2)]),
            support,
        });
    }
    all.sort_by(|x, y| {
        y.support
            .cmp(&x.support)
            .then_with(|| x.pattern.sorted_labels().cmp(&y.pattern.sorted_labels()))
            .then_with(|| x.pattern.edge_count().cmp(&y.pattern.edge_count()))
    });
    all.truncate(m);
    all
}

/// Sanity helper: verify each basic pattern's support by isomorphism.
pub fn verify_support(db: &[Graph], basic: &BasicPattern) -> bool {
    // Offline sanity check under the default 10M-node cap; a tripped
    // probe can only undercount, which this helper reports as a failure.
    let count = db.iter().filter(|g| contains(g, &basic.pattern)).count(); // xtask-allow: consume-completeness, budget-threading
    count == basic.support
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn db() -> Vec<Graph> {
        vec![
            // C-O-C path
            Graph::from_parts(&[l(0), l(1), l(0)], &[(0, 1), (1, 2)]),
            // C-O edge
            Graph::from_parts(&[l(0), l(1)], &[(0, 1)]),
            // C-C-N path
            Graph::from_parts(&[l(0), l(0), l(2)], &[(0, 1), (1, 2)]),
        ]
    }

    #[test]
    fn edges_and_paths_are_ranked_by_support() {
        let db = db();
        let top = top_basic_patterns(&db, 3);
        // C-O edge has support 2, the best of all basic patterns.
        assert_eq!(top[0].pattern.edge_count(), 1);
        assert_eq!(top[0].support, 2);
        for b in &top {
            assert!(b.pattern.edge_count() <= 2);
            assert!(
                verify_support(&db, b),
                "support mismatch for {:?}",
                b.pattern
            );
        }
    }

    #[test]
    fn two_paths_capture_middle_label() {
        let g = Graph::from_parts(&[l(0), l(1), l(0)], &[(0, 1), (1, 2)]);
        let ps = two_paths_of(&g);
        assert_eq!(ps, vec![(l(0), l(1), l(0))]);
    }

    #[test]
    fn star_centre_generates_pairs() {
        // Star C(-O)(-N): 2-paths O-C-N.
        let g = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (0, 2)]);
        let ps = two_paths_of(&g);
        assert_eq!(ps, vec![(l(1), l(0), l(2))]);
    }

    #[test]
    fn m_truncates() {
        let db = db();
        assert_eq!(top_basic_patterns(&db, 2).len(), 2);
        assert!(top_basic_patterns(&[], 5).is_empty());
    }
}
