//! Labeled-edge statistics over a graph database.
//!
//! Used in three places in the paper:
//! * the *edge label weight* `elw` (§3.3) — the global occurrence of a
//!   labeled edge, `lcov(e, D) = |L(e, D)| / |D|`;
//! * the per-cluster local occurrence `lcov(e, C)` used for weighted CSGs
//!   (§5);
//! * the top-`|P|` frequent-edge baseline of Exp 5 (Fig. 11).

use catapult_graph::{EdgeLabel, Graph};
use std::collections::HashMap;

/// Per-edge-label transaction counts over a set of graphs.
#[derive(Clone, Debug, Default)]
pub struct EdgeLabelStats {
    counts: HashMap<EdgeLabel, usize>,
    total_graphs: usize,
}

impl EdgeLabelStats {
    /// Count, for each distinct edge label, the number of graphs in `db`
    /// containing at least one edge with that label.
    pub fn from_graphs<'a, I: IntoIterator<Item = &'a Graph>>(db: I) -> Self {
        let mut counts: HashMap<EdgeLabel, usize> = HashMap::new();
        let mut total = 0usize;
        for g in db {
            total += 1;
            for el in g.edge_label_set() {
                *counts.entry(el).or_insert(0) += 1;
            }
        }
        EdgeLabelStats {
            counts,
            total_graphs: total,
        }
    }

    /// Number of graphs counted.
    pub fn graph_count(&self) -> usize {
        self.total_graphs
    }

    /// Number of graphs containing an edge with label `el`.
    pub fn count(&self, el: EdgeLabel) -> usize {
        self.counts.get(&el).copied().unwrap_or(0)
    }

    /// `lcov(e, D) = |L(e, D)| / |D|` — the fraction of graphs containing
    /// an edge with this label (§3.2).
    pub fn lcov(&self, el: EdgeLabel) -> f64 {
        if self.total_graphs == 0 {
            return 0.0;
        }
        self.count(el) as f64 / self.total_graphs as f64
    }

    /// Distinct edge labels observed, sorted.
    pub fn labels(&self) -> Vec<EdgeLabel> {
        let mut v: Vec<EdgeLabel> = self.counts.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The `k` most frequent edge labels (by transaction count, ties broken
    /// by label order for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(EdgeLabel, usize)> {
        let mut v: Vec<(EdgeLabel, usize)> = self.counts.iter().map(|(&l, &c)| (l, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Materialize the top-`k` frequent edges as one-edge pattern graphs —
    /// the Exp 5 baseline.
    pub fn top_k_as_patterns(&self, k: usize) -> Vec<Graph> {
        self.top_k(k)
            .into_iter()
            .map(|(el, _)| edge_pattern(el))
            .collect()
    }
}

/// Build the one-edge pattern graph for an edge label.
pub fn edge_pattern(el: EdgeLabel) -> Graph {
    Graph::from_parts(&[el.0, el.1], &[(0, 1)])
}

/// Distinct edge labels of a whole pattern set (used for label coverage of
/// a canned pattern set, §3.2).
pub fn pattern_set_edge_labels(patterns: &[Graph]) -> Vec<EdgeLabel> {
    let mut out: Vec<EdgeLabel> = patterns.iter().flat_map(|p| p.edge_label_set()).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// `lcov(P, D)`: fraction of graphs in the stats' population containing at
/// least one edge whose label appears in `labels`.
///
/// Exact computation needs the graphs themselves; this helper takes them
/// explicitly (the per-label counts alone cannot give the union).
pub fn label_coverage(db: &[Graph], labels: &[EdgeLabel]) -> f64 {
    if db.is_empty() {
        return 0.0;
    }
    let set: std::collections::HashSet<EdgeLabel> = labels.iter().copied().collect();
    let covered = db
        .iter()
        .filter(|g| g.edge_label_set().iter().any(|el| set.contains(el)))
        .count();
    covered as f64 / db.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn db() -> Vec<Graph> {
        vec![
            // C-O-C
            Graph::from_parts(&[l(0), l(1), l(0)], &[(0, 1), (1, 2)]),
            // C-C
            Graph::from_parts(&[l(0), l(0)], &[(0, 1)]),
            // C-O
            Graph::from_parts(&[l(0), l(1)], &[(0, 1)]),
        ]
    }

    #[test]
    fn counts_are_per_transaction() {
        let db = db();
        let stats = EdgeLabelStats::from_graphs(&db);
        // (C,O) appears in graphs 0 and 2 → count 2 even though graph 0 has
        // two C-O edges.
        assert_eq!(stats.count(EdgeLabel::new(l(0), l(1))), 2);
        assert_eq!(stats.count(EdgeLabel::new(l(0), l(0))), 1);
        assert_eq!(stats.count(EdgeLabel::new(l(1), l(1))), 0);
    }

    #[test]
    fn lcov_normalizes() {
        let db = db();
        let stats = EdgeLabelStats::from_graphs(&db);
        assert!((stats.lcov(EdgeLabel::new(l(0), l(1))) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_ordering() {
        let db = db();
        let stats = EdgeLabelStats::from_graphs(&db);
        let top = stats.top_k(2);
        assert_eq!(top[0].0, EdgeLabel::new(l(0), l(1)));
        assert_eq!(top.len(), 2);
        let pats = stats.top_k_as_patterns(1);
        assert_eq!(pats[0].edge_count(), 1);
        assert_eq!(pats[0].label(catapult_graph::VertexId(0)), l(0));
    }

    #[test]
    fn set_label_coverage() {
        let db = db();
        let labels = vec![EdgeLabel::new(l(0), l(0))];
        // Only graph 1 contains a C-C edge.
        assert!((label_coverage(&db, &labels) - 1.0 / 3.0).abs() < 1e-12);
        let all = EdgeLabelStats::from_graphs(&db).labels();
        assert!((label_coverage(&db, &all) - 1.0).abs() < 1e-12);
        assert_eq!(label_coverage(&[], &all), 0.0);
    }

    #[test]
    fn pattern_set_labels_dedup() {
        let p1 = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        let p2 = Graph::from_parts(&[l(1), l(0), l(0)], &[(0, 1), (1, 2)]);
        let labels = pattern_set_edge_labels(&[p1, p2]);
        assert_eq!(labels.len(), 2); // (0,1) and (0,0)
    }

    #[test]
    fn empty_stats() {
        let stats = EdgeLabelStats::from_graphs(std::iter::empty());
        assert_eq!(stats.graph_count(), 0);
        assert_eq!(stats.lcov(EdgeLabel::new(l(0), l(1))), 0.0);
        assert!(stats.top_k(3).is_empty());
    }
}
