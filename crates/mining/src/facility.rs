//! Frequent-subtree feature selection via uncapacitated facility location
//! (§4.1 + Appendix B).
//!
//! A set of frequent subtrees may contain many near-duplicates. The paper
//! refines the feature set by maximizing the monotone submodular function
//! `q(T_sel) = Σ_{i ∈ T_all} max_{j ∈ T_sel} σ_subtree(i, j)` with a greedy
//! search, which is (1 − 1/e)-optimal for monotone submodular maximization
//! [17, 21].
//!
//! `σ_subtree(i, j) = |lcs(i, j)| / max(|i|, |j|)` where `i`, `j` are the
//! canonical strings of the subtrees and `lcs` is the longest common
//! subsequence — computed token-wise over the Fig. 5 canonical token
//! streams so multi-digit label ids cannot alias.

use catapult_graph::canonical::CanonTokens;

/// Longest common subsequence length of two token streams (O(n·m) DP).
pub fn token_lcs(a: &[u32], b: &[u32]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for &x in a {
        for (j, &y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// `σ_subtree(i, j) = |lcs(i, j)| / max(|i|, |j|)` on canonical tokens.
pub fn subtree_similarity(a: &[u32], b: &[u32]) -> f64 {
    let m = a.len().max(b.len());
    if m == 0 {
        return 1.0;
    }
    token_lcs(a, b) as f64 / m as f64
}

/// Greedy facility-location selection: pick at most `k` subtrees whose
/// coverage `q(T_sel)` of the full set is (1 − 1/e)-near-optimal.
///
/// Returns indices into `all`, in selection order. Stops early when the
/// marginal gain drops below `min_gain` (0 disables early stopping).
pub fn select_features(all: &[CanonTokens], k: usize, min_gain: f64) -> Vec<usize> {
    let n = all.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    // Precompute the symmetric similarity matrix once; the candidate sets
    // are small (tens to a few hundreds of subtrees).
    let sim: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| subtree_similarity(&all[i], &all[j]))
                .collect()
        })
        .collect();
    let mut best_cover = vec![0.0f64; n]; // max_{j∈sel} σ(i,j)
    let mut selected: Vec<usize> = Vec::new();
    let mut in_sel = vec![false; n];
    while selected.len() < k.min(n) {
        let mut best: Option<(usize, f64)> = None;
        for cand in 0..n {
            if in_sel[cand] {
                continue;
            }
            let gain: f64 = (0..n)
                .map(|i| (sim[i][cand] - best_cover[i]).max(0.0))
                .sum();
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((cand, gain));
            }
        }
        // The while-guard (`selected.len() < k.min(n)`) leaves at least one
        // unselected candidate, so `best` is always `Some`; breaking keeps
        // the refinement loop panic-free.
        let Some((cand, gain)) = best else { break };
        if gain <= min_gain && !selected.is_empty() {
            break;
        }
        in_sel[cand] = true;
        selected.push(cand);
        for i in 0..n {
            if sim[i][cand] > best_cover[i] {
                best_cover[i] = sim[i][cand];
            }
        }
    }
    selected
}

/// The objective `q(T_sel)` for a given selection (used by tests and
/// ablations).
pub fn coverage_objective(all: &[CanonTokens], selected: &[usize]) -> f64 {
    all.iter()
        .map(|i| {
            selected
                .iter()
                .map(|&j| subtree_similarity(i, &all[j]))
                .fold(0.0, f64::max)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_basics() {
        assert_eq!(token_lcs(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(token_lcs(&[1, 2, 3], &[3, 2, 1]), 1);
        assert_eq!(token_lcs(&[1, 3, 5, 7], &[0, 3, 7, 9]), 2);
        assert_eq!(token_lcs(&[], &[1]), 0);
    }

    #[test]
    fn similarity_is_normalized_and_symmetric() {
        let a = vec![1, 2, 3, 4];
        let b = vec![1, 2, 9];
        let s = subtree_similarity(&a, &b);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(s, subtree_similarity(&b, &a));
        assert_eq!(subtree_similarity(&a, &a), 1.0);
    }

    #[test]
    fn greedy_picks_representatives() {
        // Two tight clusters of near-identical streams; k=2 must take one
        // from each.
        let all: Vec<CanonTokens> = vec![
            vec![1, 1, 1, 1],
            vec![1, 1, 1, 2],
            vec![9, 8, 7, 6],
            vec![9, 8, 7, 5],
        ];
        let sel = select_features(&all, 2, 0.0);
        assert_eq!(sel.len(), 2);
        let a_cluster = sel.iter().any(|&i| i < 2);
        let b_cluster = sel.iter().any(|&i| i >= 2);
        assert!(a_cluster && b_cluster, "selection {sel:?} misses a cluster");
    }

    #[test]
    fn objective_is_monotone_in_selection() {
        let all: Vec<CanonTokens> = vec![vec![1, 2], vec![2, 3], vec![5, 6], vec![1, 6]];
        let s1 = select_features(&all, 1, 0.0);
        let s2 = select_features(&all, 2, 0.0);
        assert!(coverage_objective(&all, &s2) >= coverage_objective(&all, &s1));
    }

    #[test]
    fn early_stop_on_small_gain() {
        // All identical: after the first pick, marginal gain is 0.
        let all: Vec<CanonTokens> = vec![vec![1, 2, 3]; 5];
        let sel = select_features(&all, 5, 1e-9);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(select_features(&[], 3, 0.0).is_empty());
        let all: Vec<CanonTokens> = vec![vec![1]];
        assert!(select_features(&all, 0, 0.0).is_empty());
    }

    #[test]
    fn greedy_is_near_optimal_on_small_instance() {
        // Brute-force the optimum for k=2 over 6 streams and check the
        // greedy value is ≥ (1 - 1/e) of it.
        let all: Vec<CanonTokens> = vec![
            vec![1, 2, 3],
            vec![1, 2, 4],
            vec![7, 8, 9],
            vec![7, 8, 3],
            vec![5, 5, 5],
            vec![5, 5, 1],
        ];
        let sel = select_features(&all, 2, 0.0);
        let greedy = coverage_objective(&all, &sel);
        let mut best = 0.0f64;
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                best = best.max(coverage_objective(&all, &[i, j]));
            }
        }
        assert!(greedy >= (1.0 - 1.0 / std::f64::consts::E) * best);
    }
}
