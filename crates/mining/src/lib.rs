//! # catapult-mining
//!
//! Mining substrates for the CATAPULT reproduction:
//!
//! * [`subtree`] — frequent subtree mining ([10], §4.1), the feature
//!   source for coarse clustering;
//! * [`facility`] — submodular facility-location selection of subtree
//!   features (§4.1 + Appendix B);
//! * [`subgraph`] — frequent subgraph mining, the Exp 9 baseline ("F");
//! * [`edges`] — labeled-edge statistics (`elw`, `lcov`, top-k edges);
//! * [`gindex`] — filter–verify subgraph search over the repository (the
//!   §1 query primitive the interface formulates for).

// Lint policy: see [workspace.lints] in the root Cargo.toml.
#![warn(missing_docs)]
// Unit tests are allowed the ergonomic panicking shortcuts the library
// itself forbids; the policy targets production code paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod edges;
pub mod facility;
pub mod gindex;
pub mod subgraph;
pub mod subtree;

pub use edges::EdgeLabelStats;
pub use gindex::{scan_search, GraphIndex};
pub use subgraph::{mine_frequent_subgraphs, FrequentSubgraph, SubgraphMinerConfig};
pub use subtree::{mine_frequent_subtrees, FrequentSubtree, SubtreeMinerConfig};
