//! # catapult-mining
//!
//! Mining substrates for the CATAPULT reproduction:
//!
//! * [`subtree`] — frequent subtree mining ([10], §4.1), the feature
//!   source for coarse clustering;
//! * [`facility`] — submodular facility-location selection of subtree
//!   features (§4.1 + Appendix B);
//! * [`subgraph`] — frequent subgraph mining, the Exp 9 baseline ("F");
//! * [`edges`] — labeled-edge statistics (`elw`, `lcov`, top-k edges);
//! * [`gindex`] — filter–verify subgraph search over the repository (the
//!   §1 query primitive the interface formulates for).

#![warn(missing_docs)]

pub mod edges;
pub mod gindex;
pub mod facility;
pub mod subgraph;
pub mod subtree;

pub use edges::EdgeLabelStats;
pub use gindex::{scan_search, GraphIndex};
pub use subgraph::{mine_frequent_subgraphs, FrequentSubgraph, SubgraphMinerConfig};
pub use subtree::{mine_frequent_subtrees, FrequentSubtree, SubtreeMinerConfig};
