//! Filter–verify subgraph search over the repository.
//!
//! The paper's setting (§1) is *subgraph search*: retrieve the data graphs
//! containing a user query. Visual interfaces formulate the query; this
//! module executes it, with the classic feature-index design (gIndex [36]
//! family): frequent subtrees mined from the repository act as filter
//! features — any data graph containing `q` must contain every indexed
//! feature of `q` — so candidate sets come from bitset intersections and
//! only candidates are verified with VF2.

use crate::subtree::{mine_frequent_subtrees, FrequentSubtree, SubtreeMinerConfig};
use catapult_graph::iso::{contains, for_each_embedding, MatchOptions};
use catapult_graph::{Graph, SearchBudget};
use std::ops::ControlFlow;

/// A subgraph-search index over a fixed repository snapshot.
#[derive(Clone, Debug)]
pub struct GraphIndex {
    features: Vec<FrequentSubtree>,
    /// Per feature: bitset over graph ids containing it.
    feature_bits: Vec<Vec<u64>>,
    blocks: usize,
    db_size: usize,
}

/// Search statistics (for the filter-power diagnostics in examples).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidates surviving the filter.
    pub candidates: usize,
    /// Candidates confirmed by VF2.
    pub answers: usize,
    /// Index features contained in the query (used for filtering).
    pub features_used: usize,
}

impl GraphIndex {
    /// Build the index: mine frequent subtree features and record their
    /// transaction bitsets.
    pub fn build(db: &[Graph], miner: &SubtreeMinerConfig) -> Self {
        let features = mine_frequent_subtrees(db, miner);
        let blocks = db.len().div_ceil(64);
        let feature_bits = features
            .iter()
            .map(|f| {
                let mut bits = vec![0u64; blocks];
                for &i in &f.transactions {
                    bits[i as usize / 64] |= 1u64 << (i % 64);
                }
                bits
            })
            .collect();
        GraphIndex {
            features,
            feature_bits,
            blocks,
            db_size: db.len(),
        }
    }

    /// Number of indexed features.
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }

    /// Candidate graph ids for query `q`: graphs containing every indexed
    /// feature that `q` contains. Complete (never drops an answer) by the
    /// anti-monotonicity of containment.
    pub fn candidates(&self, q: &Graph) -> (Vec<u32>, usize) {
        let mut acc = vec![u64::MAX; self.blocks];
        // Trim the last block to the db size.
        if self.blocks > 0 {
            let rem = self.db_size % 64;
            if rem != 0 {
                acc[self.blocks - 1] = (1u64 << rem) - 1;
            }
        }
        let mut used = 0;
        for (f, bits) in self.features.iter().zip(&self.feature_bits) {
            // Feature pruning: only features at most as large as q can be
            // contained; check cheap bounds before VF2.
            if f.tree.edge_count() > q.edge_count() || f.tree.vertex_count() > q.vertex_count() {
                continue;
            }
            // Degradation here is graceful by construction: a budget-tripped
            // probe reports the feature absent, which only skips one bitset
            // intersection — the candidate set grows but never drops a true
            // answer, so the filter stays complete and the completeness tag
            // is deliberately advisory.
            let in_q = for_each_embedding(
                q,
                &f.tree,
                MatchOptions {
                    max_embeddings: 1,
                    budget: SearchBudget::nodes(100_000),
                    ..MatchOptions::default()
                },
                |_| ControlFlow::Break(()),
            )
            .embeddings
                > 0;
            if in_q {
                used += 1;
                for (a, &b) in acc.iter_mut().zip(bits) {
                    *a &= b;
                }
            }
        }
        let mut out = Vec::new();
        for (bi, &block) in acc.iter().enumerate() {
            let mut b = block;
            while b != 0 {
                let bit = b.trailing_zeros();
                out.push((bi * 64) as u32 + bit);
                b &= b - 1;
            }
        }
        (out, used)
    }

    /// Full filter–verify search: the ids of data graphs containing `q`.
    pub fn search(&self, db: &[Graph], q: &Graph) -> (Vec<u32>, SearchStats) {
        let (candidates, features_used) = self.candidates(q);
        let answers: Vec<u32> = candidates
            .iter()
            .copied()
            // Verification runs under the default 10M-node cap; interactive
            // queries (§1) are small enough that it never trips in practice.
            .filter(|&i| contains(&db[i as usize], q)) // xtask-allow: consume-completeness, budget-threading
            .collect();
        let stats = SearchStats {
            candidates: candidates.len(),
            answers: answers.len(),
            features_used,
        };
        (answers, stats)
    }
}

/// Reference implementation: scan every graph (used by tests and as the
/// no-index baseline).
pub fn scan_search(db: &[Graph], q: &Graph) -> Vec<u32> {
    (0..db.len() as u32)
        // Test/baseline oracle — intentionally mirrors `search`'s verify.
        .filter(|&i| contains(&db[i as usize], q)) // xtask-allow: consume-completeness, budget-threading
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::{Label, VertexId};

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn ring(n: u32, label: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(label));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn chain(n: u32, labels: &[u32]) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add_vertex(Label(labels[i as usize % labels.len()]));
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    fn db() -> Vec<Graph> {
        let mut db = Vec::new();
        for _ in 0..5 {
            db.push(ring(6, 0));
        }
        for _ in 0..5 {
            db.push(chain(6, &[0, 1]));
        }
        db
    }

    fn index(db: &[Graph]) -> GraphIndex {
        GraphIndex::build(
            db,
            &SubtreeMinerConfig {
                min_support: 0.2,
                max_edges: 3,
                ..Default::default()
            },
        )
    }

    #[test]
    fn search_matches_scan() {
        let db = db();
        let idx = index(&db);
        let queries = [
            chain(3, &[0, 1]),
            chain(4, &[0]),
            ring(6, 0),
            Graph::from_parts(&[l(0), l(2)], &[(0, 1)]), // label 2 nowhere
        ];
        for q in &queries {
            let (answers, stats) = idx.search(&db, q);
            assert_eq!(answers, scan_search(&db, q), "query {q:?}");
            assert!(stats.answers <= stats.candidates);
        }
    }

    #[test]
    fn filter_is_complete_and_prunes() {
        let db = db();
        let idx = index(&db);
        assert!(idx.feature_count() > 0);
        // A query only chains contain: candidates must exclude some rings
        // but include every true answer.
        let q = chain(4, &[0, 1]);
        let (cands, used) = idx.candidates(&q);
        let answers = scan_search(&db, &q);
        for a in &answers {
            assert!(cands.contains(a), "filter dropped answer {a}");
        }
        assert!(used > 0, "no features used");
        assert!(cands.len() < db.len(), "filter pruned nothing");
    }

    #[test]
    fn empty_repository() {
        let idx = index(&[]);
        let (answers, stats) = idx.search(&[], &chain(3, &[0]));
        assert!(answers.is_empty());
        assert_eq!(stats.candidates, 0);
    }

    #[test]
    fn query_larger_than_everything() {
        let db = db();
        let idx = index(&db);
        let q = chain(40, &[0, 1]);
        let (answers, _) = idx.search(&db, &q);
        assert!(answers.is_empty());
    }
}
