//! Frequent sub**graph** mining — the baseline "F" of Exp 9 (App. C).
//!
//! The paper compares CATAPULT against canned patterns produced by the
//! gaston frequent-subgraph miner [30] at support thresholds {4%, 8%, 12%},
//! with `|F| = 30`, sizes in `[3, 12]` edges and at most `|F| / 10`
//! patterns per size. This module provides an equivalent pattern-growth
//! miner: frequent one-edge graphs are extended an edge at a time (pendant
//! vertex or cycle-closing edge), deduplicated by graph isomorphism, with
//! exact support counting restricted to the parent's transactions.

use catapult_graph::iso::{self, are_isomorphic_tagged, contains_tagged};
use catapult_graph::{Completeness, Graph, Label, SearchBudget, Tally, TallyCounts, VertexId};
use rayon::prelude::*;
use std::collections::HashMap;

/// Mining parameters for the frequent-subgraph baseline.
#[derive(Clone, Copy, Debug)]
pub struct SubgraphMinerConfig {
    /// Minimum support as a fraction of `|D|`.
    pub min_support: f64,
    /// Maximum pattern size in edges.
    pub max_edges: usize,
    /// Safety cap on patterns carried between levels.
    pub max_patterns_per_level: usize,
}

impl Default for SubgraphMinerConfig {
    fn default() -> Self {
        SubgraphMinerConfig {
            min_support: 0.08,
            max_edges: 12,
            max_patterns_per_level: 500,
        }
    }
}

/// A mined frequent connected subgraph.
#[derive(Clone, Debug)]
pub struct FrequentSubgraph {
    /// The pattern graph.
    pub graph: Graph,
    /// Supporting transaction ids.
    pub transactions: Vec<u32>,
}

impl FrequentSubgraph {
    /// Absolute support count.
    pub fn support(&self) -> usize {
        self.transactions.len()
    }
}

fn frequent_labels(db: &[Graph], min_count: usize) -> Vec<Label> {
    let mut counts: HashMap<Label, usize> = HashMap::new();
    for g in db {
        let mut seen: Vec<Label> = g.labels().to_vec();
        seen.sort_unstable();
        seen.dedup();
        for l in seen {
            *counts.entry(l).or_insert(0) += 1;
        }
    }
    let mut out: Vec<Label> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .map(|(l, _)| l)
        .collect();
    out.sort_unstable();
    out
}

/// Deduplicate candidates by isomorphism, bucketing on the cheap invariant
/// signature first.
struct IsoDedup {
    buckets: HashMap<u64, Vec<Graph>>,
}

impl IsoDedup {
    fn new() -> Self {
        IsoDedup {
            buckets: HashMap::new(),
        }
    }

    /// Returns true if `g` was new (inserted). A degraded isomorphism
    /// probe (recorded into `tally`) reports "not isomorphic", so under
    /// budget pressure a duplicate may slip through — sound for mining
    /// (the duplicate's support is still correct) but not minimal.
    fn insert(&mut self, g: &Graph, budget: &SearchBudget, tally: &Tally) -> bool {
        let sig = g.invariant_signature();
        let bucket = self.buckets.entry(sig).or_default();
        let dup = bucket.iter().any(|h| {
            let (iso, c) = are_isomorphic_tagged(h, g, budget);
            tally.record(c);
            iso
        });
        if dup {
            return false;
        }
        bucket.push(g.clone());
        true
    }
}

/// Support counting under `budget`; degraded probes (recorded in `tally`)
/// under-count, so the result is a lower bound on true support.
fn count_support(
    db: &[Graph],
    candidates: &[u32],
    pattern: &Graph,
    probe: &SearchBudget,
    tally: &Tally,
) -> Vec<u32> {
    // Parallel audit: read-only captures + commutative `Tally` recording;
    // the shim's ordered collection keeps the transaction list identical
    // across thread counts.
    candidates
        .par_iter()
        .copied()
        .filter(|&i| {
            let (found, c) = contains_tagged(&db[i as usize], pattern, probe);
            tally.record(c);
            found
        })
        .collect()
}

/// Enumerate all one-edge extensions of `g`: cycle-closing edges between
/// existing vertices and pendant edges to a new vertex with each label.
fn extensions(g: &Graph, labels: &[Label]) -> Vec<Graph> {
    let n = g.vertex_count() as u32;
    let mut out = Vec::new();
    // Close a cycle.
    for a in 0..n {
        for b in (a + 1)..n {
            if !g.has_edge(VertexId(a), VertexId(b)) {
                let mut h = g.clone();
                // `has_edge` ruled out a duplicate and `a < b < n` are in
                // bounds, so the edge insert cannot fail.
                if h.add_edge(VertexId(a), VertexId(b)).is_ok() {
                    out.push(h);
                }
            }
        }
    }
    // Pendant vertex.
    for a in 0..n {
        for &l in labels {
            let mut h = g.clone();
            let v = h.add_vertex(l);
            // `v` is a fresh vertex, so the pendant edge is always new.
            if h.add_edge(VertexId(a), v).is_ok() {
                out.push(h);
            }
        }
    }
    out
}

/// Result of a budgeted frequent-subgraph mining run.
#[derive(Clone, Debug)]
pub struct SubgraphMiningOutcome {
    /// The mined frequent subgraphs (sorted by size, then support).
    pub subgraphs: Vec<FrequentSubgraph>,
    /// Per-probe completeness of the underlying kernel calls (containment
    /// and dedup isomorphism checks).
    pub kernel: TallyCounts,
    /// Overall completeness; degraded results remain sound but may miss
    /// frequent patterns or keep an isomorphic duplicate.
    pub completeness: Completeness,
}

/// Mine frequent connected subgraphs of size 1..=`cfg.max_edges` edges.
///
/// Output is sorted by (size, descending support) and deterministic.
/// Unbudgeted convenience wrapper around [`mine_subgraphs`]; completeness
/// is swallowed.
pub fn mine_frequent_subgraphs(db: &[Graph], cfg: &SubgraphMinerConfig) -> Vec<FrequentSubgraph> {
    mine_subgraphs(db, cfg, &SearchBudget::unbounded()).subgraphs
}

/// Budgeted frequent-subgraph mining: every containment / isomorphism
/// probe runs under `budget` (per-probe cap defaulting to
/// [`iso::DEFAULT_NODE_CAP`]); deadline and cancellation are additionally
/// checked between parents, stopping early with the patterns found so far.
pub fn mine_subgraphs(
    db: &[Graph],
    cfg: &SubgraphMinerConfig,
    budget: &SearchBudget,
) -> SubgraphMiningOutcome {
    let n = db.len();
    let min_count = ((cfg.min_support * n as f64).ceil() as usize).max(1);
    let labels = frequent_labels(db, min_count);
    let all: Vec<u32> = (0..n as u32).collect();
    let tally = Tally::new();
    let probe = budget.with_default_cap(iso::DEFAULT_NODE_CAP);
    let mut interrupted = Completeness::Exact;

    // Level 1: single edges.
    let mut dedup = IsoDedup::new();
    let mut level: Vec<FrequentSubgraph> = Vec::new();
    'level1: for (ai, &a) in labels.iter().enumerate() {
        for &b in &labels[ai..] {
            if let Some(cut) = budget.interrupted() {
                interrupted = cut;
                break 'level1;
            }
            let g = Graph::from_parts(&[a, b], &[(0, 1)]);
            if !dedup.insert(&g, &probe, &tally) {
                continue;
            }
            let txs = count_support(db, &all, &g, &probe, &tally);
            if txs.len() >= min_count {
                level.push(FrequentSubgraph {
                    graph: g,
                    transactions: txs,
                });
            }
        }
    }

    let mut result: Vec<FrequentSubgraph> = Vec::new();
    let mut size = 1;
    while !level.is_empty() && size < cfg.max_edges && interrupted.is_exact() {
        sort_level(&mut level);
        level.truncate(cfg.max_patterns_per_level);
        result.extend(level.iter().cloned());
        let mut dedup = IsoDedup::new();
        let mut next: Vec<FrequentSubgraph> = Vec::new();
        'grow: for parent in &level {
            if let Some(cut) = budget.interrupted() {
                interrupted = cut;
                break 'grow;
            }
            for ext in extensions(&parent.graph, &labels) {
                if !dedup.insert(&ext, &probe, &tally) {
                    continue;
                }
                let txs = count_support(db, &parent.transactions, &ext, &probe, &tally);
                if txs.len() >= min_count {
                    next.push(FrequentSubgraph {
                        graph: ext,
                        transactions: txs,
                    });
                }
            }
        }
        level = next;
        size += 1;
    }
    // Discard an in-flight (partially grown) level on interruption.
    if interrupted.is_exact() {
        sort_level(&mut level);
        level.truncate(cfg.max_patterns_per_level);
        result.extend(level);
    }
    result.sort_by(|a, b| {
        (a.graph.edge_count(), std::cmp::Reverse(a.support()))
            .cmp(&(b.graph.edge_count(), std::cmp::Reverse(b.support())))
    });
    let kernel = tally.counts();
    SubgraphMiningOutcome {
        subgraphs: result,
        kernel,
        completeness: kernel.worst().worst(interrupted),
    }
}

fn sort_level(level: &mut [FrequentSubgraph]) {
    level.sort_by(|a, b| {
        b.support().cmp(&a.support()).then_with(|| {
            a.graph
                .invariant_signature()
                .cmp(&b.graph.invariant_signature())
        })
    });
}

/// Select the paper's Exp-9 baseline set: up to `total` patterns with sizes
/// in `[min_edges, max_edges]`, at most `total / (max-min+1)` per size,
/// highest support first.
pub fn select_baseline_patterns(
    mined: &[FrequentSubgraph],
    total: usize,
    min_edges: usize,
    max_edges: usize,
) -> Vec<Graph> {
    let sizes = max_edges - min_edges + 1;
    let per_size = (total / sizes).max(1);
    let mut out = Vec::new();
    for size in min_edges..=max_edges {
        let mut of_size: Vec<&FrequentSubgraph> = mined
            .iter()
            .filter(|f| f.graph.edge_count() == size)
            .collect();
        of_size.sort_by_key(|f| std::cmp::Reverse(f.support()));
        out.extend(of_size.iter().take(per_size).map(|f| f.graph.clone()));
        if out.len() >= total {
            out.truncate(total);
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::iso::{are_isomorphic, contains};

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn triangle_db() -> Vec<Graph> {
        // 5 triangles (labels all C) + 3 paths.
        let mut db = Vec::new();
        for _ in 0..5 {
            db.push(Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2), (0, 2)]));
        }
        for _ in 0..3 {
            db.push(Graph::from_parts(&[l(0); 3], &[(0, 1), (1, 2)]));
        }
        db
    }

    #[test]
    fn finds_triangle_with_right_support() {
        let db = triangle_db();
        let mined = mine_frequent_subgraphs(
            &db,
            &SubgraphMinerConfig {
                min_support: 0.5,
                max_edges: 3,
                ..Default::default()
            },
        );
        let tri = mined
            .iter()
            .find(|f| f.graph.edge_count() == 3 && f.graph.vertex_count() == 3)
            .expect("triangle mined");
        assert_eq!(tri.support(), 5);
        // The 2-path is in all 8.
        let path2 = mined
            .iter()
            .find(|f| f.graph.edge_count() == 2)
            .expect("2-path mined");
        assert_eq!(path2.support(), 8);
    }

    #[test]
    fn support_threshold_filters() {
        let db = triangle_db();
        let mined = mine_frequent_subgraphs(
            &db,
            &SubgraphMinerConfig {
                min_support: 0.7,
                max_edges: 3,
                ..Default::default()
            },
        );
        // Triangle support 5/8 = 0.625 < 0.7 → excluded.
        assert!(mined
            .iter()
            .all(|f| f.graph.edge_count() < 3 || f.graph.vertex_count() > 3 || f.support() >= 6));
        assert!(!mined
            .iter()
            .any(|f| f.graph.edge_count() == 3 && f.graph.vertex_count() == 3));
    }

    #[test]
    fn no_isomorphic_duplicates() {
        let db = triangle_db();
        let mined = mine_frequent_subgraphs(
            &db,
            &SubgraphMinerConfig {
                min_support: 0.3,
                max_edges: 3,
                ..Default::default()
            },
        );
        for i in 0..mined.len() {
            for j in (i + 1)..mined.len() {
                assert!(
                    !are_isomorphic(&mined[i].graph, &mined[j].graph),
                    "duplicates at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn baseline_selection_respects_quota() {
        let db = triangle_db();
        let mined = mine_frequent_subgraphs(
            &db,
            &SubgraphMinerConfig {
                min_support: 0.3,
                max_edges: 3,
                ..Default::default()
            },
        );
        let sel = select_baseline_patterns(&mined, 4, 2, 3);
        assert!(sel.len() <= 4);
        assert!(sel.iter().all(|g| (2..=3).contains(&g.edge_count())));
        // per-size quota = 4/2 = 2
        for size in 2..=3 {
            assert!(sel.iter().filter(|g| g.edge_count() == size).count() <= 2);
        }
    }

    #[test]
    fn patterns_really_occur() {
        let db = triangle_db();
        let mined = mine_frequent_subgraphs(
            &db,
            &SubgraphMinerConfig {
                min_support: 0.3,
                max_edges: 3,
                ..Default::default()
            },
        );
        for f in &mined {
            for &i in &f.transactions {
                assert!(contains(&db[i as usize], &f.graph));
            }
        }
    }
}
