//! Frequent subtree mining (§4.1, [10]).
//!
//! Coarse clustering uses *frequent subtrees* as feature vectors: compared
//! to frequent graphs they describe the crucial topology of the data graphs
//! at a much lower mining cost (paper footnote 8).
//!
//! The miner is a level-wise pattern-growth enumeration: frequent one-edge
//! trees are grown by attaching one frequent-labeled leaf at a time, with
//! candidate deduplication via the Fig. 5 canonical form and support
//! counting by (non-induced) subgraph isomorphism restricted to the parent
//! pattern's supporting transactions (support is anti-monotone, so this is
//! exact). Completeness follows from the leaf-removal argument: every
//! frequent tree of size k+1 contains a frequent tree of size k obtained by
//! deleting a leaf.

use catapult_graph::canonical::{canonical_tokens, CanonTokens};
use catapult_graph::iso::{self, contains_tagged};
use catapult_graph::{Completeness, Graph, Label, SearchBudget, Tally, TallyCounts};
use rayon::prelude::*;
use std::collections::HashMap;

/// Mining parameters.
#[derive(Clone, Copy, Debug)]
pub struct SubtreeMinerConfig {
    /// Minimum support as a fraction of `|D|` (the paper's `min_fr`).
    pub min_support: f64,
    /// Maximum tree size in edges.
    pub max_edges: usize,
    /// Safety cap on the number of frequent trees kept per level.
    pub max_patterns_per_level: usize,
}

impl Default for SubtreeMinerConfig {
    fn default() -> Self {
        SubtreeMinerConfig {
            min_support: 0.1,
            max_edges: 4,
            max_patterns_per_level: 2_000,
        }
    }
}

/// A mined frequent subtree.
#[derive(Clone, Debug)]
pub struct FrequentSubtree {
    /// The tree itself.
    pub tree: Graph,
    /// Its canonical token stream (Fig. 5), used for dedup and the
    /// facility-location similarity.
    pub canonical: CanonTokens,
    /// Ids (indices into `D`) of the graphs containing it.
    pub transactions: Vec<u32>,
}

impl FrequentSubtree {
    /// Absolute support count.
    pub fn support(&self) -> usize {
        self.transactions.len()
    }

    /// Relative support in a database of `n` graphs.
    pub fn relative_support(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.support() as f64 / n as f64
        }
    }
}

/// Frequent vertex labels with their supporting transactions.
fn frequent_labels(db: &[Graph], min_count: usize) -> Vec<Label> {
    let mut txs: HashMap<Label, usize> = HashMap::new();
    for g in db {
        let mut seen: Vec<Label> = g.labels().to_vec();
        seen.sort_unstable();
        seen.dedup();
        for l in seen {
            *txs.entry(l).or_insert(0) += 1;
        }
    }
    let mut out: Vec<Label> = txs
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .map(|(l, _)| l)
        .collect();
    out.sort_unstable();
    out
}

/// Count the transactions (restricted to `candidates`) containing `tree`,
/// recording each containment probe's completeness into `tally`. A
/// degraded probe reports "not contained", so under budget pressure the
/// returned support is a *lower bound* (frequent trees may be missed, but
/// every reported transaction genuinely contains the tree).
fn count_support(
    db: &[Graph],
    candidates: &[u32],
    tree: &Graph,
    probe: &SearchBudget,
    tally: &Tally,
) -> Vec<u32> {
    // Parallel audit: the closure only reads shared `&` state and records
    // into `Tally` (commutative atomic counters), and the shim collects in
    // input order — so the returned transaction list is byte-identical for
    // every thread count.
    candidates
        .par_iter()
        .copied()
        .filter(|&i| {
            let (found, c) = contains_tagged(&db[i as usize], tree, probe);
            tally.record(c);
            found
        })
        .collect()
}

/// Result of a budgeted frequent-subtree mining run.
#[derive(Clone, Debug)]
pub struct SubtreeMiningOutcome {
    /// The mined frequent subtrees (sorted by size, then canonical form).
    pub subtrees: Vec<FrequentSubtree>,
    /// Number of candidate trees whose support was counted.
    pub candidates_counted: usize,
    /// Per-probe completeness of the underlying isomorphism kernel calls.
    pub kernel: TallyCounts,
    /// Overall completeness: `Exact` when every support count is exact and
    /// no level was cut short; otherwise the worst degradation observed.
    /// Degraded results are still sound (every reported subtree is frequent
    /// among the transactions listed) but may be incomplete.
    pub completeness: Completeness,
}

/// Mine frequent subtrees from `db`.
///
/// Returns subtrees of size 1..=`cfg.max_edges` edges, each with its exact
/// supporting transaction list. The result is sorted by (size, canonical
/// form) so output order is deterministic. Unbudgeted convenience wrapper
/// around [`mine_subtrees`]; completeness is swallowed (under the default
/// per-probe cap, exact for all realistic inputs).
pub fn mine_frequent_subtrees(db: &[Graph], cfg: &SubtreeMinerConfig) -> Vec<FrequentSubtree> {
    mine_subtrees(db, cfg, &SearchBudget::unbounded()).subtrees
}

/// As [`mine_frequent_subtrees`], additionally returning the number of
/// candidate trees whose support was counted (used by tests and the
/// sampling experiments).
pub fn mine_with_counts(db: &[Graph], cfg: &SubtreeMinerConfig) -> (Vec<FrequentSubtree>, usize) {
    let out = mine_subtrees(db, cfg, &SearchBudget::unbounded());
    (out.subtrees, out.candidates_counted)
}

/// Budgeted frequent-subtree mining: the level-wise pattern-growth miner
/// with every containment probe under `budget` (per-probe node cap
/// defaulting to [`iso::DEFAULT_NODE_CAP`]) and deadline/cancellation
/// checked between candidates, stopping early with the frequent trees
/// found so far.
pub fn mine_subtrees(
    db: &[Graph],
    cfg: &SubtreeMinerConfig,
    budget: &SearchBudget,
) -> SubtreeMiningOutcome {
    let n = db.len();
    let min_count = ((cfg.min_support * n as f64).ceil() as usize).max(1);
    let labels = frequent_labels(db, min_count);
    let mut candidates_counted = 0usize;
    let tally = Tally::new();
    let probe = budget.with_default_cap(iso::DEFAULT_NODE_CAP);
    let mut interrupted = Completeness::Exact;

    // Level 1: one-edge trees over frequent label pairs.
    let mut level: Vec<FrequentSubtree> = Vec::new();
    let all: Vec<u32> = (0..n as u32).collect();
    'level1: for (ai, &a) in labels.iter().enumerate() {
        for &b in &labels[ai..] {
            if let Some(cut) = budget.interrupted() {
                interrupted = cut;
                break 'level1;
            }
            let tree = Graph::from_parts(&[a, b], &[(0, 1)]);
            candidates_counted += 1;
            let txs = count_support(db, &all, &tree, &probe, &tally);
            if txs.len() >= min_count {
                level.push(FrequentSubtree {
                    canonical: canonical_tokens(&tree),
                    tree,
                    transactions: txs,
                });
            }
        }
    }

    let mut result: Vec<FrequentSubtree> = Vec::new();
    let mut size = 1;
    while !level.is_empty() && size < cfg.max_edges && interrupted.is_exact() {
        level.truncate(cfg.max_patterns_per_level);
        result.extend(level.iter().cloned());
        // Grow each tree by one leaf in every position × frequent label.
        let mut next: HashMap<CanonTokens, FrequentSubtree> = HashMap::new();
        'grow: for parent in &level {
            if let Some(cut) = budget.interrupted() {
                interrupted = cut;
                break 'grow;
            }
            for v in parent.tree.vertices() {
                for &l in &labels {
                    let mut t = parent.tree.clone();
                    let leaf = t.add_vertex(l);
                    // `leaf` is fresh, so this edge cannot duplicate.
                    if t.add_edge(v, leaf).is_err() {
                        continue;
                    }
                    let canon = canonical_tokens(&t);
                    if next.contains_key(&canon) {
                        continue;
                    }
                    candidates_counted += 1;
                    let txs = count_support(db, &parent.transactions, &t, &probe, &tally);
                    if txs.len() >= min_count {
                        next.insert(
                            canon.clone(),
                            FrequentSubtree {
                                tree: t,
                                canonical: canon,
                                transactions: txs,
                            },
                        );
                    }
                }
            }
        }
        let mut next: Vec<FrequentSubtree> = next.into_values().collect();
        next.sort_by(|a, b| a.canonical.cmp(&b.canonical));
        level = next;
        size += 1;
    }
    // On interruption the in-flight level is discarded (its counts may be
    // partial); everything in `result` plus the last complete level stands.
    if interrupted.is_exact() {
        level.truncate(cfg.max_patterns_per_level);
        result.extend(level);
    }
    result.sort_by(|a, b| {
        (a.tree.edge_count(), &a.canonical).cmp(&(b.tree.edge_count(), &b.canonical))
    });
    // Miner-level observability (beyond the per-probe kernel counters the
    // meters flush themselves): candidate trees tried, levels completed,
    // and frequent trees kept.
    budget
        .probe
        .add("subtree", "candidates", candidates_counted as u64);
    budget.probe.add("subtree", "levels", size as u64);
    budget.probe.add("subtree", "frequent", result.len() as u64);
    let kernel = tally.counts();
    SubtreeMiningOutcome {
        subtrees: result,
        candidates_counted,
        kernel,
        completeness: kernel.worst().worst(interrupted),
    }
}

/// Binary feature vector of `g` over the mined subtree set: bit `j` is set
/// iff `g` contains `subtrees[j]` (Algorithm 2, lines 3–10).
pub fn feature_vector(g: &Graph, subtrees: &[FrequentSubtree]) -> Vec<bool> {
    let tally = Tally::new();
    feature_vector_tagged(g, subtrees, &SearchBudget::unbounded(), &tally)
}

/// As [`feature_vector`], with each containment probe under `budget` and
/// its completeness recorded into `tally`. A degraded probe leaves the bit
/// unset, so degraded feature vectors under-approximate containment.
pub fn feature_vector_tagged(
    g: &Graph,
    subtrees: &[FrequentSubtree],
    budget: &SearchBudget,
    tally: &Tally,
) -> Vec<bool> {
    subtrees
        .iter()
        .map(|t| {
            let (found, c) = contains_tagged(g, &t.tree, budget);
            tally.record(c);
            found
        })
        .collect()
}

/// Feature vectors for a whole database, using the miners' transaction
/// lists (exact and cheaper than re-running isomorphism).
pub fn feature_matrix(n: usize, subtrees: &[FrequentSubtree]) -> Vec<Vec<bool>> {
    let mut m = vec![vec![false; subtrees.len()]; n];
    for (j, t) in subtrees.iter().enumerate() {
        for &i in &t.transactions {
            if let Some(row) = m.get_mut(i as usize) {
                row[j] = true;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::iso::contains;
    use catapult_graph::VertexId;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn db_paths_and_stars() -> Vec<Graph> {
        // 4 paths C-O-C and 2 stars C(-O)(-O)(-O) plus 2 singleton-ish edges.
        let mut db = Vec::new();
        for _ in 0..4 {
            db.push(Graph::from_parts(&[l(0), l(1), l(0)], &[(0, 1), (1, 2)]));
        }
        for _ in 0..2 {
            db.push(Graph::from_parts(
                &[l(0), l(1), l(1), l(1)],
                &[(0, 1), (0, 2), (0, 3)],
            ));
        }
        for _ in 0..2 {
            db.push(Graph::from_parts(&[l(0), l(0)], &[(0, 1)]));
        }
        db
    }

    #[test]
    fn one_edge_trees_have_exact_support() {
        let db = db_paths_and_stars();
        let cfg = SubtreeMinerConfig {
            min_support: 0.2,
            max_edges: 1,
            ..Default::default()
        };
        let trees = mine_frequent_subtrees(&db, &cfg);
        // Edge labels present: (C,O) in 6 graphs, (C,C) in 2 graphs.
        assert_eq!(trees.len(), 2);
        let co = trees
            .iter()
            .find(|t| t.tree.label(VertexId(0)) != t.tree.label(VertexId(1)))
            .unwrap();
        assert_eq!(co.support(), 6);
    }

    #[test]
    fn growth_respects_antimonotonicity() {
        let db = db_paths_and_stars();
        let cfg = SubtreeMinerConfig {
            min_support: 0.25,
            max_edges: 3,
            ..Default::default()
        };
        let trees = mine_frequent_subtrees(&db, &cfg);
        for t in &trees {
            assert!(t.support() >= 2, "support {} below min", t.support());
            // Each transaction really contains the tree.
            for &i in &t.transactions {
                assert!(contains(&db[i as usize], &t.tree));
            }
        }
        // The path C-O-C (2 edges) is frequent (in 4 paths + 0 stars? stars
        // have O-C-O not C-O-C). Stars: center C with O leaves → contains
        // O-C-O. Paths contain C-O-C. Both 2-edge trees appear.
        let two_edge: Vec<_> = trees.iter().filter(|t| t.tree.edge_count() == 2).collect();
        assert!(two_edge.len() >= 2);
    }

    #[test]
    fn canonical_dedup_collapses_isomorphic_candidates() {
        let db = db_paths_and_stars();
        let cfg = SubtreeMinerConfig {
            min_support: 0.2,
            max_edges: 3,
            ..Default::default()
        };
        let trees = mine_frequent_subtrees(&db, &cfg);
        let mut canons: Vec<_> = trees.iter().map(|t| t.canonical.clone()).collect();
        let before = canons.len();
        canons.sort();
        canons.dedup();
        assert_eq!(before, canons.len(), "duplicate canonical forms");
    }

    #[test]
    fn max_edges_caps_size() {
        let db = db_paths_and_stars();
        let cfg = SubtreeMinerConfig {
            min_support: 0.2,
            max_edges: 2,
            ..Default::default()
        };
        let trees = mine_frequent_subtrees(&db, &cfg);
        assert!(trees.iter().all(|t| t.tree.edge_count() <= 2));
    }

    #[test]
    fn feature_vectors_match_transactions() {
        let db = db_paths_and_stars();
        let cfg = SubtreeMinerConfig {
            min_support: 0.2,
            max_edges: 2,
            ..Default::default()
        };
        let trees = mine_frequent_subtrees(&db, &cfg);
        let m = feature_matrix(db.len(), &trees);
        for (i, g) in db.iter().enumerate() {
            assert_eq!(m[i], feature_vector(g, &trees), "graph {i}");
        }
    }

    #[test]
    fn empty_db_yields_nothing() {
        let trees = mine_frequent_subtrees(&[], &SubtreeMinerConfig::default());
        assert!(trees.is_empty());
    }

    #[test]
    fn unbudgeted_mining_is_exact_and_matches_wrapper() {
        let db = db_paths_and_stars();
        let cfg = SubtreeMinerConfig {
            min_support: 0.2,
            max_edges: 3,
            ..Default::default()
        };
        let out = mine_subtrees(&db, &cfg, &SearchBudget::unbounded());
        assert!(out.completeness.is_exact());
        assert!(out.kernel.all_exact());
        assert!(out.kernel.total() > 0);
        let wrapper = mine_frequent_subtrees(&db, &cfg);
        assert_eq!(out.subtrees.len(), wrapper.len());
        for (a, b) in out.subtrees.iter().zip(&wrapper) {
            assert_eq!(a.canonical, b.canonical);
            assert_eq!(a.transactions, b.transactions);
        }
    }

    #[test]
    fn cancelled_mining_stops_early_with_sound_partial_result() {
        use catapult_graph::CancelToken;
        let db = db_paths_and_stars();
        let cfg = SubtreeMinerConfig {
            min_support: 0.2,
            max_edges: 3,
            ..Default::default()
        };
        let token = CancelToken::new();
        token.cancel();
        let out = mine_subtrees(&db, &cfg, &SearchBudget::unbounded().with_cancel(token));
        assert_eq!(out.completeness, Completeness::Cancelled);
        // Sound: anything reported is genuinely frequent.
        for t in &out.subtrees {
            for &i in &t.transactions {
                assert!(contains(&db[i as usize], &t.tree));
            }
        }
    }
}
